"""The lint finding record and its canonical ordering.

A :class:`Finding` is one rule violation at one source location.  The
whole devtools layer — reporters, baseline, suppression accounting —
operates on sorted tuples of findings, so the canonical sort key lives
here next to the dataclass.  Everything is a plain value type: findings
must serialise to JSON and compare bitwise-equal across runs, platforms
and process boundaries (the determinism contract applies to the linter
itself).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line:col``.

    Field order doubles as the sort key: findings group by file, then
    read top to bottom, then break ties on column and rule id.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def baseline_key(self) -> Tuple[str, str, str]:
        """The drift-resistant identity used for baseline matching.

        Line and column are deliberately excluded: a grandfathered
        finding must keep matching its baseline entry when unrelated
        edits shift it a few lines.
        """
        return (self.rule_id, self.path, self.message)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def sorted_findings(findings) -> "list[Finding]":
    """The one canonical ordering every consumer sees."""
    return sorted(findings)
