"""The ``repro lint`` subcommand.

Usage::

    repro lint                          # lint the default trees
    repro lint src tests/devtools       # explicit targets
    repro lint --format json            # CI gate output
    repro lint --whole-program          # + interprocedural FLOW/PERF/CONC
    repro lint --call-graph repro.bgp   # dump resolved call edges
    repro lint --write-baseline         # grandfather current findings
    repro lint --explain FLOW101        # print a rule's rationale
    repro lint --list-rules             # catalog of registered rules

Exit codes: ``0`` clean (or baseline written), ``1`` at least one
non-baselined finding, ``2`` usage/IO error.  The default targets are
``src``, ``benchmarks`` and ``examples`` (whichever exist), else the
current directory — so the command does the right thing from the
repository root with zero arguments.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.devtools.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.devtools.engine import (
    LintConfig,
    _relpath,
    discover_files,
    run_lint,
)
from repro.devtools.registry import all_rules
from repro.devtools.reporters import render_json, render_text

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to an (sub)parser."""
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to lint "
                             "(default: ./src if present, else .)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline file of grandfathered findings "
                             f"(default: ./{DEFAULT_BASELINE_NAME} "
                             "when present)")
    parser.add_argument("--write-baseline", action="store_true",
                        default=False,
                        help="record current findings as the baseline "
                             "and exit 0")
    parser.add_argument("--select", default=None, metavar="IDS",
                        help="comma-separated rule ids to run")
    parser.add_argument("--ignore", default=None, metavar="IDS",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--dep-allow", default=None, metavar="NAMES",
                        help="extra imports DEP001 accepts, bare roots "
                             "or dotted submodules (comma-separated)")
    parser.add_argument("--whole-program", action="store_true",
                        default=False,
                        help="also run the interprocedural FLOW/PERF/"
                             "CONC rules over the project call graph")
    parser.add_argument("--call-graph", nargs="?", const="", default=None,
                        metavar="PREFIX",
                        help="print resolved call edges (optionally "
                             "filtered to callers under PREFIX) and exit")
    parser.add_argument("--analysis-cache", default=None, metavar="DIR",
                        help="directory for whole-program summary cache "
                             "(default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro)")
    parser.add_argument("--no-analysis-cache", action="store_true",
                        default=False,
                        help="disable the summary cache for this run")
    parser.add_argument("--verbose", action="store_true", default=False,
                        help="also show baselined findings (text format)")
    parser.add_argument("--list-rules", action="store_true", default=False,
                        help="print the rule catalog and exit")
    parser.add_argument("--explain", default=None, metavar="RULE_ID",
                        help="print one rule's rationale and exit")


def _split_ids(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip().upper() for part in raw.split(",") if part.strip()]


def _default_paths() -> List[str]:
    """``src`` + ``benchmarks`` + ``examples`` (whichever exist).

    Falls back to the current directory when none is present, so the
    zero-argument invocation works both from the repository root and
    from an arbitrary project.
    """
    present = [name for name in ("src", "benchmarks", "examples")
               if Path(name).is_dir()]
    return present or ["."]


def _summary_cache(args: argparse.Namespace):
    """The SummaryCache for this invocation, or None when disabled."""
    if args.no_analysis_cache:
        return None
    from repro.devtools.analysis.cache import (
        SummaryCache,
        default_cache_root,
    )
    root = (Path(args.analysis_cache) if args.analysis_cache
            else default_cache_root())
    return SummaryCache(root)


def _resolve_baseline(args: argparse.Namespace) -> Path:
    if args.baseline is not None:
        return Path(args.baseline)
    return Path(DEFAULT_BASELINE_NAME)


def _run_call_graph(paths: List[str], config: LintConfig,
                    args: argparse.Namespace) -> int:
    """``--call-graph``: dump the resolved project call edges."""
    from repro.devtools.analysis.project import build_project

    items = []
    for path in discover_files(paths):
        items.append((_relpath(path),
                      path.read_text(encoding="utf-8"), None))
    project, stats = build_project(items, config, _summary_cache(args))
    for line in project.render_edges(args.call_graph):
        print(line)
    print(f"# {stats['modules']} modules, {stats['functions']} "
          f"functions, {stats['call_edges']} call edges",
          file=sys.stderr)
    return EXIT_CLEAN


def run_lint_command(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id, rule_cls in sorted(all_rules().items()):
            print(f"{rule_id:10s} {rule_cls.name}")
        return EXIT_CLEAN
    if args.explain is not None:
        rules = all_rules()
        rule_id = args.explain.strip().upper()
        if rule_id not in rules:
            print(f"unknown rule id {rule_id!r} "
                  f"(known: {', '.join(sorted(rules))})", file=sys.stderr)
            return EXIT_ERROR
        rule_cls = rules[rule_id]
        print(f"{rule_id} — {rule_cls.name}\n")
        print(rule_cls.rationale)
        return EXIT_CLEAN

    dep_allow = [part.lower() for part in _split_ids(args.dep_allow) or ()]
    config = LintConfig(
        select=_split_ids(args.select),
        ignore=_split_ids(args.ignore),
        extra_allowed_imports=tuple(dep_allow),
    )
    paths = args.paths or _default_paths()
    baseline_path = _resolve_baseline(args)

    try:
        if args.call_graph is not None:
            return _run_call_graph(paths, config, args)
        cache = _summary_cache(args) if args.whole_program else None
        if args.write_baseline:
            # Findings are computed against an empty baseline, recorded
            # verbatim, and the run reports clean: the whole point is
            # to draw the line here.
            result = run_lint(paths, config, baseline=Baseline(),
                              whole_program=args.whole_program,
                              summary_cache=cache)
            Baseline.from_findings(result.findings).dump(baseline_path)
            print(f"wrote {len(result.findings)} finding(s) to "
                  f"{baseline_path}", file=sys.stderr)
            return EXIT_CLEAN
        baseline = Baseline.load(baseline_path)
        result = run_lint(paths, config, baseline=baseline,
                          whole_program=args.whole_program,
                          summary_cache=cache)
    except (OSError, ValueError) as exc:
        # OSError covers missing/unreadable targets (FileNotFoundError,
        # PermissionError, IsADirectoryError); ValueError covers
        # undecodable bytes and malformed baselines.  All are usage/
        # environment errors, not findings — report cleanly, exit 2.
        print(f"repro lint: {exc}", file=sys.stderr)
        return EXIT_ERROR

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return EXIT_CLEAN if result.ok else EXIT_FINDINGS


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based contract linter for the repro codebase",
    )
    add_lint_arguments(parser)
    return run_lint_command(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
