"""The lint engine: file discovery, single-pass dispatch, accounting.

One :func:`run_lint` call is the whole pipeline::

    discover files -> parse -> annotate parents -> walk once,
    dispatching nodes to interested rules -> apply noqa suppressions
    (tracking use) -> report unused suppressions -> partition against
    the baseline -> LintResult

The engine itself obeys the contracts it enforces: no wall-clock, no
unsorted iteration anywhere near output, and a result that is a pure
function of the file tree + configuration.  Findings come out in one
canonical order (path, line, col, rule id) so text reports, JSON
reports and baselines are byte-stable across runs and platforms.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.devtools.baseline import Baseline
from repro.devtools.findings import Finding, sorted_findings
from repro.devtools.registry import Rule, all_rules, resolve_rule_ids
from repro.devtools.suppressions import (
    UNUSED_SUPPRESSION_ID,
    SuppressionIndex,
)

#: Rule id attached to files the parser rejects.
SYNTAX_ERROR_ID = "SYN001"

#: Directory names never descended into during discovery.
_SKIP_DIRS = {"__pycache__", ".git", ".repro-cache", "node_modules"}


@dataclass
class LintConfig:
    """Everything that parameterises a lint run.

    The rule-scoping knobs exist so the test suite can point rules at
    fixture trees; their defaults encode this repository's contracts.
    """

    #: Run only these rule ids (default: every registered rule).
    select: Optional[Sequence[str]] = None
    #: Rule ids to skip.
    ignore: Optional[Sequence[str]] = None
    #: Files (relpath suffixes) allowed to use raw RNG primitives.
    det001_exempt: Tuple[str, ...] = ("repro/utils/rng.py",)
    #: Substrings of a function name that mark it as cache-key /
    #: fingerprint construction for DET003.
    det003_contexts: Tuple[str, ...] = ("key", "fingerprint", "digest")
    #: Import roots considered first-party for DEP001.
    first_party: Tuple[str, ...] = ("repro",)
    #: Third-party imports the project declares (DEP001).  Entries may
    #: be bare roots ("numpy" admits the whole tree) or dotted
    #: submodules ("numpy.lib.format" admits exactly that subtree —
    #: listed explicitly because the columnar cache artifacts lean on
    #: its stable on-disk conventions).
    allowed_imports: Tuple[str, ...] = ("numpy", "numpy.lib.format")
    #: Extra allowed imports (CLI ``--dep-allow``; roots or dotted).
    extra_allowed_imports: Tuple[str, ...] = ()
    #: Per-tree DEP001 allowances: a path *segment* -> extra imports
    #: files under that segment may use.  The benchmark and test trees
    #: run under pytest (and benchmarks import their own conftest);
    #: that dependency is real there and wrong everywhere else.
    tree_allowed_imports: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
        ("benchmarks", ("pytest", "conftest")),
        ("tests", ("pytest", "conftest")),
    )

    # -- whole-program analysis knobs (``repro lint --whole-program``) --
    #: Function-name substrings marking FLOW1xx sink functions
    #: (fingerprint / cache-key / artifact-serialisation builders).
    flow_sink_contexts: Tuple[str, ...] = (
        "key", "fingerprint", "digest", "serialize",
    )
    #: Dotted module prefixes whose functions are PERF0xx hot entry
    #: points; anything they reach through the call graph is hot.
    perf_entry_modules: Tuple[str, ...] = (
        "repro.bgp.propagation", "repro.inference",
        "repro.pipeline.columnar",
    )
    #: Name components that mark a loop iterable as a corpus/route/
    #: topology structure (affects summary extraction and its cache).
    perf_hot_names: Tuple[str, ...] = (
        "corpus", "paths", "routes", "route_tree", "links", "topology",
    )
    #: Qualname substrings exempting a function from PERF0xx (the
    #: legacy dict engine is the sanctioned scalar baseline).
    perf_exempt_markers: Tuple[str, ...] = ("legacy",)


@dataclass
class ModuleContext:
    """Per-file state shared by every rule during one walk."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    config: LintConfig
    findings: List[Finding] = field(default_factory=list)

    def report(self, rule: Union[Rule, str], node: ast.AST,
               message: str) -> None:
        rule_id = rule if isinstance(rule, str) else rule.id
        self.findings.append(Finding(
            path=self.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=rule_id,
            message=message,
        ))

    def relpath_matches(self, suffixes: Iterable[str]) -> bool:
        return any(self.relpath.endswith(suffix) for suffix in suffixes)


class Walker(ast.NodeVisitor):
    """Single tree walk with typed dispatch and a lexical scope stack."""

    _SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                    ast.ClassDef)

    def __init__(self, rules: Sequence[Rule], ctx: ModuleContext):
        self.ctx = ctx
        self.scope_stack: List[ast.AST] = []
        self._dispatch: Dict[type, List[Rule]] = {}
        for rule in rules:
            for node_type in rule.interests:
                self._dispatch.setdefault(node_type, []).append(rule)

    # -- scope queries used by rules -----------------------------------
    def current_function(self) -> Optional[ast.AST]:
        """The innermost enclosing function/lambda scope, if any."""
        for scope in reversed(self.scope_stack):
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                return scope
        return None

    def in_async_function(self) -> bool:
        return isinstance(self.current_function(), ast.AsyncFunctionDef)

    def enclosing_function_names(self) -> List[str]:
        """Names of every enclosing def, innermost last."""
        return [
            scope.name
            for scope in self.scope_stack
            if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]

    # -- the walk ------------------------------------------------------
    def visit(self, node: ast.AST) -> None:
        for rule in self._dispatch.get(type(node), ()):
            rule.visit(node, self.ctx, self)
        if isinstance(node, self._SCOPE_TYPES):
            self.scope_stack.append(node)
            self.generic_visit(node)
            self.scope_stack.pop()
        else:
            self.generic_visit(node)


@dataclass
class LintResult:
    """Outcome of one :func:`run_lint` call (already baseline-split)."""

    findings: List[Finding]
    baselined: List[Finding]
    suppressed: int
    stale_baseline: List[Dict[str, object]]
    files_checked: int
    #: Whole-program pass statistics (modules/functions/edges, summary
    #: cache hits/misses) — ``None`` unless the pass ran.
    analysis: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return not self.findings


def discover_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """The python files under ``paths``, sorted, skipping caches."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            files.append(path)
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            files.append(candidate)
    # De-duplicate while keeping the sorted-per-argument order stable.
    seen = set()
    unique: List[Path] = []
    for path in files:
        key = str(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def _relpath(path: Path) -> str:
    """Posix-style path relative to the CWD when possible.

    Baselines and reports must not embed absolute paths (they would
    differ between machines), so anything under the working directory
    is relativised.
    """
    resolved = path.resolve()
    try:
        rel = resolved.relative_to(Path.cwd())
    except ValueError:
        rel = resolved
    return rel.as_posix()


def _annotate_parents(tree: ast.Module) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._lint_parent = parent  # type: ignore[attr-defined]


def lint_file(path: Path, config: LintConfig,
              rule_ids: Sequence[str]) -> Tuple[List[Finding], int]:
    """Lint one file (per-file rules only).

    Returns ``(findings, n_suppressed)``: the findings that survive
    noqa suppression (plus one ``SUP001`` per unused marker) and the
    number of findings the file's markers absorbed.  Program-scope
    rule ids are ignored — they need the project graph and only run
    through :func:`run_lint` with ``whole_program=True``.
    """
    relpath = _relpath(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(
            path=relpath,
            line=exc.lineno or 1,
            col=(exc.offset or 1),
            rule_id=SYNTAX_ERROR_ID,
            message=f"file does not parse: {exc.msg}",
        )], 0
    _annotate_parents(tree)

    registry = all_rules()
    rule_ids = [rule_id for rule_id in rule_ids
                if registry[rule_id].scope == "module"]
    rules = [registry[rule_id]() for rule_id in rule_ids]
    ctx = ModuleContext(path=path, relpath=relpath, source=source,
                        tree=tree, config=config)
    for rule in rules:
        rule.begin_module(ctx)
    Walker(rules, ctx).visit(tree)
    for rule in rules:
        rule.end_module(ctx)

    suppressions = SuppressionIndex.from_source(source)
    kept = []
    n_suppressed = 0
    for finding in ctx.findings:
        if suppressions.suppresses(finding.line, finding.rule_id):
            n_suppressed += 1
        else:
            kept.append(finding)
    for marker in suppressions.unused(rule_ids):
        kept.append(Finding(
            path=relpath,
            line=marker.line,
            col=marker.col,
            rule_id=UNUSED_SUPPRESSION_ID,
            message=f"suppression {marker.describe()} matches no finding",
        ))
    return kept, n_suppressed


def run_lint(
    paths: Sequence[Union[str, Path]],
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
    whole_program: bool = False,
    summary_cache: Optional[object] = None,
) -> LintResult:
    """Lint ``paths`` and partition the findings against ``baseline``.

    With ``whole_program=True`` the per-file pass is followed by the
    interprocedural pass: every parsed tree is summarised (through
    ``summary_cache`` when one is given), the summaries are assembled
    into a project call graph, and each registered program-scope rule
    runs against it.  ``# repro: noqa`` markers apply to program
    findings exactly as to per-file ones, and the unused-suppression
    check (SUP001) is deferred until both passes have had the chance
    to consume markers.
    """
    config = config or LintConfig()
    registry = all_rules()
    rule_ids = resolve_rule_ids(config.select, config.ignore)
    module_ids = [rid for rid in rule_ids
                  if registry[rid].scope == "module"]
    program_ids = [rid for rid in rule_ids
                   if registry[rid].scope == "program"]
    files = discover_files(paths)

    raw: List[Finding] = []
    suppressed_total = 0
    # (relpath, source, tree-or-None, suppression index) per file, kept
    # so the program pass reuses the parses and the markers.
    per_file: List[Tuple[str, str, Optional[ast.Module],
                         SuppressionIndex]] = []
    for path in files:
        relpath = _relpath(path)
        source = path.read_text(encoding="utf-8")
        try:
            tree: Optional[ast.Module] = ast.parse(
                source, filename=str(path))
        except SyntaxError as exc:
            raw.append(Finding(
                path=relpath,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                rule_id=SYNTAX_ERROR_ID,
                message=f"file does not parse: {exc.msg}",
            ))
            per_file.append((relpath, source, None,
                             SuppressionIndex.from_source(source)))
            continue
        _annotate_parents(tree)
        rules = [registry[rule_id]() for rule_id in module_ids]
        ctx = ModuleContext(path=path, relpath=relpath, source=source,
                            tree=tree, config=config)
        for rule in rules:
            rule.begin_module(ctx)
        Walker(rules, ctx).visit(tree)
        for rule in rules:
            rule.end_module(ctx)
        suppressions = SuppressionIndex.from_source(source)
        for finding in ctx.findings:
            if suppressions.suppresses(finding.line, finding.rule_id):
                suppressed_total += 1
            else:
                raw.append(finding)
        per_file.append((relpath, source, tree, suppressions))

    analysis: Optional[Dict[str, object]] = None
    if whole_program and program_ids:
        from repro.devtools.analysis.project import build_project

        project, analysis = build_project(
            [(relpath, source, tree)
             for relpath, source, tree, _ in per_file],
            config, summary_cache)
        markers_by_path = {relpath: index
                           for relpath, _, _, index in per_file}
        for rule_id in program_ids:
            for finding in registry[rule_id]().check_program(project,
                                                            config):
                index = markers_by_path.get(finding.path)
                if index is not None and index.suppresses(
                        finding.line, finding.rule_id):
                    suppressed_total += 1
                else:
                    raw.append(finding)

    # Markers naming program rules only count as "active" when the
    # program pass actually ran — a per-file-only run cannot tell
    # whether they would have matched.
    active_ids = module_ids + (program_ids if whole_program else [])
    for relpath, _source, _tree, suppressions in per_file:
        for marker in suppressions.unused(active_ids):
            raw.append(Finding(
                path=relpath,
                line=marker.line,
                col=marker.col,
                rule_id=UNUSED_SUPPRESSION_ID,
                message=(f"suppression {marker.describe()} matches "
                         "no finding"),
            ))

    ordered = sorted_findings(raw)
    baseline = baseline or Baseline()
    new, baselined, stale = baseline.split(ordered)
    return LintResult(
        findings=new,
        baselined=baselined,
        suppressed=suppressed_total,
        stale_baseline=stale,
        files_checked=len(files),
        analysis=analysis,
    )
