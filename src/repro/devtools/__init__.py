"""repro.devtools — static enforcement of the codebase's contracts.

The reproduction's headline guarantees — byte-equal outputs across
serial/parallel/cached execution (PR 1) and a never-blocked service
event loop (PR 2) — are properties of the *whole codebase*, not of the
few functions the example-based tests happen to cover.  This package
makes them machine-checked: a stdlib-only (``ast`` + ``tokenize``)
rule engine walks every module once and reports contract violations as
``path:line:col RULE message`` findings.

Layers:

* :mod:`repro.devtools.registry` — rule base classes (per-file
  :class:`Rule`, whole-program :class:`ProgramRule`) + registry;
* :mod:`repro.devtools.rules` — the built-in ruleset (per-file
  DET/ASYNC/PICKLE/DEP/API families; interprocedural FLOW/PERF/CONC
  families run under ``repro lint --whole-program``);
* :mod:`repro.devtools.analysis` — the whole-program layer: cached
  per-module summaries assembled into a project call graph;
* :mod:`repro.devtools.engine` — discovery, single-pass dispatch,
  ``# repro: noqa[RULE-ID]`` suppressions with unused-marker
  detection, and the optional whole-program pass;
* :mod:`repro.devtools.baseline` — committed grandfather file so the
  gate can be strict for *new* findings from day one;
* :mod:`repro.devtools.reporters` — byte-stable text/JSON reports;
* :mod:`repro.devtools.cli` — the ``repro lint`` subcommand.

See ``docs/devtools.md`` for the rule catalog.
"""

from repro.devtools.baseline import Baseline
from repro.devtools.engine import (
    LintConfig,
    LintResult,
    lint_file,
    run_lint,
)
from repro.devtools.findings import Finding
from repro.devtools.registry import ProgramRule, Rule, all_rules, register
from repro.devtools.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "ProgramRule",
    "Rule",
    "all_rules",
    "lint_file",
    "register",
    "render_json",
    "render_text",
    "run_lint",
]
