"""``# repro: noqa[RULE-ID]`` inline suppressions.

Comments are found with :mod:`tokenize` (never by string-scanning
source lines), so a suppression marker inside a string literal is not a
suppression.  Three forms are recognised on the line of a finding::

    x = build()            # repro: noqa            suppress every rule
    x = build()            # repro: noqa[DET001]    suppress one rule
    x = build()            # repro: noqa[DET001,ASYNC001]

Every suppression must earn its keep: the engine reports markers that
suppressed nothing as ``SUP001`` findings, so stale noqa comments
cannot accumulate.  ``SUP001`` itself is deliberately unsuppressable.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

#: Rule id reported for a suppression that suppressed nothing.
UNUSED_SUPPRESSION_ID = "SUP001"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Za-z0-9_,\s-]*)\])?",
)


@dataclass
class Suppression:
    """One noqa marker: its line, column, and the rule ids it names."""

    line: int
    col: int
    #: ``None`` means the bare form — suppress every rule on the line.
    rule_ids: Optional[FrozenSet[str]]
    used: bool = field(default=False, compare=False)

    def covers(self, rule_id: str) -> bool:
        if rule_id == UNUSED_SUPPRESSION_ID:
            return False
        return self.rule_ids is None or rule_id in self.rule_ids

    def describe(self) -> str:
        if self.rule_ids is None:
            return "# repro: noqa"
        return f"# repro: noqa[{','.join(sorted(self.rule_ids))}]"


class SuppressionIndex:
    """Per-file map of line number -> suppressions on that line."""

    def __init__(self, by_line: Dict[int, List[Suppression]]):
        self._by_line = by_line

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        by_line: Dict[int, List[Suppression]] = {}
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _NOQA_RE.search(token.string)
                if match is None:
                    continue
                ids = match.group("ids")
                rule_ids: Optional[FrozenSet[str]]
                if ids is None:
                    rule_ids = None
                else:
                    rule_ids = frozenset(
                        part.strip().upper()
                        for part in ids.split(",")
                        if part.strip()
                    )
                line = token.start[0]
                by_line.setdefault(line, []).append(
                    Suppression(line=line, col=token.start[1] + 1,
                                rule_ids=rule_ids)
                )
        except tokenize.TokenError:
            # The AST parse of the same source will report the real
            # syntax problem; an unfinishable token stream just means
            # no suppressions.
            pass
        return cls(by_line)

    def suppresses(self, line: int, rule_id: str) -> bool:
        """True (and marks the marker used) if the finding is covered."""
        covered = False
        for suppression in self._by_line.get(line, ()):
            if suppression.covers(rule_id):
                suppression.used = True
                covered = True
        return covered

    def unused(self, active_rule_ids=None) -> List[Suppression]:
        """Markers that suppressed nothing, in line order.

        A scoped marker is only *reportably* unused when every rule it
        names actually ran (``active_rule_ids``): suppressing a rule
        the current invocation did not select is not evidence the
        marker is stale.
        """
        out: List[Suppression] = []
        for line in sorted(self._by_line):
            for marker in self._by_line[line]:
                if marker.used:
                    continue
                if (active_rule_ids is not None
                        and marker.rule_ids is not None
                        and not marker.rule_ids <= set(active_rule_ids)):
                    continue
                out.append(marker)
        return out
