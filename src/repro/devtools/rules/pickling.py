"""Picklability rule: PICKLE001.

Process-pool workers receive their callables by pickling, and pickle
resolves functions by qualified name — lambdas and nested functions
fail at submission time under the ``spawn`` start method (the default
on macOS/Windows) even when they happen to work under ``fork``.  The
repo's own worker functions live at module level for exactly this
reason (see :mod:`repro.pipeline.parallel`).
"""

from __future__ import annotations

import ast
from typing import Set

from repro.devtools.registry import Rule, attr_name, call_name, register


def _process_pool_names(tree: ast.Module) -> Set[str]:
    """Names bound to a ``ProcessPoolExecutor(...)`` in this module."""
    names: Set[str] = set()

    def creates_pool(value: ast.AST) -> bool:
        if not isinstance(value, ast.Call):
            return False
        callee = call_name(value)
        return callee is not None and (
            callee == "ProcessPoolExecutor"
            or callee.endswith(".ProcessPoolExecutor")
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and creates_pool(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.withitem) and creates_pool(
            node.context_expr
        ):
            if isinstance(node.optional_vars, ast.Name):
                names.add(node.optional_vars.id)
    return names


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function."""
    nested: Set[str] = set()

    def walk(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                walk(child, True)
            elif isinstance(child, ast.ClassDef):
                # Methods are attribute-accessed, never bare names.
                walk(child, inside_function)
            else:
                walk(child, inside_function)

    walk(tree, False)
    return nested


@register
class NonPicklableSubmissionRule(Rule):
    """PICKLE001 — only module-level callables cross the pool boundary."""

    id = "PICKLE001"
    name = "non-picklable callable submitted to a process pool"
    rationale = (
        "ProcessPoolExecutor pickles the submitted callable; pickle "
        "serialises functions by qualified name, so lambdas and "
        "closures raise `PicklingError` at submit time under the "
        "spawn start method.  Define worker functions at module level "
        "and pass state through arguments or a pool initializer."
    )
    interests = (ast.Call,)

    def begin_module(self, ctx) -> None:
        self._pools = _process_pool_names(ctx.tree)
        self._nested = _nested_function_names(ctx.tree)

    def visit(self, node: ast.AST, ctx, walker) -> None:
        attribute = attr_name(node)
        if attribute not in {"submit", "map"}:
            return
        receiver = node.func.value  # the `pool` in pool.submit(...)
        is_pool = (
            (isinstance(receiver, ast.Name) and receiver.id in self._pools)
            or (isinstance(receiver, ast.Call)
                and (call_name(receiver) or "").endswith(
                    "ProcessPoolExecutor"))
        )
        if not is_pool:
            return
        candidates = list(node.args[:1])
        candidates.extend(
            kw.value for kw in node.keywords
            if kw.arg in {"fn", "func", "initializer"}
        )
        for candidate in candidates:
            if isinstance(candidate, ast.Lambda):
                ctx.report(self, candidate,
                           f"lambda passed to process-pool `{attribute}`"
                           "; lambdas cannot be pickled — use a "
                           "module-level function")
            elif (isinstance(candidate, ast.Name)
                  and candidate.id in self._nested):
                ctx.report(self, candidate,
                           f"nested function `{candidate.id}` passed to "
                           f"process-pool `{attribute}`; closures cannot "
                           "be pickled — move it to module level")
