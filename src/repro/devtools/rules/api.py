"""Public-API rule: API001.

``__all__`` is the contract between a package and ``from pkg import
*`` / documentation tooling.  A name listed there that the module does
not actually bind raises ``AttributeError`` only at star-import time —
i.e. in someone else's code, much later.  This rule checks the list
against the module's actual top-level bindings, plus duplicates.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.devtools.registry import Rule, const_strings, register


def _bound_names(tree: ast.Module) -> tuple:
    """(names bound at module level, saw_star_import).

    Descends into module-level ``if``/``try`` blocks (the
    ``TYPE_CHECKING`` and optional-import idioms) but not into
    functions or classes — those bindings are not module attributes.
    """
    names: Set[str] = set()
    star = False

    def collect(statements) -> None:
        nonlocal star
        for statement in statements:
            if isinstance(statement,
                          (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
                names.add(statement.name)
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    _collect_target(target)
            elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
                _collect_target(statement.target)
            elif isinstance(statement, ast.Import):
                for alias in statement.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(statement, ast.ImportFrom):
                for alias in statement.names:
                    if alias.name == "*":
                        star = True
                    else:
                        names.add(alias.asname or alias.name)
            elif isinstance(statement, ast.If):
                collect(statement.body)
                collect(statement.orelse)
            elif isinstance(statement, ast.Try):
                collect(statement.body)
                for handler in statement.handlers:
                    collect(handler.body)
                collect(statement.orelse)
                collect(statement.finalbody)
            elif isinstance(statement, (ast.For, ast.While, ast.With)):
                collect(statement.body)
                if hasattr(statement, "orelse"):
                    collect(statement.orelse)

    def _collect_target(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                _collect_target(element)

    collect(tree.body)
    return names, star


@register
class DunderAllConsistencyRule(Rule):
    """API001 — every ``__all__`` entry must be a real module binding."""

    id = "API001"
    name = "__all__ out of sync with the module namespace"
    rationale = (
        "A phantom `__all__` entry raises AttributeError at "
        "star-import time and lies to documentation generators; a "
        "duplicate entry hides real drift.  `__all__` must list "
        "exactly names the module binds at top level, each once."
    )
    interests = (ast.Assign,)

    def visit(self, node: ast.AST, ctx, walker) -> None:
        if walker.scope_stack:
            return  # only module-level __all__ is the public contract
        targets = [t for t in node.targets
                   if isinstance(t, ast.Name) and t.id == "__all__"]
        if not targets:
            return
        entries = const_strings(node.value)
        if entries is None:
            return  # computed __all__: out of static reach, skip
        bound, star = _bound_names(ctx.tree)
        seen: List[str] = []
        for value, lineno in entries:
            marker = ast.Constant(value=value)
            marker.lineno = lineno
            marker.col_offset = 0
            if value in seen:
                ctx.report(self, marker,
                           f"duplicate __all__ entry {value!r}")
            seen.append(value)
            if not star and value not in bound:
                ctx.report(self, marker,
                           f"__all__ lists {value!r} but the module "
                           "never binds it")
