"""The built-in ruleset.

Importing this package registers every rule (the modules register
their classes at import time via
:func:`repro.devtools.registry.register`).  Rule ids:

========== ==========================================================
DET001     unseeded or global random source
DET002     unordered iteration reaches an order-sensitive sink
DET003     wall-clock or entropy value in key/fingerprint construction
ASYNC001   blocking call inside a coroutine
ASYNC002   asyncio task created and immediately dropped
PICKLE001  non-picklable callable submitted to a process pool
DEP001     import outside the declared dependency set
API001     ``__all__`` out of sync with the module namespace
========== ==========================================================

Whole-program rules (run only under ``repro lint --whole-program``,
against the :mod:`repro.devtools.analysis` project graph):

========== ==========================================================
FLOW101    unseeded RNG value reaches a fingerprint/cache-key sink
FLOW102    wall-clock or entropy value reaches a fingerprint sink
FLOW103    unordered iteration order reaches a serialisation sink
PERF001    per-element loop over corpus/route/topology on a hot path
PERF002    ``range(len(...))`` index walk on a hot path
CONC001    state mutated on both loop and executor paths, no lock
CONC002    ``await`` while holding a synchronous lock
CONC003    module state mutated inside a process-pool worker
========== ==========================================================

Plus two engine-level ids that are not rules: ``SYN001`` (file does
not parse) and ``SUP001`` (unused ``# repro: noqa`` marker).
"""

from repro.devtools.rules import api as _api
from repro.devtools.rules import asyncsafety as _asyncsafety
from repro.devtools.rules import concurrency as _concurrency
from repro.devtools.rules import determinism as _determinism
from repro.devtools.rules import flow as _flow
from repro.devtools.rules import imports as _imports
from repro.devtools.rules import perf as _perf
from repro.devtools.rules import pickling as _pickling

# Imported purely for their registration side effect.
_RULE_MODULES = (_determinism, _asyncsafety, _pickling, _imports, _api,
                 _flow, _perf, _concurrency)

__all__ = []
