"""Concurrency-hazard rules: CONC001, CONC002, CONC003.

The service runs one asyncio event loop next to a thread executor
(scenario builds, lazy index work) and the pipeline fans out to
process pools.  Three hazards recur at those boundaries and none of
them is visible from a single file:

* state mutated both on the event-loop path and on a thread-executor
  path races unless both sides hold the same lock (CONC001);
* a coroutine that ``await``-s while holding a *synchronous* lock
  blocks every other task that wants the lock — and, if the lock is
  later taken on the loop thread, deadlocks it (CONC002);
* a module global mutated inside a function submitted to a *process*
  pool mutates the worker's copy; the parent never sees the write
  (CONC003) — pool initializers are the sanctioned exception (priming
  per-worker state is exactly what they are for).

The async side is every coroutine plus everything it calls through
resolved call edges; the executor side is every callable handed to
``run_in_executor``/thread-pool ``submit``/``map`` plus everything *it*
calls.  Both sides under-approximate (unresolved dynamic calls add no
edges), so a CONC finding always names a real pair of paths.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.devtools.findings import Finding
from repro.devtools.registry import ProgramRule, register


def _mutation_index(project) -> Dict[str, List[Tuple[str, str, int, int]]]:
    """state key -> [(fid, path, line, guarded)], fully qualified.

    ``global:NAME`` keys are qualified by module and ``self:Class.attr``
    keys by the defining module, so equal names in different modules
    never alias.
    """
    index: Dict[str, List[Tuple[str, str, int, int]]] = {}
    for fid in sorted(project.functions):
        record = project.functions[fid]
        for key, lineno, guarded in record["mutations"]:
            name = key.partition(":")[2]
            qualified = f"{record['module']}:{name}"
            index.setdefault(qualified, []).append(
                (fid, record["path"], lineno, guarded))
    return index


@register
class CrossContextMutationRule(ProgramRule):
    """CONC001 — shared state mutated from both sides of the executor
    boundary without a lock."""

    id = "CONC001"
    name = "state mutated on both event-loop and executor paths " \
           "without a lock guard"
    rationale = (
        "`run_in_executor` moves work to a thread that shares every "
        "module global and instance attribute with the event loop.  "
        "When the same state is mutated from a coroutine's call path "
        "AND from an executor call path, the interleaving is "
        "arbitrary: counters lose increments, dict/LRU structures "
        "corrupt mid-resize, readers observe half-applied updates.  "
        "Guard both sides with the same lock (`with self._lock:` on "
        "the executor side, a matching guard or single-threaded "
        "hand-off on the loop side), or confine mutation to one "
        "context and pass results across the boundary by return "
        "value — the pattern `ScenarioPool` uses: the executor job "
        "builds and *returns*, only the loop thread admits."
    )

    def check_program(self, project, config) -> List[Finding]:
        async_roots = [fid for fid in sorted(project.functions)
                       if project.functions[fid]["is_async"]]
        async_side = project.forward_reachable(async_roots)
        thread_roots = [callee for kind, _caller, callee, _line
                        in project.executor_edges if kind == "thread"]
        thread_side = project.forward_reachable(thread_roots)
        if not async_side or not thread_side:
            return []
        findings: List[Finding] = []
        for state, sites in sorted(_mutation_index(project).items()):
            loop_sites = [s for s in sites if s[0] in async_side]
            exec_sites = [s for s in sites if s[0] in thread_side]
            if not loop_sites or not exec_sites:
                continue
            unguarded = sorted(
                (path, lineno, fid)
                for fid, path, lineno, guarded in loop_sites + exec_sites
                if not guarded
            )
            if not unguarded:
                continue
            path, lineno, _fid = unguarded[0]
            findings.append(Finding(
                path=path,
                line=lineno,
                col=1,
                rule_id=self.id,
                message=(
                    f"`{state}` is mutated on the event-loop path "
                    f"({project.pretty(loop_sites[0][0])}) and on the "
                    f"thread-executor path "
                    f"({project.pretty(exec_sites[0][0])}) without a "
                    "lock guard on every side"
                ),
            ))
        return findings


@register
class AwaitUnderSyncLockRule(ProgramRule):
    """CONC002 — ``await`` while holding a synchronous lock."""

    id = "CONC002"
    name = "await expression while holding a synchronous lock"
    rationale = (
        "`with threading.Lock():` does not release across `await` — "
        "the coroutine suspends still holding the lock, so every other "
        "task (and any executor thread) that wants it stalls for the "
        "whole suspension; if the loop thread itself then tries to "
        "take the lock, the process deadlocks.  Inside coroutines use "
        "`async with asyncio.Lock():`, or keep the synchronous "
        "critical section free of suspension points."
    )

    def check_program(self, project, config) -> List[Finding]:
        findings: List[Finding] = []
        for fid in sorted(project.functions):
            record = project.functions[fid]
            for lineno, lock in record["lock_awaits"]:
                findings.append(Finding(
                    path=record["path"],
                    line=lineno,
                    col=1,
                    rule_id=self.id,
                    message=(
                        f"await inside `with {lock}:` in "
                        f"{project.pretty(fid)}; a sync lock is held "
                        "across the suspension — use asyncio.Lock or "
                        "drop the await from the critical section"
                    ),
                ))
        return findings


@register
class ProcessPoolLostUpdateRule(ProgramRule):
    """CONC003 — process-pool worker mutates module/global state."""

    id = "CONC003"
    name = "module state mutated inside a process-pool worker " \
           "(lost update)"
    rationale = (
        "A process-pool worker runs in a forked/spawned interpreter: "
        "assigning to a module global or a shared object's attribute "
        "there mutates the *worker's* copy and is silently discarded "
        "when the task ends — the classic lost update that makes "
        "results depend on which process handled which chunk.  Return "
        "the data instead and merge in the parent (the "
        "`ParallelPropagator` pattern), or, for per-worker caches that "
        "are *meant* to live in the worker, populate them from the "
        "pool initializer — initializers are exempt from this rule."
    )

    def check_program(self, project, config) -> List[Finding]:
        worker_roots = [callee for kind, _caller, callee, _line
                        in project.executor_edges if kind == "process"]
        reach = project.forward_reachable(worker_roots)
        # Anything a pool initializer reaches is sanctioned priming.
        init_roots = [callee for kind, _caller, callee, _line
                      in project.executor_edges if kind == "process_init"]
        sanctioned = project.forward_reachable(init_roots)
        findings: List[Finding] = []
        for fid in sorted(reach):
            if fid in sanctioned:
                continue
            record = project.functions[fid]
            for key, lineno, _guarded in record["mutations"]:
                if not key.startswith("global:"):
                    continue
                name = key.partition(":")[2]
                findings.append(Finding(
                    path=record["path"],
                    line=lineno,
                    col=1,
                    rule_id=self.id,
                    message=(
                        f"module global `{name}` mutated in "
                        f"{project.pretty(fid)}, which runs in a "
                        "process-pool worker; the write never reaches "
                        "the parent — return the value or move the "
                        "priming into the pool initializer"
                    ),
                ))
        return findings
