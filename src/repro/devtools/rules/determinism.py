"""Determinism rules: DET001, DET002, DET003.

These enforce the pipeline's core contract — the same config always
yields byte-identical artifacts — by banning the three classic ways a
Python codebase silently loses it: global/unseeded RNGs, unordered
iteration leaking into serialised output, and wall-clock values inside
content addresses.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from repro.devtools.registry import Rule, attr_name, call_name, register

#: numpy's legacy global-state RNG entry points (``np.random.<fn>``).
_NP_GLOBAL_FNS = frozenset({
    "seed", "random", "rand", "randn", "randint", "random_sample",
    "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "beta", "binomial", "poisson",
    "exponential", "bytes",
})


def _numpy_aliases(tree: ast.Module) -> tuple:
    """(module aliases, numpy.random aliases) bound in this module."""
    numpy_names: Set[str] = set()
    random_names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    numpy_names.add(alias.asname or "numpy")
                elif alias.name == "numpy.random":
                    if alias.asname:
                        random_names.add(alias.asname)
                    else:
                        numpy_names.add("numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        random_names.add(alias.asname or "random")
    return numpy_names, random_names


@register
class UnseededRandomRule(Rule):
    """DET001 — all randomness must flow through ``repro.utils.rng``."""

    id = "DET001"
    name = "unseeded or global random source"
    rationale = (
        "Scenario outputs are a pure function of the config seed.  The "
        "stdlib `random` module and numpy's legacy `np.random.*` "
        "functions draw from hidden global state, and "
        "`np.random.default_rng()` without a seed draws from the OS — "
        "any of them makes two identical runs diverge.  Use "
        "`repro.utils.rng.make_rng` / `child_rng` instead."
    )
    interests = (ast.Import, ast.ImportFrom, ast.Call)

    def begin_module(self, ctx) -> None:
        self._exempt = ctx.relpath_matches(ctx.config.det001_exempt)
        self._np_names, self._np_random_names = _numpy_aliases(ctx.tree)

    def visit(self, node: ast.AST, ctx, walker) -> None:
        if self._exempt:
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    ctx.report(self, node,
                               "import of the stdlib `random` module "
                               "(hidden global RNG state); use "
                               "repro.utils.rng instead")
            return
        if isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module is not None and (
                node.module == "random" or node.module.startswith("random.")
            ):
                ctx.report(self, node,
                           "import from the stdlib `random` module "
                           "(hidden global RNG state); use "
                           "repro.utils.rng instead")
            return
        # ast.Call
        name = call_name(node)
        if name is None:
            return
        parts = name.split(".")
        # np.random.<fn>(...) via a numpy module alias
        if (len(parts) == 3 and parts[0] in self._np_names
                and parts[1] == "random"):
            fn = parts[2]
        # <random_alias>.<fn>(...) via `from numpy import random`
        elif len(parts) == 2 and parts[0] in self._np_random_names:
            fn = parts[1]
        else:
            fn = None
        if fn in _NP_GLOBAL_FNS:
            ctx.report(self, node,
                       f"numpy legacy global RNG call `{name}(...)` "
                       "bypasses the seeded generator plumbing; use "
                       "repro.utils.rng.make_rng / child_rng")
            return
        if fn == "default_rng" and not node.args and not node.keywords:
            ctx.report(self, node,
                       f"`{name}()` without a seed draws OS entropy; "
                       "pass an explicit seed or use repro.utils.rng")


#: Call names treated as order-sensitive sinks.
_SINK_NAMES = frozenset({
    "json.dumps", "json.dump", "hash", "pickle.dumps", "pickle.dump",
    "marshal.dumps",
})

#: ``obj.<attr>(...)`` sinks (str.join, executor submission, csv).
_SINK_ATTRS = frozenset({"join", "submit", "map", "writerows", "writerow"})


def _unordered_core(expr: ast.AST) -> Optional[ast.AST]:
    """The subexpression injecting set/dict-view iteration order.

    Descends through ``list``/``tuple`` wrappers and into the driving
    iterable of comprehensions; a ``sorted(...)`` wrapper anywhere on
    the way down makes the whole expression ordered.
    """
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return expr
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name in {"set", "frozenset"}:
            return expr
        if name == "sorted":
            return None
        if name in {"list", "tuple"} and expr.args:
            return _unordered_core(expr.args[0])
        if attr_name(expr) in {"keys", "values"}:
            return expr
        return None
    if isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
        return _unordered_core(expr.generators[0].iter)
    return None


@register
class UnorderedIterationRule(Rule):
    """DET002 — no set/dict-view iteration into order-sensitive sinks."""

    id = "DET002"
    name = "unordered iteration reaches an order-sensitive sink"
    rationale = (
        "Set iteration order varies with insertion history and hash "
        "randomisation.  When a set, frozenset or dict view flows into "
        "serialisation (`json.dumps`, `.join`, `writerows`), hashing, "
        "or process-pool submission, two equivalent runs can emit "
        "different bytes.  Wrap the iterable in `sorted(...)` at the "
        "boundary."
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx, walker) -> None:
        name = call_name(node)
        is_sink = (name in _SINK_NAMES
                   or attr_name(node) in _SINK_ATTRS)
        if not is_sink:
            return
        sink = name or f"<obj>.{attr_name(node)}"
        arguments = list(node.args)
        arguments.extend(kw.value for kw in node.keywords)
        for argument in arguments:
            core = _unordered_core(argument)
            if core is None:
                continue
            ctx.report(self, core,
                       f"unordered iterable reaches order-sensitive "
                       f"sink `{sink}(...)`; wrap it in sorted(...)")


#: Wall-clock / entropy calls banned inside fingerprint construction.
_CLOCK_SUFFIXES = (
    "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
    "datetime.today", "uuid.uuid1", "uuid.uuid4", "os.urandom",
    "secrets.token_hex", "secrets.token_bytes", "secrets.token_urlsafe",
)

#: Bare names (bound by ``from x import y``) with the same meaning.
_CLOCK_BARE = frozenset({"time", "time_ns", "uuid1", "uuid4", "urandom",
                         "token_hex", "token_bytes", "token_urlsafe"})


@register
class WallClockInKeyRule(Rule):
    """DET003 — no wall clock or entropy in cache keys/fingerprints."""

    id = "DET003"
    name = "wall-clock or entropy value in key/fingerprint construction"
    rationale = (
        "Cache keys and config fingerprints are content addresses: the "
        "same inputs must produce the same key tomorrow, on another "
        "machine, in another process.  `time.time()`, `datetime.now()`, "
        "`uuid4()` or `os.urandom()` inside a function that builds a "
        "key silently turns the cache into a miss machine (or worse, a "
        "collision).  Derive keys only from config content and code "
        "version."
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx, walker) -> None:
        contexts = ctx.config.det003_contexts
        enclosing = [
            fn_name for fn_name in walker.enclosing_function_names()
            if any(marker in fn_name.lower() for marker in contexts)
        ]
        if not enclosing:
            return
        name = call_name(node)
        if name is None:
            return
        banned = (
            any(name == suffix or name.endswith("." + suffix)
                for suffix in _CLOCK_SUFFIXES)
            or ("." not in name and name in _CLOCK_BARE)
        )
        if banned:
            ctx.report(self, node,
                       f"`{name}(...)` inside key/fingerprint function "
                       f"`{enclosing[-1]}` makes the content address "
                       "time- or entropy-dependent")
