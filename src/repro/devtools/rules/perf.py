"""Hot-path performance lint: PERF001, PERF002.

PR 5/6 established the columnar idiom: propagation, inference and the
corpus substrate run as numpy/CSR array passes over
``ColumnarIndices``, not per-element Python loops over dicts of paths.
Nothing *structural* stops a scalar loop from creeping back in, though
— a helper three calls below ``ASRank.infer`` can quietly walk
``corpus.paths`` one route at a time and the differential tests will
still pass (slowly).  These rules make the idiom machine-checked: any
function *reachable from a hot entry point* (the propagation/inference/
columnar modules) that loops per-element over corpus/route/topology
structures is a finding.

The legacy dict engine is the sanctioned exception — it exists as the
byte-identical differential baseline and is deliberately scalar — so
functions whose qualname carries a ``legacy`` marker are exempt and
pruned from traversal (a helper only the legacy engine calls is legacy
too).
"""

from __future__ import annotations

from typing import List

from repro.devtools.findings import Finding
from repro.devtools.registry import ProgramRule, register


class _HotPathRule(ProgramRule):
    """Shared reachability scaffolding for the PERF family."""

    #: Loop fact kind this rule reports.
    loop_kind = ""

    def check_program(self, project, config) -> List[Finding]:
        markers = tuple(m.lower() for m in config.perf_exempt_markers)

        def exempt(fid: str) -> bool:
            qualname = project.functions[fid]["qualname"].lower()
            return any(marker in qualname for marker in markers)

        roots = [
            fid for fid in project.functions_in_modules(
                config.perf_entry_modules)
            if not exempt(fid)
        ]
        parents = project.forward_reachable(roots, skip=exempt)
        findings: List[Finding] = []
        for fid in sorted(parents):
            record = project.functions[fid]
            loops = [loop for loop in record["loops"]
                     if loop[2] == self.loop_kind]
            if not loops:
                continue
            chain = project.chain(parents, fid)
            entry = project.pretty(chain[0][0])
            for desc, lineno, _kind in loops:
                findings.append(Finding(
                    path=record["path"],
                    line=lineno,
                    col=1,
                    rule_id=self.id,
                    message=self._message(project, fid, desc, entry),
                ))
        return findings

    def _message(self, project, fid, desc, entry) -> str:
        raise NotImplementedError


@register
class ScalarLoopOnHotPathRule(_HotPathRule):
    """PERF001 — per-element loop over a hot structure on a hot path."""

    id = "PERF001"
    name = "per-element Python loop over corpus/route/topology data " \
           "on a hot path"
    loop_kind = "hot"
    rationale = (
        "The substrate's speed comes from columnar array passes: "
        "corpus indexing, ASRank and route propagation all run as "
        "whole-array numpy operations over `ColumnarIndices`/CSR "
        "adjacency (PR 5/6 measured 3x on exactly this change).  A "
        "per-element Python loop over paths, routes or topology links "
        "inside any function reachable from the propagation/inference/"
        "columnar entry points reverts that asymptotic win even though "
        "every test still passes.  Replace the loop with an array pass "
        "over the columnar views; if the loop is genuinely cold or the "
        "structure is tiny, suppress with `# repro: noqa[PERF001]` and "
        "say why.  The legacy dict engine (qualnames carrying "
        "`legacy`) is exempt by design — it is the differential "
        "baseline, not a hot path."
    )

    def _message(self, project, fid, desc, entry) -> str:
        return (
            f"per-element loop over `{desc}` in {project.pretty(fid)}, "
            f"reachable from hot entry point {entry}; use "
            "ColumnarIndices/CSR array passes"
        )


@register
class IndexWalkOnHotPathRule(_HotPathRule):
    """PERF002 — ``range(len(...))`` index walk on a hot path."""

    id = "PERF002"
    name = "range(len(...)) index walk on a hot path"
    loop_kind = "rangelen"
    rationale = (
        "A `for i in range(len(xs))` walk touches one element per "
        "Python bytecode iteration — the exact pattern the columnar "
        "engine exists to avoid, and the usual first symptom of a "
        "scalar re-write of an array pass.  On functions reachable "
        "from the propagation/inference/columnar entry points, index "
        "arithmetic belongs in numpy (`np.arange`, boolean masks, "
        "`np.add.at`, gather/scatter), which runs the same walk in C "
        "over the whole array at once.  Genuinely small fixed-size "
        "walks can be suppressed with `# repro: noqa[PERF002]`."
    )

    def _message(self, project, fid, desc, entry) -> str:
        return (
            f"`{desc}` index walk in {project.pretty(fid)}, reachable "
            f"from hot entry point {entry}; vectorize with numpy "
            "array passes"
        )
