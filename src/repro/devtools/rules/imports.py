"""Dependency rule: DEP001.

The project's declared runtime dependency set is the standard library
plus numpy (see ``pyproject.toml``).  An import of anything else in
``src/repro`` would make the package uninstallable exactly as
declared — this rule catches it at lint time instead of at a user's
``import repro``.
"""

from __future__ import annotations

import ast
import sys

from repro.devtools.registry import Rule, register


def _stdlib_names() -> frozenset:
    # Python 3.10+; the CI floor (3.10) and the dev container (3.11)
    # both have it.  The fallback keeps older interpreters from
    # drowning in false positives instead of hard-failing.
    names = getattr(sys, "stdlib_module_names", None)
    if names is None:  # pragma: no cover - pre-3.10 interpreters only
        return frozenset(sys.builtin_module_names) | {"__future__"}
    return frozenset(names)


_STDLIB = _stdlib_names()


def _module_allowed(name: str, allowed: frozenset) -> bool:
    """True when the dotted module ``name`` or any ancestor package of
    it appears in ``allowed``.

    A bare root entry (``"numpy"``) therefore whitelists the whole
    tree, while a dotted entry (``"numpy.lib.format"``) whitelists
    exactly one subtree — so a config can admit a single submodule of
    an otherwise undeclared package.
    """
    parts = name.split(".")
    for end in range(1, len(parts) + 1):
        if ".".join(parts[:end]) in allowed:
            return True
    return False


@register
class UndeclaredDependencyRule(Rule):
    """DEP001 — imports must stay inside the declared dependency set."""

    id = "DEP001"
    name = "import outside the declared dependency set"
    rationale = (
        "The library declares exactly one third-party dependency "
        "(numpy).  Any other top-level import — even inside a rarely "
        "taken branch — breaks a clean install at runtime.  Gate "
        "optional integrations behind a declared extra or vendor the "
        "logic."
    )
    interests = (ast.Import, ast.ImportFrom)

    def _allowed(self, ctx) -> frozenset:
        config = ctx.config
        allowed = (_STDLIB
                   | frozenset(config.first_party)
                   | frozenset(config.allowed_imports)
                   | frozenset(config.extra_allowed_imports))
        # Tree-scoped allowances: benchmarks/ and tests/ legitimately
        # import pytest (and their own conftest); src/ never may.
        segments = set(ctx.relpath.split("/"))
        for segment, extra in config.tree_allowed_imports:
            if segment in segments:
                allowed |= frozenset(extra)
        return allowed

    def visit(self, node: ast.AST, ctx, walker) -> None:
        allowed = self._allowed(ctx)
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        else:  # ImportFrom
            if node.level > 0 or node.module is None:
                return  # relative imports are first-party by definition
            modules = [node.module]
        for module in modules:
            if not _module_allowed(module, allowed):
                ctx.report(self, node,
                           f"import of `{module}` is outside the declared "
                           "dependency set (stdlib + "
                           f"{', '.join(sorted(ctx.config.allowed_imports))}"
                           ")")
