"""Interprocedural determinism-taint rules: FLOW101, FLOW102, FLOW103.

The per-file DET rules stop at function boundaries: DET003 sees a
``time.time()`` only when it is written *inside* a ``*key*`` function,
and DET001 cannot see that a helper's return value ends up hashed into
a fingerprint two modules away.  The FLOW family closes that gap by
walking the project call graph from every fingerprint/cache-key/
serialisation *sink function* and reporting any reachable function that
contains a nondeterminism source.  Chains of length zero (the source
sits inside the sink itself) are deliberately left to the per-file
rules — FLOW findings are interprocedural by construction, so the two
layers never double-report.

Each finding is anchored at the first call the sink makes toward the
source (the natural place for a ``# repro: noqa[FLOW10x]`` when the
flow is intentional) and its message spells out the whole chain.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.devtools.findings import Finding
from repro.devtools.registry import ProgramRule, register


def _sink_functions(project, contexts: Tuple[str, ...]) -> List[str]:
    """Function ids whose leaf name marks key/fingerprint/serialise."""
    out = []
    for fid in sorted(project.functions):
        qualname = project.functions[fid]["qualname"]
        leaf = qualname.rsplit(".", 1)[-1].lower()
        if any(marker in leaf for marker in contexts):
            out.append(fid)
    return out


class _TaintFlowRule(ProgramRule):
    """Shared machinery: sources of one kind reached from sink roots."""

    #: Source fact kind in the module summaries.
    kind = ""
    #: Human label for the source in the finding message.
    source_label = ""

    def _sources(self, project, config) -> Dict[str, Tuple[str, int]]:
        exempt = tuple(config.det001_exempt)
        out: Dict[str, Tuple[str, int]] = {}
        for fid in sorted(project.functions):
            record = project.functions[fid]
            if self.kind == "rng" and record["path"].endswith(exempt):
                continue  # the sanctioned RNG plumbing itself
            facts = [fact for fact in record["sources"]
                     if fact[0] == self.kind]
            if facts:
                out[fid] = (facts[0][1], facts[0][2])
        return out

    def check_program(self, project, config) -> List[Finding]:
        findings: List[Finding] = []
        sources = self._sources(project, config)
        if not sources:
            return findings
        contexts = tuple(config.flow_sink_contexts)
        for sink in _sink_functions(project, contexts):
            parents = project.forward_reachable([sink])
            sink_record = project.functions[sink]
            sink_leaf = sink_record["qualname"].rsplit(".", 1)[-1]
            for target in sorted(sources):
                if target == sink or target not in parents:
                    continue
                chain = project.chain(parents, target)
                route = " -> ".join(
                    project.pretty(fid) for fid, _ in chain)
                detail, _src_line = sources[target]
                findings.append(Finding(
                    path=sink_record["path"],
                    line=chain[1][1],
                    col=1,
                    rule_id=self.id,
                    message=(
                        f"{self.source_label} `{detail}` in "
                        f"{project.pretty(target)} reaches "
                        f"`{sink_leaf}` via {route}"
                    ),
                ))
        return findings


@register
class RngTaintRule(_TaintFlowRule):
    """FLOW101 — unseeded randomness tainting a content address."""

    id = "FLOW101"
    name = "unseeded RNG value reaches a fingerprint/cache-key sink"
    kind = "rng"
    source_label = "unseeded RNG"
    rationale = (
        "Cache keys, fingerprints and serialised artifacts are content "
        "addresses: the same config must produce the same bytes in "
        "every run.  An unseeded RNG — legacy `np.random.*` state, "
        "`default_rng()` with no seed, a bare `PCG64()` bit generator, "
        "or the stdlib `random` module — anywhere in a sink function's "
        "call chain silently poisons that guarantee, even when the "
        "draw happens modules away from the sink.  The per-file DET001 "
        "rule flags the source file; FLOW101 proves the *connection* "
        "and is the rule that blocks the taint from reaching a key.  "
        "Thread a seeded generator from repro.utils.rng through the "
        "chain instead."
    )


@register
class ClockTaintRule(_TaintFlowRule):
    """FLOW102 — wall-clock/entropy tainting a content address."""

    id = "FLOW102"
    name = "wall-clock or entropy value reaches a fingerprint sink"
    kind = "clock"
    source_label = "wall-clock/entropy read"
    rationale = (
        "DET003 bans `time.time()` and friends inside functions whose "
        "own name marks them as key construction — but a helper named "
        "`build_meta()` that stamps `datetime.now()` into a dict which "
        "a `cache_key()` then hashes is invisible to it.  FLOW102 "
        "follows the call graph from every key/fingerprint/digest/"
        "serialise function and reports any reachable wall-clock or "
        "entropy read, with the full call chain in the message.  Keep "
        "time out of content addresses; record timestamps next to the "
        "artifact, never inside its identity."
    )


@register
class UnorderedTaintRule(_TaintFlowRule):
    """FLOW103 — set/dict-view ordering escaping into a sink."""

    id = "FLOW103"
    name = "unordered iteration order reaches a serialisation sink"
    kind = "unordered"
    source_label = "unordered iteration"
    rationale = (
        "DET002 catches `json.dumps(set(...))` in one expression, but "
        "a helper that *returns* a set (or dict view) hands its "
        "iteration order to every caller — and when a fingerprint or "
        "serialiser in another module joins or hashes that value, two "
        "equivalent runs emit different bytes.  FLOW103 reports sink "
        "functions whose call chain reaches a function returning "
        "unordered iteration.  Sort at the producer (`return "
        "sorted(...)`) so every consumer inherits a stable order."
    )
