"""Async-safety rules: ASYNC001, ASYNC002.

The query service promises a never-blocked event loop: ``/healthz``
answers while a paper-scale scenario builds.  That only holds if no
coroutine ever performs blocking work inline and no task is left to be
garbage-collected mid-flight.
"""

from __future__ import annotations

import ast

from repro.devtools.registry import (
    Rule,
    attr_name,
    call_name,
    parent_of,
    register,
)

#: Dotted call names that block the calling thread.
_BLOCKING_NAMES = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_output",
    "subprocess.check_call", "subprocess.Popen",
    "os.system", "os.waitpid",
    "socket.create_connection",
    "urllib.request.urlopen",
    "open", "input",
    "ServiceClient",
})

#: ``obj.<attr>(...)`` calls that block (sync file I/O, future joins).
_BLOCKING_ATTRS = frozenset({
    "result",                       # concurrent.futures / threadsafe joins
    "read_text", "write_text", "read_bytes", "write_bytes",
    "sleep_until",
})

#: Attribute calls that are fine despite matching nothing else —
#: asyncio's own scheduling APIs a coroutine is supposed to use.
_ASYNC_OK_SUFFIXES = ("run_in_executor",)


@register
class BlockingCallInCoroutineRule(Rule):
    """ASYNC001 — no blocking calls inside ``async def`` bodies."""

    id = "ASYNC001"
    name = "blocking call inside a coroutine"
    rationale = (
        "A coroutine runs on the event loop's only thread: one "
        "`time.sleep`, `subprocess.run`, sync file read, blocking "
        "`Future.result()` or blocking-client call freezes every "
        "in-flight request (and `/healthz`) until it returns.  Move "
        "the work behind `loop.run_in_executor(...)` or use the "
        "asyncio-native equivalent."
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx, walker) -> None:
        if not walker.in_async_function():
            return
        name = call_name(node)
        if name is not None and any(
            name.endswith(suffix) for suffix in _ASYNC_OK_SUFFIXES
        ):
            return
        blocking = False
        label = name
        if name is not None and (
            name in _BLOCKING_NAMES
            or any(name.endswith("." + banned)
                   for banned in _BLOCKING_NAMES if "." in banned)
        ):
            blocking = True
        else:
            attribute = attr_name(node)
            if attribute in _BLOCKING_ATTRS:
                blocking = True
                label = name or f"<expr>.{attribute}"
        if blocking:
            ctx.report(self, node,
                       f"blocking call `{label}(...)` inside an async "
                       "def; dispatch it via run_in_executor or an "
                       "asyncio-native API")


@register
class FireAndForgetTaskRule(Rule):
    """ASYNC002 — every created task must be retained."""

    id = "ASYNC002"
    name = "asyncio task created and immediately dropped"
    rationale = (
        "The event loop keeps only a weak reference to tasks: a "
        "`create_task(...)` whose result is not stored, awaited or "
        "registered can be garbage-collected mid-execution, silently "
        "cancelling the work.  Assign the task, await it, or add it to "
        "a collection with a done-callback that discards it."
    )
    interests = (ast.Call,)

    def visit(self, node: ast.AST, ctx, walker) -> None:
        target = attr_name(node) or call_name(node)
        if target not in {"create_task", "ensure_future"}:
            return
        parent = parent_of(node)
        if isinstance(parent, ast.Expr):
            ctx.report(self, node,
                       "task created and dropped (fire-and-forget); "
                       "the loop holds only a weak reference — retain "
                       "the task object")
