"""Assemble a :class:`ProjectGraph` from files, through the cache.

The engine hands over the ``(relpath, source, tree)`` triples it
already parsed for the per-file pass, so a cold whole-program run costs
one summary extraction per module on top of normal linting, and a warm
run (cache hit) costs only the content hash.
"""

from __future__ import annotations

import ast
import hashlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.devtools.analysis.cache import SummaryCache, summary_key
from repro.devtools.analysis.graph import ProjectGraph
from repro.devtools.analysis.summaries import summarize_module


def extraction_config_digest(config) -> str:
    """Digest of the LintConfig knobs that shape summary *extraction*.

    Rule-time knobs (sink contexts, entry-point modules) do not
    invalidate cached summaries — only knobs that change what the
    summarizer records do.
    """
    payload = repr(tuple(config.perf_hot_names))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def build_project(
    items: Iterable[Tuple[str, str, Optional[ast.Module]]],
    config,
    cache: Optional[SummaryCache] = None,
) -> Tuple[ProjectGraph, Dict[str, int]]:
    """``(graph, cache stats)`` for ``(relpath, source, tree)`` items.

    ``tree`` may be ``None`` for files that did not parse (they carry a
    SYN001 finding from the per-file pass); such files contribute no
    summary.  When ``tree`` is ``None`` but the source *does* parse
    (the --call-graph path reads files itself), it is parsed here.
    """
    digest = extraction_config_digest(config)
    summaries: List[Dict[str, Any]] = []
    for relpath, source, tree in items:
        key = summary_key(relpath, source, digest)
        summary = cache.get(key) if cache is not None else None
        if summary is None:
            if tree is None:
                try:
                    tree = ast.parse(source, filename=relpath)
                except SyntaxError:
                    continue
            summary = summarize_module(
                relpath, tree, tuple(config.perf_hot_names))
            if cache is not None:
                cache.put(key, summary)
        summaries.append(summary)
    graph = ProjectGraph(summaries)
    stats = dict(graph.stats())
    if cache is not None:
        stats.update(cache.stats())
    else:
        stats.update({"hits": 0, "misses": len(summaries), "stores": 0})
    return graph, stats
