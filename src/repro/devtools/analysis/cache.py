"""Content-hash cache for per-module analysis summaries.

A summary is a pure function of ``(ANALYSIS_VERSION, extraction config,
relpath, source bytes)``, so the cache key is simply the SHA-256 of
that tuple and no invalidation protocol is needed: editing a file,
bumping the analysis version, or changing an extraction knob all
produce a different key, and the stale entry is never read again
(a sweep of very old files can reclaim the directory at leisure).

Entries are single JSON files, written atomically (unique temp name +
``os.replace``) with sorted keys and no timestamps, so a given summary
serialises byte-identically on every run and the cache directory
itself diffs cleanly.  A belt-and-braces ``analysis_version`` field
inside each entry is re-checked on load so a manually copied or
tampered file from another version is rejected rather than trusted.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional

from repro.devtools.analysis import summaries as _summaries


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR/analysis`` or ``~/.cache/repro/analysis``."""
    root = os.environ.get("REPRO_CACHE_DIR")
    base = Path(root) if root else Path("~/.cache/repro").expanduser()
    return base / "analysis"


def summary_key(relpath: str, source: str, config_digest: str) -> str:
    """The content hash addressing one module summary."""
    payload = (
        f"repro-analysis:{_summaries.ANALYSIS_VERSION}:"
        f"{config_digest}:{relpath}:".encode("utf-8")
        + source.encode("utf-8")
    )
    return hashlib.sha256(payload).hexdigest()


class SummaryCache:
    """On-disk summary store keyed by content hash (see module doc)."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._counter = 0

    def _path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path_for(key)
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (not isinstance(document, dict)
                or document.get("analysis_version")
                != _summaries.ANALYSIS_VERSION):
            self.misses += 1
            return None
        self.hits += 1
        return document

    def put(self, key: str, summary: Dict[str, Any]) -> None:
        path = self._path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            self._counter += 1
            tmp = path.with_name(
                f".{path.name}.{os.getpid()}.{self._counter}.tmp")
            tmp.write_text(
                json.dumps(summary, sort_keys=True,
                           separators=(",", ":")) + "\n",
                encoding="utf-8",
            )
            os.replace(tmp, path)
        except OSError:
            # A read-only or full cache directory degrades to a
            # cache-less run, never to a failed lint.
            return
        self.stores += 1

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores}
