"""repro.devtools.analysis — whole-program analysis under the linter.

The per-file linter (PR 3) sees one AST at a time, but the contracts it
guards — determinism of fingerprints, columnar hot paths, a never-
blocked event loop — are *cross-module* properties.  This package adds
the project-wide layer:

* :mod:`~repro.devtools.analysis.summaries` — per-module analysis
  summaries (defs, import aliases, call edges, taint/perf/concurrency
  facts) extracted in one AST pass;
* :mod:`~repro.devtools.analysis.cache` — content-hash summary cache so
  warm re-runs skip extraction entirely;
* :mod:`~repro.devtools.analysis.graph` — the
  :class:`~repro.devtools.analysis.graph.ProjectGraph`: module index,
  conservative name-resolved call graph, executor edges, reachability;
* :mod:`~repro.devtools.analysis.project` — glue that builds the graph
  from files through the cache.

The interprocedural rule families themselves (FLOW1xx, PERF0xx,
CONC0xx) live with the other rules in :mod:`repro.devtools.rules` and
are registered through the same registry; the engine runs them when
``repro lint --whole-program`` is requested.
"""

from repro.devtools.analysis.cache import (
    SummaryCache,
    default_cache_root,
    summary_key,
)
from repro.devtools.analysis.graph import ProjectGraph
from repro.devtools.analysis.project import (
    build_project,
    extraction_config_digest,
)
from repro.devtools.analysis.summaries import (
    ANALYSIS_VERSION,
    module_name_for,
    summarize_module,
)

__all__ = [
    "ANALYSIS_VERSION",
    "ProjectGraph",
    "SummaryCache",
    "build_project",
    "default_cache_root",
    "extraction_config_digest",
    "module_name_for",
    "summarize_module",
    "summary_key",
]
