"""Per-module analysis summaries — the unit of whole-program linting.

One :func:`summarize_module` call distils a parsed module into a plain
JSON-able dict of the facts the interprocedural rules need:

* **namespace** — the functions/classes the module defines (dotted
  qualnames, ``Class.method`` / ``outer.inner``), its import alias map
  (with relative imports resolved against the module name), and its
  top-level mutable-looking globals;
* **call edges** — every dotted-callee call each function makes, plus
  the callables it hands to thread/process executors;
* **taint facts** — nondeterminism sources per function (unseeded RNG
  including bare ``PCG64()``-style bit generators the per-file DET001
  rule cannot see, wall-clock/entropy reads, ``return``-ed set/dict-view
  ordering);
* **perf facts** — per-element loops over corpus/route/topology-shaped
  structures and ``range(len(...))`` index walks;
* **concurrency facts** — mutations of module-level or instance state
  (with or without a ``with <lock>:`` guard) and ``await`` expressions
  evaluated while a *synchronous* lock is held.

Summaries are pure values: byte-stable under ``json.dumps(sort_keys)``
and a function of (source, ANALYSIS_VERSION, extraction config), which
is exactly what makes the on-disk summary cache sound.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.devtools.registry import attr_name, call_name, dotted_name
# Shared with the per-file determinism rules so both layers agree on
# what counts as a nondeterminism source.
from repro.devtools.rules.determinism import (
    _CLOCK_SUFFIXES,
    _NP_GLOBAL_FNS,
    _numpy_aliases,
    _unordered_core,
)

#: Bumped whenever summary extraction or the rule families change in a
#: way that invalidates cached summaries.
ANALYSIS_VERSION = 1

#: Unseeded numpy bit generators: ``np.random.PCG64()`` without a seed
#: draws OS entropy exactly like ``default_rng()`` — and is invisible
#: to the per-file DET001 rule, which is why FLOW101 tracks it.
_UNSEEDED_BIT_GENERATORS = frozenset(
    {"PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64"}
)

#: Method calls that mutate their receiver in place.
_MUTATING_METHODS = frozenset({
    "append", "add", "update", "pop", "popitem", "clear", "extend",
    "insert", "remove", "discard", "setdefault", "move_to_end",
    "appendleft", "popleft", "sort", "reverse",
})

#: Constructors whose callee name marks a lock object.
_LOCK_NAME_MARKER = "lock"

#: ``self.x = ...`` inside these methods is object construction, not a
#: shared-state mutation (nothing else can see the instance yet).
_CONSTRUCTION_METHODS = frozenset({"__init__", "__new__", "__post_init__"})


def module_name_for(path: Path) -> Tuple[str, bool]:
    """``(dotted module name, is_package)`` for a python file.

    Walks up through ``__init__.py``-bearing directories so the name
    matches what ``import`` would bind — ``src/repro/pipeline/cache.py``
    becomes ``repro.pipeline.cache`` without hardcoding any layout.
    """
    path = Path(path)
    is_package = path.name == "__init__.py"
    parts: List[str] = [] if is_package else [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    if not parts:  # a stray __init__.py with no package parent
        parts = [path.parent.name]
    return ".".join(parts), is_package


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: Optional[str]) -> str:
    """Absolute dotted target of a ``from ...x import y`` statement."""
    base = module.split(".")
    if not is_package:
        base = base[:-1]
    drop = level - 1
    if drop:
        base = base[:len(base) - drop] if drop < len(base) else []
    prefix = ".".join(base)
    if target:
        return f"{prefix}.{target}" if prefix else target
    return prefix


def _lockish(expr: ast.AST) -> Optional[str]:
    """A description of ``expr`` when it looks like a lock, else None.

    Matches by name: any Name/Attribute chain or call whose dotted name
    contains ``lock`` (``self._lock``, ``asyncio.Lock()``,
    ``EntryLock(root, key)``, ``cache.entry_lock(k)``).
    """
    name = dotted_name(expr)
    if name is None and isinstance(expr, ast.Call):
        name = call_name(expr)
    if name is not None and _LOCK_NAME_MARKER in name.lower():
        return name
    return None


def _iter_components(expr: ast.AST) -> Tuple[Optional[str], List[str]]:
    """``(description, name components)`` of a loop's iterable.

    Descends ``.items()/.values()/.keys()`` calls to their receiver so
    ``corpus.paths.items()`` yields components ``[corpus, paths]``.
    """
    suffix = ""
    if isinstance(expr, ast.Call) and attr_name(expr) in {
        "items", "values", "keys"
    }:
        suffix = f".{expr.func.attr}()"
        expr = expr.func.value  # type: ignore[union-attr]
    name = dotted_name(expr)
    if name is None:
        return None, []
    parts = [part for part in name.split(".") if part != "self"]
    return name + suffix, parts


def _range_len_target(expr: ast.AST) -> Optional[str]:
    """The ``x`` of a ``range(len(x))`` iterable, else None."""
    if not (isinstance(expr, ast.Call) and call_name(expr) == "range"
            and len(expr.args) == 1):
        return None
    inner = expr.args[0]
    if (isinstance(inner, ast.Call) and call_name(inner) == "len"
            and len(inner.args) == 1):
        return dotted_name(inner.args[0]) or "<expr>"
    return None


class _FunctionRecord:
    """Mutable accumulator for one function's facts."""

    __slots__ = ("qualname", "lineno", "is_async", "calls",
                 "executor_refs", "sources", "loops", "mutations",
                 "lock_awaits", "global_decls")

    def __init__(self, qualname: str, lineno: int, is_async: bool):
        self.qualname = qualname
        self.lineno = lineno
        self.is_async = is_async
        self.calls: List[List[Any]] = []          # [name, lineno, nargs]
        self.executor_refs: List[List[Any]] = []  # [kind, callee, lineno]
        self.sources: List[List[Any]] = []        # [kind, detail, lineno]
        self.loops: List[List[Any]] = []          # [desc, lineno, kind]
        self.mutations: List[List[Any]] = []      # [state, lineno, guarded]
        self.lock_awaits: List[List[Any]] = []    # [lineno, lock desc]
        self.global_decls: set = set()

    def as_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "lineno": self.lineno,
            "is_async": self.is_async,
            "calls": self.calls,
            "executor_refs": self.executor_refs,
            "sources": self.sources,
            "loops": self.loops,
            "mutations": self.mutations,
            "lock_awaits": self.lock_awaits,
        }


def _executor_kinds(tree: ast.Module) -> Dict[str, str]:
    """Names/attr-chains bound to executors -> ``thread``/``process``."""
    kinds: Dict[str, str] = {}

    def classify(value: ast.AST) -> Optional[str]:
        if not isinstance(value, ast.Call):
            return None
        callee = call_name(value) or ""
        if callee.endswith("ProcessPoolExecutor"):
            return "process"
        if callee.endswith("ThreadPoolExecutor"):
            return "thread"
        return None

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            kind = classify(node.value)
            if kind is None:
                continue
            for target in node.targets:
                name = dotted_name(target)
                if name:
                    kinds[name] = kind
        elif isinstance(node, ast.withitem):
            kind = classify(node.context_expr)
            if kind is not None and node.optional_vars is not None:
                name = dotted_name(node.optional_vars)
                if name:
                    kinds[name] = kind
    return kinds


def _module_globals(tree: ast.Module) -> List[str]:
    """Top-level names bound by assignment (module state candidates)."""
    names: List[str] = []

    def scan(body) -> None:
        for node in body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.append(target.id)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value:
                    names.append(node.target.id)
            elif isinstance(node, (ast.If, ast.Try)):
                scan(node.body)
                scan(getattr(node, "orelse", []))

    scan(tree.body)
    return sorted(set(names))


class _Summarizer(ast.NodeVisitor):
    def __init__(self, module: str, is_package: bool, tree: ast.Module,
                 hot_names: Tuple[str, ...]):
        self.module = module
        self.is_package = is_package
        self.hot_names = frozenset(hot_names)
        self.imports: Dict[str, str] = {}
        self.defs: List[str] = []
        self.classes: List[str] = []
        self.globals = _module_globals(tree)
        self.functions: List[_FunctionRecord] = []
        self._np_modules, self._np_random = _numpy_aliases(tree)
        self._pools = _executor_kinds(tree)
        self._scope: List[Tuple[str, str]] = []   # (kind, name)
        self._fn_stack: List[_FunctionRecord] = []
        self._lock_stack: List[str] = []          # all lock-guard withs
        self._sync_lock_stack: List[str] = []     # sync (non-async) only
        #: Generator expressions feeding ``np.fromiter(...)`` — that is
        #: the sanctioned array-construction pass, not a scalar loop.
        self._fromiter_genexps: set = set()

    # -- naming helpers -------------------------------------------------
    def _qualname(self, name: str) -> str:
        return ".".join([n for _, n in self._scope] + [name])

    def _current_class(self) -> Optional[str]:
        for kind, name in reversed(self._scope):
            if kind == "class":
                return name
        return None

    def _fn(self) -> Optional[_FunctionRecord]:
        return self._fn_stack[-1] if self._fn_stack else None

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.imports[alias.asname] = alias.name
            else:
                root = alias.name.split(".")[0]
                self.imports.setdefault(root, root)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level > 0:
            base = _resolve_relative(self.module, self.is_package,
                                     node.level, node.module)
        else:
            base = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            target = f"{base}.{alias.name}" if base else alias.name
            self.imports[alias.asname or alias.name] = target
        self.generic_visit(node)

    # -- scopes ---------------------------------------------------------
    def _visit_function(self, node, is_async: bool) -> None:
        record = _FunctionRecord(self._qualname(node.name), node.lineno,
                                 is_async)
        self.defs.append(record.qualname)
        self.functions.append(record)
        self._scope.append(("function", node.name))
        self._fn_stack.append(record)
        self.generic_visit(node)
        self._fn_stack.pop()
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, is_async=True)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.classes.append(self._qualname(node.name))
        self._scope.append(("class", node.name))
        self.generic_visit(node)
        self._scope.pop()

    def visit_Global(self, node: ast.Global) -> None:
        fn = self._fn()
        if fn is not None:
            fn.global_decls.update(node.names)
        self.generic_visit(node)

    # -- locks / awaits -------------------------------------------------
    def _visit_with(self, node, is_async: bool) -> None:
        locks = [desc for item in node.items
                 for desc in [_lockish(item.context_expr)] if desc]
        for desc in locks:
            self._lock_stack.append(desc)
            if not is_async:
                self._sync_lock_stack.append(desc)
        self.generic_visit(node)
        for desc in locks:
            self._lock_stack.pop()
            if not is_async:
                self._sync_lock_stack.pop()

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node, is_async=False)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node, is_async=True)

    def visit_Await(self, node: ast.Await) -> None:
        fn = self._fn()
        if fn is not None and self._sync_lock_stack:
            fn.lock_awaits.append([node.lineno, self._sync_lock_stack[-1]])
        self.generic_visit(node)

    # -- returns (unordered-iteration escape) ---------------------------
    def visit_Return(self, node: ast.Return) -> None:
        fn = self._fn()
        if fn is not None and node.value is not None:
            core = _unordered_core(node.value)
            if core is not None:
                desc = dotted_name(core)
                if desc is None and isinstance(core, ast.Call):
                    desc = call_name(core) or attr_name(core) or "set"
                elif desc is None:
                    desc = "set"
                fn.sources.append(
                    ["unordered", f"returns {desc} iteration order",
                     node.lineno])
        self.generic_visit(node)

    # -- loops ----------------------------------------------------------
    def _record_loop(self, iterable: ast.AST, lineno: int) -> None:
        fn = self._fn()
        if fn is None:
            return
        target = _range_len_target(iterable)
        if target is not None:
            fn.loops.append([f"range(len({target}))", lineno, "rangelen"])
            return
        desc, parts = _iter_components(iterable)
        if desc and any(part.lower() in self.hot_names for part in parts):
            fn.loops.append([desc, lineno, "hot"])

    def visit_For(self, node: ast.For) -> None:
        self._record_loop(node.iter, node.lineno)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._record_loop(node.iter, node.lineno)
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        if id(node) not in self._fromiter_genexps:
            self._record_loop(node.generators[0].iter, node.lineno)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- mutations ------------------------------------------------------
    def _state_key(self, target: ast.AST,
                   rebinding: bool) -> Optional[str]:
        """``global:NAME`` / ``self:Class.attr`` for a mutation target."""
        fn = self._fn()
        if isinstance(target, ast.Name):
            if fn is not None and target.id in fn.global_decls:
                return f"global:{target.id}"
            if not rebinding and target.id in self.globals:
                # In-place mutation (subscript/method) of a module
                # global needs no `global` declaration.
                return f"global:{target.id}"
            return None
        if (isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"):
            cls = self._current_class()
            if cls is None:
                return None
            leaf = (fn.qualname.rsplit(".", 1)[-1]
                    if fn is not None else "")
            if rebinding and leaf in _CONSTRUCTION_METHODS:
                return None
            return f"self:{cls}.{target.attr}"
        return None

    def _record_mutation(self, key: Optional[str], lineno: int) -> None:
        fn = self._fn()
        if fn is None or key is None:
            return
        guarded = 1 if self._lock_stack else 0
        fn.mutations.append([key, lineno, guarded])

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._record_mutation(
                    self._state_key(target.value, rebinding=False),
                    node.lineno)
            else:
                self._record_mutation(
                    self._state_key(target, rebinding=True), node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Subscript):
            key = self._state_key(target.value, rebinding=False)
        else:
            key = self._state_key(target, rebinding=True)
        self._record_mutation(key, node.lineno)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                self._record_mutation(
                    self._state_key(target.value, rebinding=False),
                    node.lineno)
        self.generic_visit(node)

    # -- calls ----------------------------------------------------------
    def _classify_rng(self, name: str, nargs: int) -> Optional[str]:
        parts = name.split(".")
        fn = None
        if (len(parts) == 3 and parts[0] in self._np_modules
                and parts[1] == "random"):
            fn = parts[2]
        elif len(parts) == 2 and parts[0] in self._np_random:
            fn = parts[1]
        if fn in _NP_GLOBAL_FNS:
            return f"{name} (numpy global RNG)"
        if fn == "default_rng" and nargs == 0:
            return f"{name}() without a seed"
        if fn in _UNSEEDED_BIT_GENERATORS and nargs == 0:
            return f"{name}() without a seed"
        # stdlib random through the import alias map
        expanded = self._expand(name)
        if expanded == "random" or expanded.startswith("random."):
            return f"{name} (stdlib random)"
        return None

    def _classify_clock(self, name: str) -> Optional[str]:
        # The alias map turns `from time import time` into `time.time`,
        # so (unlike the per-file DET003 bare-name heuristic) a local
        # helper that happens to be called `time` is not a source.
        expanded = self._expand(name)
        for candidate in (name, expanded):
            if any(candidate == suffix or candidate.endswith("." + suffix)
                   for suffix in _CLOCK_SUFFIXES):
                return name
        return None

    def _expand(self, name: str) -> str:
        parts = name.split(".")
        target = self.imports.get(parts[0])
        if target is None:
            return name
        return ".".join([target] + parts[1:])

    def visit_Call(self, node: ast.Call) -> None:
        fn = self._fn()
        name = call_name(node)
        if fn is not None and name is not None:
            nargs = len(node.args) + len(node.keywords)
            fn.calls.append([name, node.lineno, nargs])
            rng = self._classify_rng(name, nargs)
            if rng is not None:
                fn.sources.append(["rng", rng, node.lineno])
            else:
                clock = self._classify_clock(name)
                if clock is not None:
                    fn.sources.append(
                        ["clock", f"{clock}(...)", node.lineno])
        if fn is not None:
            self._record_executor_ref(node, name, fn)
            self._record_method_mutation(node, fn)
        if name is not None and name.endswith("fromiter"):
            for arg in node.args:
                if isinstance(arg, ast.GeneratorExp):
                    self._fromiter_genexps.add(id(arg))
        self.generic_visit(node)

    def _record_executor_ref(self, node: ast.Call, name: Optional[str],
                             fn: _FunctionRecord) -> None:
        # loop.run_in_executor(executor, callee, *args)
        if name is not None and name.endswith("run_in_executor") \
                and len(node.args) >= 2:
            callee = dotted_name(node.args[1])
            if callee:
                receiver = dotted_name(node.args[0])
                kind = self._pools.get(receiver or "", "thread")
                fn.executor_refs.append([kind, callee, node.lineno])
            return
        attribute = attr_name(node)
        if attribute in {"submit", "map"} and node.args:
            receiver = dotted_name(node.func.value)  # type: ignore
            kind = None
            if receiver in self._pools:
                kind = self._pools[receiver]
            elif isinstance(node.func.value, ast.Call):  # type: ignore
                inline = call_name(node.func.value) or ""  # type: ignore
                if inline.endswith("ProcessPoolExecutor"):
                    kind = "process"
                elif inline.endswith("ThreadPoolExecutor"):
                    kind = "thread"
            if kind is not None:
                callee = dotted_name(node.args[0])
                if callee:
                    fn.executor_refs.append([kind, callee, node.lineno])
            return
        # ProcessPoolExecutor(initializer=fn): sanctioned per-worker
        # priming — recorded with its own kind so CONC003 can skip it.
        if name is not None and name.endswith("ProcessPoolExecutor"):
            for keyword in node.keywords:
                if keyword.arg == "initializer":
                    callee = dotted_name(keyword.value)
                    if callee:
                        fn.executor_refs.append(
                            ["process_init", callee, node.lineno])

    def _record_method_mutation(self, node: ast.Call,
                                fn: _FunctionRecord) -> None:
        attribute = attr_name(node)
        if attribute not in _MUTATING_METHODS:
            return
        receiver = node.func.value  # type: ignore[union-attr]
        key = self._state_key(receiver, rebinding=False)
        self._record_mutation(key, node.lineno)


def summarize_module(relpath: str, tree: ast.Module,
                     hot_names: Tuple[str, ...]) -> Dict[str, Any]:
    """The analysis summary of one parsed module (see module docstring)."""
    module, is_package = module_name_for(Path(relpath))
    visitor = _Summarizer(module, is_package, tree, hot_names)
    visitor.visit(tree)
    return {
        "analysis_version": ANALYSIS_VERSION,
        "module": module,
        "path": relpath,
        "imports": dict(sorted(visitor.imports.items())),
        "defs": visitor.defs,
        "classes": visitor.classes,
        "module_globals": visitor.globals,
        "functions": [record.as_dict() for record in visitor.functions],
    }
