"""The whole-program graph assembled from per-module summaries.

:class:`ProjectGraph` joins the module summaries into one namespace:

* a **module index** (dotted name -> summary) with re-export chasing,
  so ``from repro import build_scenario`` resolves through the package
  ``__init__`` to the defining module;
* a **call graph** — ``module::qualname`` function ids with edges
  carrying the call-site line, resolved conservatively by name (bare
  names against enclosing scopes and module defs, dotted names through
  the import alias map, ``self.x(...)`` against the enclosing class,
  ``Class(...)`` to ``Class.__init__``).  Calls that cannot be resolved
  statically produce *no* edge — the analysis under-approximates rather
  than guesses, which keeps every reported chain real;
* **executor edges** — the callables handed to thread/process pools and
  ``run_in_executor``, kept separate from plain calls because they
  switch execution context (the property the CONC rules reason about).

All iteration orders are sorted so reachability, chains and every
downstream finding are byte-stable across runs.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Reachability result: function id -> (parent id or None, call line in
#: parent).  A parent of None marks a BFS root.
Parents = Dict[str, Tuple[Optional[str], int]]


class ProjectGraph:
    """Project-wide namespace, call graph and executor edges."""

    def __init__(self, summaries: Iterable[Dict[str, Any]]):
        self.summaries: Dict[str, Dict[str, Any]] = {
            summary["path"]: summary for summary in summaries
        }
        #: module name -> summary (first path in sorted order wins on
        #: the rare collision of equally-named modules).
        self.modules: Dict[str, Dict[str, Any]] = {}
        for path in sorted(self.summaries):
            summary = self.summaries[path]
            self.modules.setdefault(summary["module"], summary)
        #: function id -> function record (+ module/path context).
        self.functions: Dict[str, Dict[str, Any]] = {}
        for module in sorted(self.modules):
            summary = self.modules[module]
            for record in summary["functions"]:
                fid = f"{module}::{record['qualname']}"
                entry = dict(record)
                entry["module"] = module
                entry["path"] = summary["path"]
                self.functions.setdefault(fid, entry)
        #: caller id -> [(callee id, call line), ...]
        self.calls: Dict[str, List[Tuple[str, int]]] = {}
        #: [(kind, caller id, callee id, line), ...] sorted.
        self.executor_edges: List[Tuple[str, str, str, int]] = []
        self._build_edges()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_edges(self) -> None:
        for fid in sorted(self.functions):
            record = self.functions[fid]
            summary = self.modules[record["module"]]
            edges: List[Tuple[str, int]] = []
            for name, lineno, _nargs in record["calls"]:
                callee = self._resolve(summary, record["qualname"], name)
                if callee is not None and callee != fid:
                    edges.append((callee, lineno))
            if edges:
                self.calls[fid] = edges
            for kind, name, lineno in record["executor_refs"]:
                callee = self._resolve(summary, record["qualname"], name)
                if callee is not None:
                    self.executor_edges.append(
                        (kind, fid, callee, lineno))
        self.executor_edges.sort()

    def _resolve(self, summary: Dict[str, Any], caller_qualname: str,
                 raw: str) -> Optional[str]:
        """The function id ``raw`` refers to inside ``caller``, if any."""
        module = summary["module"]
        defs = summary["defs"]
        classes = summary["classes"]
        imports = summary["imports"]
        parts = raw.split(".")
        # self.method(...) against the enclosing class
        if parts[0] == "self":
            if len(parts) == 2:
                cls = self._enclosing_class(summary, caller_qualname)
                if cls is not None and f"{cls}.{parts[1]}" in defs:
                    return f"{module}::{cls}.{parts[1]}"
            return None
        if len(parts) == 1:
            name = parts[0]
            # nested defs visible from the caller's lexical scopes
            segments = caller_qualname.split(".")
            for cut in range(len(segments), 0, -1):
                candidate = ".".join(segments[:cut] + [name])
                if candidate in defs:
                    return f"{module}::{candidate}"
            if name in defs:
                return f"{module}::{name}"
            if name in classes:
                init = f"{name}.__init__"
                return f"{module}::{init}" if init in defs else None
            target = imports.get(name)
            if target is not None:
                return self._resolve_dotted(target)
            return None
        # dotted: local Class.method, then the import alias map
        if raw in defs:
            return f"{module}::{raw}"
        first = parts[0]
        if first in imports:
            dotted = ".".join([imports[first]] + parts[1:])
            return self._resolve_dotted(dotted)
        return None

    def _enclosing_class(self, summary: Dict[str, Any],
                         caller_qualname: str) -> Optional[str]:
        classes = set(summary["classes"])
        segments = caller_qualname.split(".")
        for cut in range(len(segments) - 1, 0, -1):
            candidate = ".".join(segments[:cut])
            if candidate in classes:
                return candidate
        return None

    def _resolve_dotted(self, dotted: str,
                        depth: int = 0) -> Optional[str]:
        """Resolve an absolute dotted name to a function id.

        Tries the longest module prefix first, then one level of
        re-export chasing (package ``__init__`` aliasing a submodule
        def), bounded to keep alias cycles from looping.
        """
        if depth > 8:
            return None
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            summary = self.modules.get(module)
            if summary is None:
                continue
            rest = ".".join(parts[cut:])
            if rest in summary["defs"]:
                return f"{module}::{rest}"
            if rest in summary["classes"]:
                init = f"{rest}.__init__"
                if init in summary["defs"]:
                    return f"{module}::{init}"
                return None
            target = summary["imports"].get(parts[cut])
            if target is not None:
                tail = parts[cut + 1:]
                chased = ".".join([target] + tail) if tail else target
                return self._resolve_dotted(chased, depth + 1)
            return None
        return None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def pretty(self, fid: str) -> str:
        """Human name for a function id: ``module:qualname``."""
        return fid.replace("::", ":", 1)

    def forward_reachable(self, roots: Iterable[str],
                          skip=None) -> Parents:
        """BFS over call edges from ``roots`` with parent pointers."""
        parents: Parents = {}
        queue: deque = deque()
        for root in sorted(set(roots)):
            if root in self.functions and (skip is None or not skip(root)):
                parents[root] = (None, 0)
                queue.append(root)
        while queue:
            current = queue.popleft()
            for callee, lineno in self.calls.get(current, ()):
                if callee in parents:
                    continue
                if skip is not None and skip(callee):
                    continue
                parents[callee] = (current, lineno)
                queue.append(callee)
        return parents

    def chain(self, parents: Parents,
              target: str) -> List[Tuple[str, int]]:
        """``[(fid, call line in predecessor), ...]`` root -> target."""
        out: List[Tuple[str, int]] = []
        current: Optional[str] = target
        while current is not None:
            parent, lineno = parents[current]
            out.append((current, lineno))
            current = parent
        out.reverse()
        return out

    def functions_in_modules(
        self, prefixes: Iterable[str]
    ) -> List[str]:
        """Function ids defined in modules matching any dotted prefix."""
        prefixes = tuple(prefixes)
        out = []
        for fid in sorted(self.functions):
            module = self.functions[fid]["module"]
            if any(module == p or module.startswith(p + ".")
                   for p in prefixes):
                out.append(fid)
        return out

    def render_edges(self, prefix: str = "") -> List[str]:
        """``caller -> callee`` lines (sorted) for ``--call-graph``."""
        lines = []
        for caller in sorted(self.calls):
            if prefix and not self.pretty(caller).startswith(prefix):
                continue
            for callee, lineno in self.calls[caller]:
                lines.append(
                    f"{self.pretty(caller)} -> {self.pretty(callee)}"
                    f"  [line {lineno}]")
        for kind, caller, callee, lineno in self.executor_edges:
            if prefix and not self.pretty(caller).startswith(prefix):
                continue
            lines.append(
                f"{self.pretty(caller)} => {self.pretty(callee)}"
                f"  [{kind} executor, line {lineno}]")
        return lines

    def stats(self) -> Dict[str, int]:
        return {
            "modules": len(self.modules),
            "functions": len(self.functions),
            "call_edges": sum(len(v) for v in self.calls.values()),
            "executor_edges": len(self.executor_edges),
        }
