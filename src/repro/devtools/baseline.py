"""The committed baseline of grandfathered findings.

A baseline lets the lint gate turn on while known debt still exists:
``repro lint --write-baseline`` records the current findings, the file
is committed, and from then on only *new* findings fail the build.

Format — a JSON document designed to diff cleanly and write
byte-identically on every run (no timestamps, no absolute paths,
entries sorted)::

    {
      "version": 1,
      "entries": [
        {"rule": "DET002", "path": "src/repro/x.py",
         "message": "...", "count": 1},
        ...
      ]
    }

Matching is by ``(rule, path, message)`` with multiplicity: line
numbers are excluded on purpose so unrelated edits that shift a
grandfathered finding do not un-baseline it, while a *second* identical
finding in the same file still fails.  Entries that no longer match
anything are reported back as stale so the baseline shrinks over time
instead of fossilising.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.devtools.findings import Finding, sorted_findings

#: Default baseline filename, looked up relative to the lint root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

BASELINE_VERSION = 1

_Key = Tuple[str, str, str]


class Baseline:
    """Multiset of grandfathered findings keyed by (rule, path, message)."""

    def __init__(self, counts: Union[Dict[_Key, int], None] = None):
        self.counts: Counter = Counter(counts or {})

    # ------------------------------------------------------------------
    # construction / io
    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        baseline = cls()
        for finding in findings:
            baseline.counts[finding.baseline_key()] += 1
        return baseline

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        document = json.loads(path.read_text(encoding="utf-8"))
        if document.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version in {path}: "
                f"{document.get('version')!r}"
            )
        baseline = cls()
        for entry in document.get("entries", []):
            key = (entry["rule"], entry["path"], entry["message"])
            baseline.counts[key] += int(entry.get("count", 1))
        return baseline

    def dump(self, path: Union[str, Path]) -> None:
        """Write the canonical byte-stable serialisation."""
        Path(path).write_text(self.render() + "\n", encoding="utf-8")

    def render(self) -> str:
        entries = [
            {
                "rule": rule,
                "path": rel_path,
                "message": message,
                "count": count,
            }
            for (rule, rel_path, message), count in sorted(self.counts.items())
        ]
        return json.dumps(
            {"version": BASELINE_VERSION, "entries": entries},
            indent=2,
            sort_keys=True,
        )

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------
    def split(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[Dict[str, object]]]:
        """Partition findings into (new, baselined) plus stale entries.

        Multiplicity-aware: a baseline entry with ``count: 1`` absorbs
        one matching finding; a second identical finding is new.
        """
        remaining = Counter(self.counts)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in sorted_findings(findings):
            key = finding.baseline_key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = [
            {"rule": rule, "path": rel_path, "message": message,
             "count": count}
            for (rule, rel_path, message), count in sorted(remaining.items())
            if count > 0
        ]
        return new, baselined, stale

    def __len__(self) -> int:
        return sum(self.counts.values())
