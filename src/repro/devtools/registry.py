"""Rule base class, registry, and shared AST helpers.

A rule is a class with an ``id``, a one-line ``name``, a ``rationale``
paragraph (surfaced by ``repro lint --explain``), and a set of AST node
types it wants to see (``interests``).  The engine instantiates every
registered rule once per file, walks the module tree exactly once, and
dispatches each node to the rules interested in its type — rules never
re-walk the tree themselves, which keeps linting a large package
single-pass.

Registration is import-time: decorating a class with :func:`register`
adds it to the global table, and :mod:`repro.devtools.rules` imports
every rule module for its side effect.  Rule ids are unique by
construction (duplicate registration raises).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Tuple, Type

#: rule id -> rule class; populated by :func:`register` at import time.
_REGISTRY: Dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for lint rules (see the module docstring)."""

    id: str = ""
    name: str = ""
    rationale: str = ""
    #: ``"module"`` rules see one file's AST through the per-file
    #: walker; ``"program"`` rules (see :class:`ProgramRule`) see the
    #: whole-project graph and only run under ``--whole-program``.
    scope: str = "module"
    #: AST node types dispatched to :meth:`visit`.
    interests: Tuple[type, ...] = ()

    def begin_module(self, ctx) -> None:
        """Called once before the walk; collect module-level facts."""

    def visit(self, node: ast.AST, ctx, walker) -> None:
        """Called for every node whose type is in ``interests``."""

    def end_module(self, ctx) -> None:
        """Called once after the walk; emit whole-module findings."""


class ProgramRule(Rule):
    """Base class for whole-program (interprocedural) rules.

    Program rules never receive per-file ``visit`` callbacks; instead
    the engine hands them the assembled
    :class:`~repro.devtools.analysis.graph.ProjectGraph` once per run.
    They share the registry, ``--select``/``--ignore`` scoping,
    ``# repro: noqa`` suppression and baseline machinery with the
    per-file rules, but only execute when the run asks for
    ``--whole-program`` analysis.
    """

    scope = "program"
    interests: Tuple[type, ...] = ()

    def check_program(self, project, config) -> list:
        """Return a list of Findings for the whole project."""
        return []


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    """The registered rules, keyed by id (import side effect included)."""
    # Importing the rules package registers every built-in rule; doing
    # it here (not at module top) avoids a registry <-> rules cycle.
    from repro.devtools import rules  # noqa: F401  (import for effect)

    return dict(_REGISTRY)


def resolve_rule_ids(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> List[str]:
    """The rule ids to run, validating every referenced id exists."""
    known = all_rules()
    chosen = list(select) if select else sorted(known)
    unknown = [rid for rid in chosen if rid not in known]
    ignored = set(ignore or ())
    unknown += [rid for rid in ignored if rid not in known]
    if unknown:
        raise ValueError(
            f"unknown rule id(s): {', '.join(sorted(set(unknown)))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return [rid for rid in chosen if rid not in ignored]


# ---------------------------------------------------------------------------
# shared AST helpers
# ---------------------------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Call nodes in the chain break it (``f().g`` has no stable dotted
    name), which is the conservative behaviour every rule wants.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted name of a call's callee, if it has one."""
    return dotted_name(node.func)


def attr_name(node: ast.Call) -> Optional[str]:
    """The attribute name of an ``obj.method(...)`` call, else None."""
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """The parent link annotated by the engine (None at module root)."""
    return getattr(node, "_lint_parent", None)


def const_strings(node: ast.AST) -> Optional[List[Tuple[str, int]]]:
    """``[(value, lineno), ...]`` for a list/tuple of string constants.

    Returns ``None`` when the node is not a list/tuple literal or any
    element is not a plain string — callers should then skip quietly
    rather than guess.
    """
    if not isinstance(node, (ast.List, ast.Tuple)):
        return None
    out: List[Tuple[str, int]] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        out.append((element.value, element.lineno))
    return out
