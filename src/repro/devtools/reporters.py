"""Render a :class:`~repro.devtools.engine.LintResult` for humans or CI.

Two formats, both deterministic down to the byte for a given result:

* **text** — ``path:line:col RULEID message`` lines plus a summary,
  the format editors and terminals already know how to jump from;
* **json** — a single sorted-keys document for the CI gate and any
  tooling that wants to diff lint runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.devtools.engine import LintResult


def render_text(result: LintResult, verbose: bool = False) -> str:
    """The human-facing report (one finding per line + summary)."""
    lines = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()} {finding.rule_id} {finding.message}"
        )
    if verbose:
        for finding in result.baselined:
            lines.append(
                f"{finding.location()} {finding.rule_id} "
                f"[baselined] {finding.message}"
            )
    for entry in result.stale_baseline:
        lines.append(
            f"{entry['path']} {entry['rule']} [stale baseline entry x"
            f"{entry['count']}] {entry['message']}"
        )
    summary = (
        f"{len(result.findings)} finding(s) in "
        f"{result.files_checked} file(s)"
    )
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if result.stale_baseline:
        extras.append(f"{len(result.stale_baseline)} stale baseline "
                      "entr" + ("y" if len(result.stale_baseline) == 1
                                else "ies"))
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    if result.analysis is not None:
        stats = result.analysis
        lines.append(
            f"whole-program: {stats.get('modules', 0)} modules, "
            f"{stats.get('functions', 0)} functions, "
            f"{stats.get('call_edges', 0)} call edges "
            f"(summary cache: {stats.get('hits', 0)} hit(s), "
            f"{stats.get('misses', 0)} miss(es))"
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The machine-facing report (stable key order, stable sorting)."""
    document: Dict[str, Any] = {
        "version": 1,
        "files_checked": result.files_checked,
        "counts": {
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "stale_baseline": len(result.stale_baseline),
        },
        "findings": [finding.as_dict() for finding in result.findings],
        "baselined": [finding.as_dict() for finding in result.baselined],
        "stale_baseline": list(result.stale_baseline),
    }
    if result.analysis is not None:
        # Cache hit/miss counters vary between warm and cold runs by
        # design; the findings arrays above must not.
        document["analysis"] = dict(result.analysis)
    return json.dumps(document, indent=2, sort_keys=True)
