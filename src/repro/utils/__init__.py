"""Small, dependency-free helpers shared across the library.

The submodules are intentionally tiny and self-contained:

``repro.utils.rng``
    Deterministic random-number plumbing.  Every stochastic component in
    the library draws from a :class:`numpy.random.Generator` that is
    derived from a single scenario seed, so a scenario is reproducible
    bit-for-bit from its :class:`~repro.config.ScenarioConfig`.

``repro.utils.binning``
    Capped 2-D histogram binning used by the transit-degree / customer
    cone / node-degree imbalance heatmaps (Figures 3 and 7-9 of the
    paper).

``repro.utils.text``
    Plain-text rendering helpers (aligned tables, horizontal bar charts,
    ASCII heatmaps) used by the reporting layer and the benchmark
    harness to print paper-style figures in a terminal.
"""

from repro.utils.rng import child_rng, make_rng, weighted_choice
from repro.utils.binning import BinSpec, Histogram2D
from repro.utils.text import format_table, render_bars, render_heatmap

__all__ = [
    "child_rng",
    "make_rng",
    "weighted_choice",
    "BinSpec",
    "Histogram2D",
    "format_table",
    "render_bars",
    "render_heatmap",
]
