"""Machine-readable benchmark reports (``BENCH_substrate.json``).

The substrate benchmarks record their per-test medians into one JSON
document so CI can archive the numbers next to the logs and successive
runs can be diffed mechanically.  Partial runs *merge* into an existing
report instead of clobbering it: each benchmark owns one key under
``benchmarks``, and top-level extras (e.g. the corpus memory footprint)
are replaced wholesale.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

#: Bumped whenever the report layout changes shape.
BENCH_SCHEMA_VERSION = 1


def load_bench_report(path: str) -> Dict[str, Any]:
    """The existing report at ``path``, or a fresh skeleton.

    Corrupt or foreign files are treated as absent — a benchmark run
    must never fail because a previous run crashed mid-write.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {}
    if not isinstance(report, dict) or not isinstance(
        report.get("benchmarks"), dict
    ):
        report = {}
    report.setdefault("schema", BENCH_SCHEMA_VERSION)
    report.setdefault("benchmarks", {})
    return report


def merge_bench_report(
    path: str,
    benchmarks: Dict[str, Dict[str, Any]],
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Merge ``benchmarks`` (and top-level ``extra`` keys) into the
    report at ``path``, write it back atomically, and return it."""
    report = load_bench_report(path)
    report["schema"] = BENCH_SCHEMA_VERSION
    report["benchmarks"].update(benchmarks)
    for key, value in (extra or {}).items():
        report[key] = value
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".bench.tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return report
