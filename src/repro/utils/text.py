"""Plain-text rendering helpers for paper-style output.

The benchmark harness prints every reproduced table and figure as text.
Three primitives cover all of them:

* :func:`format_table` — aligned, optionally colour-annotated tables
  (Tables 1-3 of the paper);
* :func:`render_bars` — the two-row bar charts of Figures 1 and 2
  (fraction of links on top, validation coverage below);
* :func:`render_heatmap` — coarse ASCII heatmaps for Figures 3 / 7-9.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

_SHADES = " .:-=+*#%@"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a list of rows as an aligned monospace table.

    Cells are converted with ``str``; floats should be pre-formatted by
    the caller so that the table layer stays presentation-only.
    """
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    value_format: str = "{:.2f}",
    title: Optional[str] = None,
) -> str:
    """Render one horizontal bar per label, scaled to the maximum value.

    Mirrors the visual layout of Figures 1 and 2: category labels on the
    left, a proportional bar, and the numeric value on the right.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if width < 1:
        raise ValueError("width must be >= 1")
    lines = []
    if title:
        lines.append(title)
    vmax = max(values) if values else 0.0
    label_width = max((len(label) for label in labels), default=0)
    for label, value in zip(labels, values):
        bar_len = 0 if vmax <= 0 else int(round(width * value / vmax))
        bar = "#" * bar_len
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| "
            + value_format.format(value)
        )
    return "\n".join(lines)


def render_heatmap(
    fractions: np.ndarray,
    x_labels: Optional[Sequence[str]] = None,
    y_labels: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a 2-D fraction matrix as an ASCII shade map.

    Row 0 of ``fractions`` is drawn at the *bottom* to match the paper's
    orientation (small metric values in the lower-left corner).  Shades
    are scaled to the maximum cell so that sparse heatmaps stay legible.
    """
    grid = np.asarray(fractions, dtype=float)
    if grid.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {grid.shape}")
    vmax = grid.max()
    lines = []
    if title:
        lines.append(title)
    n_rows, n_cols = grid.shape
    y_width = max((len(label) for label in y_labels), default=0) if y_labels else 0
    for yi in range(n_rows - 1, -1, -1):
        cells = []
        for xi in range(n_cols):
            value = grid[yi, xi]
            if vmax <= 0 or value <= 0:
                shade = _SHADES[0]
            else:
                level = int(round((len(_SHADES) - 1) * value / vmax))
                shade = _SHADES[max(1, level)]
            cells.append(shade * 2)
        prefix = (y_labels[yi].rjust(y_width) + " ") if y_labels else ""
        lines.append(prefix + "".join(cells))
    if x_labels:
        lines.append(" " * (y_width + 1 if y_labels else 0) + " ".join(x_labels))
    return "\n".join(lines)
