"""Capped 2-D histogram binning for the imbalance heatmaps.

Figures 3, 7, 8, and 9 of the paper bin every transit-to-transit link by
a *size* metric of its two incident ASes (transit degree, customer cone
size, or node degree).  Two conventions from the paper are implemented
here:

* the **smaller** value goes on the y-axis and the **larger** value on
  the x-axis, i.e. a link is an unordered pair and the histogram lives
  in the upper triangle of the metric space;
* both axes have a **catch-all top bin**: "the row above 150 and the
  column to the right of 1500 catch all transit degrees equal or larger
  than 150 and 1500, respectively", which keeps a handful of huge ASes
  from stretching the plot.

Cell values are *fractions of links* (each histogram sums to 1.0 when it
contains at least one link), matching the paper's colour scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class BinSpec:
    """Axis specification: ``n_bins`` regular bins over [0, cap) plus one
    catch-all bin for values >= ``cap``.

    Attributes
    ----------
    cap:
        Lower edge of the catch-all bin.
    n_bins:
        Number of regular (equal-width) bins below the cap.  The total
        number of bins is ``n_bins + 1``.
    """

    cap: float
    n_bins: int

    def __post_init__(self) -> None:
        if self.cap <= 0:
            raise ValueError(f"cap must be positive, got {self.cap}")
        if self.n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {self.n_bins}")

    @property
    def total_bins(self) -> int:
        """Regular bins plus the catch-all bin."""
        return self.n_bins + 1

    @property
    def width(self) -> float:
        """Width of one regular bin."""
        return self.cap / self.n_bins

    def index(self, value: float) -> int:
        """Map a metric value to its bin index (last index = catch-all)."""
        if value < 0:
            raise ValueError(f"metric values must be non-negative, got {value}")
        if value >= self.cap:
            return self.n_bins
        return min(int(value / self.width), self.n_bins - 1)

    def edges(self) -> List[float]:
        """Lower edges of every bin, including the catch-all bin."""
        return [i * self.width for i in range(self.n_bins)] + [self.cap]

    def labels(self) -> List[str]:
        """Human-readable labels, e.g. ``"[30,45)"`` and ``">=150"``."""
        out = []
        for i in range(self.n_bins):
            lo = i * self.width
            hi = lo + self.width
            out.append(f"[{lo:g},{hi:g})")
        out.append(f">={self.cap:g}")
        return out


class Histogram2D:
    """Fraction-of-links histogram over (larger metric, smaller metric).

    The add() method accepts the two incident-AS metric values in any
    order; the histogram internally sorts them so that the x-axis is the
    larger value.
    """

    def __init__(self, x_spec: BinSpec, y_spec: BinSpec) -> None:
        self.x_spec = x_spec
        self.y_spec = y_spec
        self._counts = np.zeros((y_spec.total_bins, x_spec.total_bins), dtype=np.int64)

    @property
    def counts(self) -> np.ndarray:
        """Raw counts, shape ``(y_bins, x_bins)``; row 0 is the smallest
        y bin."""
        return self._counts

    @property
    def total(self) -> int:
        """Number of links added so far."""
        return int(self._counts.sum())

    def add(self, value_a: float, value_b: float) -> None:
        """Record one link whose endpoints have the given metric values."""
        larger, smaller = (value_a, value_b) if value_a >= value_b else (value_b, value_a)
        xi = self.x_spec.index(larger)
        yi = self.y_spec.index(smaller)
        self._counts[yi, xi] += 1

    def add_many(self, pairs: Iterable[Tuple[float, float]]) -> None:
        """Record an iterable of ``(value_a, value_b)`` links."""
        for a, b in pairs:
            self.add(a, b)

    def fractions(self) -> np.ndarray:
        """Cell values as fractions of all links (sums to 1 when total > 0)."""
        total = self.total
        if total == 0:
            return np.zeros_like(self._counts, dtype=float)
        return self._counts / float(total)

    def mass_below(self, x_fraction: float, y_fraction: float) -> float:
        """Fraction of links in the lower-left corner of the histogram.

        ``x_fraction`` / ``y_fraction`` select the leading share of the
        regular bins on each axis (e.g. ``0.2`` keeps the lowest 20 % of
        bins below the cap).  Used by tests and benchmarks to assert the
        paper's qualitative claim that inference mass concentrates in the
        bottom-left corner while validation mass is spread out.
        """
        if not 0 < x_fraction <= 1 or not 0 < y_fraction <= 1:
            raise ValueError("fractions must be in (0, 1]")
        total = self.total
        if total == 0:
            return 0.0
        nx = max(1, int(round(self.x_spec.n_bins * x_fraction)))
        ny = max(1, int(round(self.y_spec.n_bins * y_fraction)))
        return float(self._counts[:ny, :nx].sum()) / total

    def earth_mover_distance_1d(self, other: "Histogram2D") -> float:
        """A cheap distributional distance between two histograms.

        Both histograms are flattened in row-major order and compared
        via the L1 distance between their cumulative fraction vectors
        (a 1-D Wasserstein surrogate).  Used to quantify the
        inference-vs-validation mismatch without pulling in scipy.
        """
        if self._counts.shape != other._counts.shape:
            raise ValueError("histograms have different shapes")
        a = np.cumsum(self.fractions().ravel())
        b = np.cumsum(other.fractions().ravel())
        return float(np.abs(a - b).sum() / len(a))
