"""Deterministic random-number plumbing.

All stochastic behaviour in the library is funnelled through
:class:`numpy.random.Generator` instances created here.  Two rules keep
scenarios reproducible:

1. a scenario owns exactly one *root* generator, created by
   :func:`make_rng` from the integer seed in
   :class:`repro.config.ScenarioConfig`;
2. every subsystem (topology generator, vantage-point placement,
   validation compiler, ...) receives its own *child* generator derived
   via :func:`child_rng` with a stable string label, so adding a new
   consumer of randomness never perturbs the streams of existing ones.

The label-based derivation hashes the label into the seed sequence, which
is the mechanism numpy itself recommends for spawning independent
streams.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")


def make_rng(seed: int) -> np.random.Generator:
    """Create the root generator for a scenario.

    Parameters
    ----------
    seed:
        Any non-negative integer.  The same seed always yields the same
        stream on every platform (PCG64 is platform independent).
    """
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    return np.random.Generator(np.random.PCG64(seed))


def _label_to_ints(label: str) -> list:
    """Hash a textual label into a list of 32-bit words.

    SHA-256 is used purely as a stable, well-distributed hash; there is
    no security requirement here.
    """
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


def child_rng(seed: int, label: str) -> np.random.Generator:
    """Derive an independent generator for subsystem ``label``.

    Streams for distinct labels are statistically independent, and the
    stream for a given ``(seed, label)`` pair is stable across library
    versions as long as the label text is unchanged.
    """
    entropy = [seed] + _label_to_ints(label)
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy)))


def weighted_choice(
    rng: np.random.Generator,
    items: Sequence[T],
    weights: Optional[Sequence[float]] = None,
) -> T:
    """Pick one element of ``items``, optionally weighted.

    A thin wrapper around :meth:`numpy.random.Generator.choice` that
    works for arbitrary (non-numpy) item types and normalises weights.

    Raises
    ------
    ValueError
        If ``items`` is empty or weights are all zero / negative.
    """
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    if weights is None:
        index = int(rng.integers(0, len(items)))
        return items[index]
    w = np.asarray(weights, dtype=float)
    if len(w) != len(items):
        raise ValueError(f"got {len(items)} items but {len(w)} weights")
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total <= 0:
        raise ValueError("weights must not sum to zero")
    index = int(rng.choice(len(items), p=w / total))
    return items[index]
