"""The routed HTTP application: ``ReproService``.

Endpoint map (all JSON in, JSON out)::

    GET  /healthz                      liveness + pool summary
    GET  /metrics                      counters, latency histogram, pool stats
    GET  /v1/scenarios                 pooled scenarios (LRU order)
    POST /v1/scenarios                 build/admit a scenario from a config
    GET  /v1/rel/{algo}/{as1}/{as2}    one link's inferred relationship
    POST /v1/rel/{algo}:batch          many links per request
    GET  /v1/as/{asn}/neighbors        visible adjacency of one AS
    GET  /v1/bias/{algo}               Figure 1/2 bias profiles
    GET  /v1/table/{algo}              Tables 1-3 per-group validation table
    GET  /v1/casestudy                 the §6.1 investigation summary

Every ``/v1`` query endpoint accepts ``?scenario=<id>``; without it the
most recently admitted/used scenario answers.  Scenario builds and
anything that may run an inference (first index for an algorithm, first
bias/table/casestudy request) execute in the pool's thread executor, so
the event loop — and therefore ``/healthz`` — stays responsive during
even a paper-scale build.  Malformed requests always produce structured
``{"error": {"code", "message"}}`` bodies, never a traceback.

Note on ``/v1/bias``: the profiles are identical across algorithms by
construction — the topological Stub/Transit split is pinned to ASRank
exactly as in the paper (see :mod:`repro.scenario`) — the algorithm
segment is kept for URL symmetry and validated like everywhere else.
"""

from __future__ import annotations

import asyncio
import contextlib
import re
import signal
import sys
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Pattern, Tuple

from repro.analysis.export import profile_rows, table_dict
from repro.config import AdversarialConfig, ConfigError, ScenarioConfig
from repro.pipeline.cache import resolve_cache
from repro.scenario import ALGORITHM_NAMES
from repro.service.http import (
    ApiError,
    ProtocolError,
    Request,
    json_response,
    read_request,
)
from repro.service.metrics import ServiceMetrics
from repro.service.pool import PoolEntry, ScenarioPool, scenario_id
from repro.service.query import casestudy_payload

#: Most links accepted by one ``:batch`` request.
MAX_BATCH_LINKS = 10_000

#: Fields accepted by ``POST /v1/scenarios``.
_SCENARIO_FIELDS = {
    "preset", "seed", "ases", "vps", "churn_rounds", "algorithms",
    "adversarial",
}

Handler = Callable[..., Any]


@dataclass(frozen=True)
class Route:
    method: str
    template: str
    pattern: Pattern[str]
    handler: Handler


class ReproService:
    """The asyncio HTTP/1.1 query service over a :class:`ScenarioPool`."""

    def __init__(
        self,
        pool_size: int = 4,
        workers: int = 0,
        cache: Any = None,
        builder: Optional[Callable[..., Any]] = None,
        view_factory: Optional[Callable[..., Any]] = None,
    ) -> None:
        pool_kwargs: Dict[str, Any] = {
            "capacity": pool_size,
            "workers": workers,
            "cache": resolve_cache(cache),
        }
        if builder is not None:
            pool_kwargs["builder"] = builder
        if view_factory is not None:
            pool_kwargs["view_factory"] = view_factory
        self.pool = ScenarioPool(**pool_kwargs)
        self.metrics = ServiceMetrics()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._routes: List[Route] = self._build_routes()

    def _build_routes(self) -> List[Route]:
        return [
            Route("GET", "/healthz", re.compile(r"/healthz"), self._h_healthz),
            Route("GET", "/metrics", re.compile(r"/metrics"), self._h_metrics),
            Route("GET", "/v1/scenarios", re.compile(r"/v1/scenarios"),
                  self._h_scenarios_list),
            Route("POST", "/v1/scenarios", re.compile(r"/v1/scenarios"),
                  self._h_scenarios_build),
            Route("GET", "/v1/rel/{algorithm}/{as1}/{as2}",
                  re.compile(r"/v1/rel/(?P<algorithm>[A-Za-z0-9_-]+)"
                             r"/(?P<as1>\d+)/(?P<as2>\d+)"),
                  self._h_rel_point),
            Route("POST", "/v1/rel/{algorithm}:batch",
                  re.compile(r"/v1/rel/(?P<algorithm>[A-Za-z0-9_-]+):batch"),
                  self._h_rel_batch),
            Route("GET", "/v1/as/{asn}/neighbors",
                  re.compile(r"/v1/as/(?P<asn>\d+)/neighbors"),
                  self._h_neighbors),
            Route("GET", "/v1/bias/{algorithm}",
                  re.compile(r"/v1/bias/(?P<algorithm>[A-Za-z0-9_-]+)"),
                  self._h_bias),
            Route("GET", "/v1/table/{algorithm}",
                  re.compile(r"/v1/table/(?P<algorithm>[A-Za-z0-9_-]+)"),
                  self._h_table),
            Route("GET", "/v1/casestudy", re.compile(r"/v1/casestudy"),
                  self._h_casestudy),
            Route("GET", "/v1/adversarial/policies",
                  re.compile(r"/v1/adversarial/policies"),
                  self._h_adversarial_policies),
            Route("POST", "/v1/adversarial/impact",
                  re.compile(r"/v1/adversarial/impact"),
                  self._h_adversarial_impact),
        ]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        sock: Any = None,
    ) -> None:
        """Bind and start serving; ``port=0`` picks a free port.

        ``sock`` serves on an already-bound listening socket instead —
        the supervisor's pre-fork path, where the parent (or the
        SO_REUSEPORT kernel machinery) owns port selection.
        """
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=host, port=port
            )
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # aclose (not close): cancel in-flight builds and reap them so
        # shutdown leaves no pending task or orphaned executor thread.
        await self.pool.aclose()

    async def run(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        sock: Any = None,
        announce: bool = True,
    ) -> None:
        """Serve until SIGINT/SIGTERM, then shut down cleanly.

        Supervisor workers pass ``announce=False`` (the parent prints
        the single canonical banner) and their pre-bound ``sock``.
        """
        await self.start(host, port, sock=sock)
        if announce:
            print(
                f"repro service listening on http://{self.host}:{self.port}",
                flush=True,
            )
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-Unix event loops: Ctrl-C still unwinds asyncio.run
        try:
            await stop_event.wait()
        finally:
            await self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except ProtocolError as exc:
                    writer.write(json_response(
                        400,
                        {"error": {"code": "bad_request", "message": str(exc)}},
                        keep_alive=False,
                    ))
                    await writer.drain()
                    break
                if request is None:
                    break
                status, payload = await self._dispatch(request)
                keep = request.keep_alive
                writer.write(json_response(status, payload, keep_alive=keep))
                await writer.drain()
                if not keep:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, request: Request) -> Tuple[int, Any]:
        self.metrics.in_flight += 1
        started = time.monotonic()
        label = f"{request.method} <unmatched>"
        status = 500
        payload: Any = None
        try:
            try:
                route, params = self._match(request)
                label = f"{route.method} {route.template}"
                status, payload = await route.handler(request, **params)
            except ApiError as exc:
                status, payload = exc.status, exc.payload()
            except Exception as exc:  # never leak a traceback to the wire
                traceback.print_exc(file=sys.stderr)
                status = 500
                payload = {"error": {
                    "code": "internal",
                    "message": f"{type(exc).__name__}: {exc}",
                }}
            return status, payload
        finally:
            self.metrics.in_flight -= 1
            elapsed_ms = (time.monotonic() - started) * 1000.0
            self.metrics.observe(label, status, elapsed_ms)

    def _match(self, request: Request) -> Tuple[Route, Dict[str, str]]:
        path_matched = False
        for route in self._routes:
            match = route.pattern.fullmatch(request.path)
            if match is None:
                continue
            path_matched = True
            if route.method == request.method:
                return route, match.groupdict()
        if path_matched:
            raise ApiError(
                405, "method_not_allowed",
                f"{request.method} is not allowed on {request.path}",
            )
        raise ApiError(404, "not_found", f"no such endpoint: {request.path}")

    # ------------------------------------------------------------------
    # shared handler plumbing
    # ------------------------------------------------------------------
    async def _resolve_entry(self, request: Request) -> PoolEntry:
        sid = request.query.get("scenario")
        if sid is None:
            entry = self.pool.latest()
            if entry is None:
                raise ApiError(
                    404, "no_scenario",
                    "no scenario admitted yet; POST /v1/scenarios first",
                )
            return entry
        entry = self.pool.get(sid)
        if entry is None:
            # Multi-worker seam: a sibling process may have admitted
            # this scenario — its meta record in the shared artifact
            # cache lets this worker warm-admit the same artifacts, so
            # answers are invariant to which worker a client lands on.
            entry = await self.pool.admit_cached(sid)
        if entry is None:
            raise ApiError(
                404, "unknown_scenario",
                f"scenario {sid!r} is not in the pool",
                pooled=self.pool.ids(),
            )
        return entry

    @staticmethod
    def _check_algorithm(algorithm: str) -> str:
        if algorithm not in ALGORITHM_NAMES:
            raise ApiError(
                404, "unknown_algorithm",
                f"unknown algorithm {algorithm!r}",
                algorithms=list(ALGORITHM_NAMES),
            )
        return algorithm

    async def _ensure_rel_index(self, entry: PoolEntry, algorithm: str) -> None:
        """Build an algorithm's link index at most once, off the loop."""
        if entry.view.has_rel_index(algorithm):
            return
        async with entry.lock:
            if entry.view.has_rel_index(algorithm):
                return
            await asyncio.get_running_loop().run_in_executor(
                self.pool.executor, entry.view.build_rel_index, algorithm
            )
            self.metrics.indexes_built += 1

    async def _cached_report(
        self, entry: PoolEntry, key: str, compute: Callable[[], Any]
    ) -> Any:
        """Entry-scoped memo for bias/table/casestudy payloads.

        The computation runs in the executor under the entry's lock, so
        repeated or concurrent requests cost one computation total.
        """
        if key in entry.reports:
            return entry.reports[key]
        async with entry.lock:
            if key in entry.reports:
                return entry.reports[key]
            value = await asyncio.get_running_loop().run_in_executor(
                self.pool.executor, compute
            )
            entry.reports[key] = value
            self.metrics.indexes_built += 1
            return value

    def _config_from_body(self, body: Dict[str, Any]) -> ScenarioConfig:
        unknown = sorted(set(body) - _SCENARIO_FIELDS)
        if unknown:
            raise ApiError(
                400, "unknown_field",
                f"unknown config field(s): {', '.join(unknown)}",
                accepted=sorted(_SCENARIO_FIELDS),
            )

        def integer(name: str, default: Optional[int]) -> Optional[int]:
            value = body.get(name, default)
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, int):
                raise ApiError(
                    400, "invalid_config", f"{name!r} must be an integer"
                )
            return value

        preset = body.get("preset", "small")
        if preset == "small":
            config = ScenarioConfig.small(seed=integer("seed", 7))
        elif preset == "default":
            config = ScenarioConfig.default().replace(
                seed=integer("seed", 2018)
            )
        else:
            raise ApiError(
                400, "invalid_preset",
                f"unknown preset {preset!r} (use 'small' or 'default')",
            )
        ases = integer("ases", None)
        if ases is not None:
            config.topology.n_ases = ases
        vps = integer("vps", None)
        if vps is not None:
            config.measurement.n_vantage_points = vps
        churn = integer("churn_rounds", None)
        if churn is not None:
            config.measurement.n_churn_rounds = churn
        adversarial = body.get("adversarial")
        if adversarial is not None:
            if not isinstance(adversarial, dict):
                raise ApiError(
                    400, "invalid_config",
                    "'adversarial' must be a JSON object",
                )
            try:
                config = config.replace(
                    adversarial=AdversarialConfig.from_dict(adversarial)
                )
            except ConfigError as exc:
                raise ApiError(400, "invalid_config", str(exc)) from exc
        try:
            config.validate()
        except ValueError as exc:
            raise ApiError(400, "invalid_config", str(exc)) from exc
        return config

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    async def _h_healthz(self, request: Request) -> Tuple[int, Any]:
        return 200, {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.metrics.started, 3),
            "pool_size": len(self.pool),
            "builds_in_progress": self.pool.builds_in_progress,
        }

    async def _h_metrics(self, request: Request) -> Tuple[int, Any]:
        return 200, self.metrics.snapshot(self.pool)

    async def _h_scenarios_list(self, request: Request) -> Tuple[int, Any]:
        latest = self.pool.latest()
        scenarios = [
            entry.view.scenario_payload(entry.scenario_id)
            for entry in self.pool.entries()
        ]
        return 200, {
            "capacity": self.pool.capacity,
            "default": latest.scenario_id if latest else None,
            "scenarios": scenarios,
        }

    async def _h_scenarios_build(self, request: Request) -> Tuple[int, Any]:
        body = request.json()
        if not isinstance(body, dict):
            raise ApiError(
                400, "invalid_body", "request body must be a JSON object"
            )
        algorithms = body.get("algorithms", ["asrank"])
        if not isinstance(algorithms, list) or not all(
            isinstance(name, str) for name in algorithms
        ):
            raise ApiError(
                400, "invalid_config",
                "'algorithms' must be a list of algorithm names",
            )
        for name in algorithms:
            self._check_algorithm(name)
        config = self._config_from_body(body)
        was_pooled = scenario_id(config) in self.pool
        entry = await self.pool.get_or_build(config)
        for name in algorithms:
            await self._ensure_rel_index(entry, name)
        payload = {
            **entry.view.scenario_payload(entry.scenario_id),
            "built": not was_pooled,
            "build_seconds": round(entry.build_seconds, 3),
            "sample_links": [list(key) for key in entry.view.links[:5]],
            "pool": self.pool.stats(),
        }
        return (200 if was_pooled else 201), payload

    async def _h_rel_point(
        self, request: Request, algorithm: str, as1: str, as2: str
    ) -> Tuple[int, Any]:
        self._check_algorithm(algorithm)
        entry = await self._resolve_entry(request)
        await self._ensure_rel_index(entry, algorithm)
        payload = entry.view.link_payload(algorithm, int(as1), int(as2))
        if payload is None:
            raise ApiError(
                404, "unknown_link",
                f"link {as1}-{as2} is not visible in scenario "
                f"{entry.scenario_id}",
                as1=int(as1), as2=int(as2), scenario=entry.scenario_id,
            )
        payload["scenario"] = entry.scenario_id
        return 200, payload

    async def _h_rel_batch(
        self, request: Request, algorithm: str
    ) -> Tuple[int, Any]:
        self._check_algorithm(algorithm)
        body = request.json()
        if not isinstance(body, dict) or "links" not in body:
            raise ApiError(
                400, "invalid_body",
                "request body must be a JSON object with a 'links' array",
            )
        links = body["links"]
        if not isinstance(links, list):
            raise ApiError(400, "invalid_body", "'links' must be an array")
        if len(links) > MAX_BATCH_LINKS:
            raise ApiError(
                413, "batch_too_large",
                f"at most {MAX_BATCH_LINKS} links per batch "
                f"(got {len(links)})",
            )
        pairs: List[Tuple[int, int]] = []
        for position, item in enumerate(links):
            if (
                not isinstance(item, (list, tuple))
                or len(item) != 2
                or not all(
                    isinstance(asn, int) and not isinstance(asn, bool)
                    for asn in item
                )
            ):
                raise ApiError(
                    400, "invalid_body",
                    f"links[{position}] must be a [as1, as2] integer pair",
                )
            pairs.append((item[0], item[1]))
        entry = await self._resolve_entry(request)
        await self._ensure_rel_index(entry, algorithm)
        # One vectorized pass (pack → searchsorted) instead of a
        # per-key dict walk; see ScenarioView.batch_payloads.
        results, n_unknown = entry.view.batch_payloads(algorithm, pairs)
        return 200, {
            "scenario": entry.scenario_id,
            "algorithm": algorithm,
            "count": len(results),
            "n_unknown": n_unknown,
            "results": results,
        }

    async def _h_neighbors(
        self, request: Request, asn: str
    ) -> Tuple[int, Any]:
        entry = await self._resolve_entry(request)
        payload = entry.view.neighbors_payload(int(asn))
        if payload is None:
            raise ApiError(
                404, "unknown_asn",
                f"AS{asn} is not visible in scenario {entry.scenario_id}",
                asn=int(asn), scenario=entry.scenario_id,
            )
        payload["scenario"] = entry.scenario_id
        return 200, payload

    async def _h_bias(
        self, request: Request, algorithm: str
    ) -> Tuple[int, Any]:
        self._check_algorithm(algorithm)
        entry = await self._resolve_entry(request)
        scenario = entry.scenario

        def compute() -> Dict[str, Any]:
            regional = scenario.regional_bias()
            topological = scenario.topological_bias()
            return {
                "regional": profile_rows(regional),
                "topological": profile_rows(topological),
                "coverage_spread": {
                    "regional": round(regional.coverage_spread(), 6),
                    "topological": round(topological.coverage_spread(), 6),
                },
                "mismatch_classes": {
                    "regional": [
                        c.class_name for c in regional.mismatch_classes()
                    ],
                    "topological": [
                        c.class_name for c in topological.mismatch_classes()
                    ],
                },
            }

        # The profiles are algorithm-independent (see the module
        # docstring), so one cache slot serves every /v1/bias/{algo}.
        payload = await self._cached_report(entry, "bias", compute)
        return 200, {
            "scenario": entry.scenario_id,
            "algorithm": algorithm,
            **payload,
        }

    async def _h_table(
        self, request: Request, algorithm: str
    ) -> Tuple[int, Any]:
        self._check_algorithm(algorithm)
        entry = await self._resolve_entry(request)
        scenario = entry.scenario
        payload = await self._cached_report(
            entry,
            f"table:{algorithm}",
            lambda: table_dict(scenario.validation_table(algorithm)),
        )
        return 200, {
            "scenario": entry.scenario_id,
            "algorithm": algorithm,
            "table": payload,
        }

    async def _h_casestudy(self, request: Request) -> Tuple[int, Any]:
        algorithm = request.query.get("algorithm", "asrank")
        self._check_algorithm(algorithm)
        class_name = request.query.get("class", "T1-TR")
        entry = await self._resolve_entry(request)
        scenario = entry.scenario
        payload = await self._cached_report(
            entry,
            f"casestudy:{algorithm}:{class_name}",
            lambda: casestudy_payload(
                scenario.case_study(algorithm, class_name)
            ),
        )
        return 200, {
            "scenario": entry.scenario_id,
            "algorithm": algorithm,
            "class": class_name,
            **payload,
        }

    async def _h_adversarial_policies(
        self, request: Request
    ) -> Tuple[int, Any]:
        from repro.adversarial.policies import registered_policies

        return 200, {
            "policies": [
                {
                    "name": policy.name,
                    "blocks": sorted(policy.blocks),
                    "description": policy.description,
                }
                for policy in registered_policies()
            ],
        }

    async def _h_adversarial_impact(
        self, request: Request
    ) -> Tuple[int, Any]:
        """Clean-vs-polluted inference panel over pooled scenarios.

        Builds (or reuses) both twins through the scenario pool, so
        the heavy artifacts are shared with ordinary queries and
        served by the artifact cache; the report itself is memoised on
        the polluted entry.
        """
        from repro.adversarial.impact import compare_scenarios

        body = request.json()
        if not isinstance(body, dict):
            raise ApiError(
                400, "invalid_body", "request body must be a JSON object"
            )
        algorithms = body.get("algorithms", ["asrank", "problink",
                                             "toposcope"])
        if not isinstance(algorithms, list) or not all(
            isinstance(name, str) for name in algorithms
        ):
            raise ApiError(
                400, "invalid_config",
                "'algorithms' must be a list of algorithm names",
            )
        for name in algorithms:
            self._check_algorithm(name)
        config = self._config_from_body(body)
        adv = config.adversarial
        if adv is None or adv.attack.total_events() == 0:
            raise ApiError(
                400, "invalid_config",
                "'adversarial' with at least one attack event is "
                "required for impact analysis",
            )
        clean_entry = await self.pool.get_or_build(
            config.replace(adversarial=None)
        )
        entry = await self.pool.get_or_build(config)
        clean_scenario = clean_entry.scenario
        polluted_scenario = entry.scenario
        report = await self._cached_report(
            entry,
            f"impact:{','.join(algorithms)}",
            lambda: compare_scenarios(
                clean_scenario, polluted_scenario, algorithms
            ).to_dict(),
        )
        return 200, {
            "scenario": entry.scenario_id,
            "clean_scenario": clean_entry.scenario_id,
            **report,
        }


@contextlib.contextmanager
def serve_in_thread(
    service: ReproService, host: str = "127.0.0.1", port: int = 0
) -> Iterator[ReproService]:
    """Run ``service`` on a background event-loop thread.

    The embedding idiom for tests, examples, and notebooks: the caller's
    thread stays free to use the blocking
    :class:`~repro.service.client.ServiceClient` against
    ``service.port``.  Shuts the server down on exit.
    """
    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=loop.run_forever, name="repro-service", daemon=True
    )
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(
            service.start(host, port), loop
        ).result(timeout=60)
        yield service
    finally:
        asyncio.run_coroutine_threadsafe(service.stop(), loop).result(
            timeout=60
        )
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
