"""Blocking client for the repro query service (stdlib ``http.client``).

The counterpart to :class:`~repro.service.app.ReproService` used by the
test suite, the examples, and shell scripts.  One method per endpoint,
JSON in/out, persistent keep-alive connection with a single transparent
reconnect when the server (or an idle timeout) dropped it.

Error responses never raise bare HTTP exceptions: anything with an
``{"error": ...}`` body becomes a :class:`ServiceError` carrying the
structured ``status``/``code``/``message`` triple the server sent.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

LinkLike = Union[Tuple[int, int], List[int]]


class ServiceError(RuntimeError):
    """A structured error answer from the service."""

    def __init__(self, status: int, payload: Any):
        error = payload.get("error", {}) if isinstance(payload, dict) else {}
        self.status = status
        self.code = error.get("code", "unknown")
        self.message = error.get("message", str(payload))
        self.details = error.get("details", {})
        self.payload = payload
        super().__init__(f"[{status} {self.code}] {self.message}")


class ServiceClient:
    """Small synchronous HTTP/JSON client for one service instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(
        self, method: str, path: str, body: Any = None
    ) -> Any:
        """One JSON round trip; raises :class:`ServiceError` on >= 400."""
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (
                http.client.RemoteDisconnected,
                ConnectionResetError,
                BrokenPipeError,
            ):
                # A dropped keep-alive connection gets one clean retry.
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(data.decode("utf-8")) if data else None
        except ValueError:
            decoded = {"error": {"code": "bad_payload",
                                 "message": data.decode("utf-8", "replace")}}
        if response.status >= 400:
            raise ServiceError(response.status, decoded)
        return decoded

    def request_bytes(
        self, method: str, path: str, body: Any = None
    ) -> Tuple[int, bytes]:
        """One round trip returning ``(status, raw body bytes)``.

        No JSON decoding and no :class:`ServiceError` raising — the
        transport for byte-identity assertions (e.g. that every worker
        of a multi-worker deployment serialises the same answer).
        """
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (
                http.client.RemoteDisconnected,
                ConnectionResetError,
                BrokenPipeError,
            ):
                self.close()
                if attempt:
                    raise
        return response.status, data

    @staticmethod
    def _scenario_suffix(scenario: Optional[str]) -> str:
        return f"?scenario={scenario}" if scenario else ""

    # ------------------------------------------------------------------
    # ops surface
    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        return self.request("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self.request("GET", "/metrics")

    # ------------------------------------------------------------------
    # scenarios
    # ------------------------------------------------------------------
    def scenarios(self) -> Dict[str, Any]:
        return self.request("GET", "/v1/scenarios")

    def build_scenario(
        self,
        preset: str = "small",
        seed: Optional[int] = None,
        ases: Optional[int] = None,
        vps: Optional[int] = None,
        churn_rounds: Optional[int] = None,
        algorithms: Optional[Sequence[str]] = None,
    ) -> Dict[str, Any]:
        """``POST /v1/scenarios`` — build (or re-admit) a scenario."""
        body: Dict[str, Any] = {"preset": preset}
        if seed is not None:
            body["seed"] = seed
        if ases is not None:
            body["ases"] = ases
        if vps is not None:
            body["vps"] = vps
        if churn_rounds is not None:
            body["churn_rounds"] = churn_rounds
        if algorithms is not None:
            body["algorithms"] = list(algorithms)
        return self.request("POST", "/v1/scenarios", body)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def rel(
        self, algorithm: str, as1: int, as2: int,
        scenario: Optional[str] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "GET",
            f"/v1/rel/{algorithm}/{as1}/{as2}"
            + self._scenario_suffix(scenario),
        )

    def rel_batch(
        self, algorithm: str, links: Sequence[LinkLike],
        scenario: Optional[str] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "POST",
            f"/v1/rel/{algorithm}:batch" + self._scenario_suffix(scenario),
            {"links": [list(link) for link in links]},
        )

    def neighbors(
        self, asn: int, scenario: Optional[str] = None
    ) -> Dict[str, Any]:
        return self.request(
            "GET", f"/v1/as/{asn}/neighbors" + self._scenario_suffix(scenario)
        )

    def bias(
        self, algorithm: str = "asrank", scenario: Optional[str] = None
    ) -> Dict[str, Any]:
        return self.request(
            "GET", f"/v1/bias/{algorithm}" + self._scenario_suffix(scenario)
        )

    def table(
        self, algorithm: str = "asrank", scenario: Optional[str] = None
    ) -> Dict[str, Any]:
        return self.request(
            "GET", f"/v1/table/{algorithm}" + self._scenario_suffix(scenario)
        )

    def casestudy(
        self,
        algorithm: str = "asrank",
        class_name: str = "T1-TR",
        scenario: Optional[str] = None,
    ) -> Dict[str, Any]:
        path = f"/v1/casestudy?algorithm={algorithm}&class={class_name}"
        if scenario:
            path += f"&scenario={scenario}"
        return self.request("GET", path)
