"""Pre-fork multi-process serving: ``repro serve --serve-workers N``.

One :class:`Supervisor` parent binds the service port, forks N worker
processes, and babysits them:

* **SO_REUSEPORT path** (Linux, modern BSDs) — the parent binds a
  non-listening *reservation* socket (resolving ``port=0`` and holding
  the port), and every worker opens its own ``SO_REUSEPORT`` listening
  socket on the resolved address.  The kernel hashes incoming
  connections across the listening sockets, so load spreads with no
  accept-lock in userspace, and a dead worker's backlog dies with it.
* **Fallback path** — the parent opens one listening socket before
  forking; every worker inherits it and serves ``accept`` races off the
  shared queue.  Functionally identical, just kernel-balanced less
  evenly.

Workers run the ordinary :class:`~repro.service.ReproService` event
loop (``announce=False`` — the parent prints the single canonical
``listening on`` banner).  Crashed workers are restarted with capped
exponential backoff; SIGTERM/SIGINT to the parent is propagated to the
children, which drain in-flight requests through the service's own
signal handling, and stragglers are SIGKILLed after ``drain_timeout``.

Workers do **not** share scenario pools — they share the *artifact
cache*.  A scenario admitted by any worker is recorded there
(``meta.json`` + mmap-able ``corpus.npc``), so every sibling can
warm-admit it on first reference and all workers answer identically;
multi-worker serving therefore requires an attached cache (the CLI
enforces this).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import select
import signal
import socket
import sys
import time
import traceback
from typing import Any, Callable, List, Optional

#: Restart backoff: ``BASE * 2**(restarts-1)`` seconds, capped.
BACKOFF_BASE_S = 0.5
BACKOFF_CAP_S = 30.0
#: A worker alive this long resets its slot's restart counter.
STABLE_RESET_S = 30.0
#: Parent poll interval while supervising / draining.
POLL_S = 0.05
#: How long the parent waits for a freshly forked worker to report that
#: its listening socket exists (socket setup is pre-import, so this is
#: normally milliseconds; the timeout only bounds pathological forks).
READY_TIMEOUT_S = 15.0


def reuseport_available() -> bool:
    """Whether this platform can spread accepts via ``SO_REUSEPORT``."""
    return hasattr(socket, "SO_REUSEPORT")


def _reuseport_socket(host: str, port: int, listen: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((host, port))
        if listen:
            sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


def _listening_socket(host: str, port: int) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(128)
    except BaseException:
        sock.close()
        raise
    return sock


class _WorkerSlot:
    """Bookkeeping for one worker position (pid, uptime, restarts)."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.pid: Optional[int] = None
        self.started = 0.0
        self.restarts = 0

    def backoff(self) -> float:
        if self.restarts == 0:
            return 0.0
        return min(BACKOFF_CAP_S, BACKOFF_BASE_S * 2 ** (self.restarts - 1))


class Supervisor:
    """Fork-and-babysit N service workers on one shared port."""

    def __init__(
        self,
        service_factory: Callable[[], Any],
        host: str = "127.0.0.1",
        port: int = 0,
        serve_workers: int = 2,
        drain_timeout: float = 10.0,
        announce: bool = True,
    ) -> None:
        if serve_workers < 1:
            raise ValueError("serve_workers must be at least 1")
        self._factory = service_factory
        self.requested_host = host
        self.requested_port = port
        self.serve_workers = serve_workers
        self.drain_timeout = drain_timeout
        self.announce = announce
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._slots: List[_WorkerSlot] = [
            _WorkerSlot(i) for i in range(serve_workers)
        ]
        self._reuseport = reuseport_available()
        self._parent_sock: Optional[socket.socket] = None
        self._shutdown = False
        self._signum = signal.SIGTERM

    # ------------------------------------------------------------------
    # socket plumbing
    # ------------------------------------------------------------------
    def _bind(self) -> None:
        """Resolve and hold the service port in the parent.

        With ``SO_REUSEPORT`` the parent's socket is bound but **not**
        listening — TCP only delivers connections to listening members
        of a reuseport group, so this is a pure port reservation and
        every worker's own listening socket receives the traffic.
        """
        if self._reuseport:
            self._parent_sock = _reuseport_socket(
                self.requested_host, self.requested_port, listen=False
            )
        else:
            self._parent_sock = _listening_socket(
                self.requested_host, self.requested_port
            )
        bound = self._parent_sock.getsockname()
        self.host, self.port = bound[0], bound[1]

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, slot: _WorkerSlot) -> None:
        ready_r, ready_w = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(ready_r)
            self._worker_main(slot.index, ready_w)  # never returns
        os.close(ready_w)
        slot.pid = pid
        slot.started = time.monotonic()
        # Block until the worker's listening socket exists (it writes a
        # readiness byte right after socket setup, before building the
        # service).  Connections arriving from here on land in a kernel
        # backlog, not on a refused port — which is what lets run()
        # print the banner only once the port actually answers.  If the
        # child dies first, its end closes and the read returns b"".
        try:
            select.select([ready_r], [], [], READY_TIMEOUT_S)
            with contextlib.suppress(OSError):
                os.read(ready_r, 1)
        finally:
            os.close(ready_r)

    def _worker_main(self, index: int, ready_fd: int) -> None:
        """The child: reset signals, open the socket, run the service.

        Runs under ``os._exit`` so a worker can never fall back into
        the parent's supervision loop (or its atexit handlers).
        """
        status = 1
        try:
            # First thing after fork: drop the parent's Python-level
            # handlers.  Between here and the event loop installing its
            # own, an inherited handler would run the *parent's*
            # propagation code inside the child.
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            signal.signal(signal.SIGINT, signal.SIG_DFL)
            if self._reuseport:
                sock = _reuseport_socket(self.host, self.port, listen=True)
            else:
                sock = self._parent_sock
            # The port now queues connections for this worker; tell the
            # parent before the (comparatively slow) service build.
            os.write(ready_fd, b"1")
            os.close(ready_fd)
            # The service (and its executor threads, event loop, pool)
            # is constructed entirely post-fork.
            service = self._factory()
            service.metrics.worker_index = index
            asyncio.run(service.run(sock=sock, announce=False))
            status = 0
        except BaseException:
            traceback.print_exc(file=sys.stderr)
        finally:
            os._exit(status)

    def _alive_pids(self) -> List[int]:
        return [slot.pid for slot in self._slots if slot.pid is not None]

    def _slot_for(self, pid: int) -> Optional[_WorkerSlot]:
        for slot in self._slots:
            if slot.pid == pid:
                return slot
        return None

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def _on_signal(self, signum: int, frame: Any) -> None:
        self._shutdown = True
        self._signum = signum
        self._forward(signum)

    def _forward(self, signum: int) -> None:
        for pid in self._alive_pids():
            with contextlib.suppress(ProcessLookupError):
                os.kill(pid, signum)

    # ------------------------------------------------------------------
    # the supervision loop
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until SIGTERM/SIGINT; returns a process exit code."""
        self._bind()
        signal.signal(signal.SIGTERM, self._on_signal)
        signal.signal(signal.SIGINT, self._on_signal)
        try:
            for slot in self._slots:
                self._spawn(slot)
            if self.announce:
                # Same banner (and same first-stdout-line contract) as
                # the single-process path, so callers parse one shape.
                # Printed only after every first-wave worker reported
                # its listening socket, so the port answers by now.
                print(
                    f"repro service listening on "
                    f"http://{self.host}:{self.port}",
                    flush=True,
                )
            while not self._shutdown:
                self._reap_and_restart()
                time.sleep(POLL_S)
        finally:
            self._drain()
            if self._parent_sock is not None:
                self._parent_sock.close()
                self._parent_sock = None
        return 0

    def _reap_and_restart(self) -> None:
        while True:
            try:
                pid, _status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                return
            if pid == 0:
                return
            slot = self._slot_for(pid)
            if slot is None:
                continue  # not ours (shouldn't happen)
            slot.pid = None
            uptime = time.monotonic() - slot.started
            if uptime >= STABLE_RESET_S:
                slot.restarts = 0
            slot.restarts += 1
            delay = slot.backoff()
            print(
                f"repro supervisor: worker {slot.index} (pid {pid}) exited "
                f"after {uptime:.1f}s; restarting in {delay:.1f}s",
                file=sys.stderr,
                flush=True,
            )
            self._sleep_unless_shutdown(delay)
            if self._shutdown:
                return
            self._spawn(slot)

    def _sleep_unless_shutdown(self, delay: float) -> None:
        deadline = time.monotonic() + delay
        while not self._shutdown and time.monotonic() < deadline:
            time.sleep(POLL_S)

    def _drain(self) -> None:
        """Propagate the shutdown signal, wait, SIGKILL stragglers."""
        self._forward(self._signum)
        deadline = time.monotonic() + self.drain_timeout
        while self._alive_pids() and time.monotonic() < deadline:
            self._reap_nohang()
            time.sleep(POLL_S)
        for slot in self._slots:
            if slot.pid is None:
                continue
            with contextlib.suppress(ProcessLookupError):
                os.kill(slot.pid, signal.SIGKILL)
            with contextlib.suppress(ChildProcessError):
                os.waitpid(slot.pid, 0)
            slot.pid = None

    def _reap_nohang(self) -> None:
        while True:
            try:
                pid, _status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                return
            if pid == 0:
                return
            slot = self._slot_for(pid)
            if slot is not None:
                slot.pid = None
