"""The scenario pool: LRU-bounded, single-flight, executor-built.

A :class:`ScenarioPool` owns up to ``capacity`` built
:class:`~repro.scenario.Scenario` objects, keyed by the canonical
fingerprint of their :class:`~repro.config.ScenarioConfig` (the same
content address the artifact cache uses, truncated for URLs).  Three
properties make it safe to put behind a server:

* **Single-flight builds** — concurrent requests for the same config
  await one build task instead of duplicating the work; the build task
  is owned by the pool (not the first requester), so a disconnecting
  client cannot orphan the waiters.
* **Executor builds** — ``build_scenario`` plus the
  :class:`~repro.service.query.ScenarioView` indexing run in a small
  thread pool, so the event loop keeps answering ``/healthz`` and point
  queries while propagation crunches.
* **Warm starts** — an attached
  :class:`~repro.pipeline.cache.ArtifactCache` is passed straight into
  ``build_scenario``, so a scenario the pipeline has ever built loads
  its corpus/validation/inference artifacts instead of recomputing.

Counters (``hits``/``misses``/``builds``/``coalesced``/``evictions``)
feed the ``/metrics`` document.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from collections import OrderedDict

from repro.config import ScenarioConfig
from repro.scenario import Scenario, build_scenario
from repro.service.query import ScenarioView

#: Characters of the config fingerprint used as the public scenario id.
SCENARIO_ID_LENGTH = 12


def scenario_id(config: ScenarioConfig) -> str:
    """The URL-safe pool key of a config (canonical-fingerprint prefix)."""
    return config.fingerprint()[:SCENARIO_ID_LENGTH]


@dataclass
class PoolEntry:
    """One admitted scenario plus everything derived from it."""

    scenario_id: str
    config: ScenarioConfig
    scenario: Scenario
    view: ScenarioView
    build_seconds: float
    #: Endpoint-level memo (bias/table/casestudy payloads, rel indexes
    #: in flight); guarded by ``lock`` so heavy recomputation is
    #: serialised per scenario.
    reports: Dict[str, Any] = field(default_factory=dict)
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class ScenarioPool:
    """LRU pool of built scenarios with single-flight admission."""

    def __init__(
        self,
        capacity: int = 4,
        workers: int = 0,
        cache: Any = None,
        builder: Callable[..., Scenario] = build_scenario,
        view_factory: Callable[[Scenario], ScenarioView] = ScenarioView,
        max_build_threads: int = 2,
    ) -> None:
        if capacity < 1:
            raise ValueError("pool capacity must be at least 1")
        self.capacity = capacity
        self.workers = workers
        self.cache = cache
        self._builder = builder
        self._view_factory = view_factory
        self._entries: "OrderedDict[str, PoolEntry]" = OrderedDict()
        self._building: Dict[str, asyncio.Task] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=max_build_threads, thread_name_prefix="repro-build"
        )
        self.hits = 0
        self.misses = 0
        self.builds = 0
        self.coalesced = 0
        self.evictions = 0
        #: Builds whose corpus came warm (mmap) out of the artifact
        #: cache vs. recomputed by propagation.
        self.warm_admissions = 0
        self.cold_admissions = 0
        #: Scenario ids resolved through the shared cache's meta records
        #: (a sibling process admitted them first).
        self.cache_resolutions = 0

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    @property
    def executor(self) -> ThreadPoolExecutor:
        """The build thread pool (shared with lazy index/report work)."""
        return self._executor

    def get(self, key: str) -> Optional[PoolEntry]:
        """Entry by scenario id; touches LRU recency on hit."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def latest(self) -> Optional[PoolEntry]:
        """The most recently admitted/used entry (the default scenario)."""
        if not self._entries:
            return None
        return next(reversed(self._entries.values()))

    def ids(self) -> list:
        """Scenario ids, least recently used first."""
        return list(self._entries)

    def entries(self) -> list:
        """Pool entries, least recently used first (no LRU touch)."""
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    async def get_or_build(self, config: ScenarioConfig) -> PoolEntry:
        """The pool entry for ``config``, building it at most once.

        Concurrent calls with an equal config all await the same build
        task; only the first one counts as a build.
        """
        key = scenario_id(config)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        task = self._building.get(key)
        if task is None:
            self.misses += 1
            task = asyncio.get_running_loop().create_task(
                self._build(key, config)
            )
            self._building[key] = task
            task.add_done_callback(lambda t: self._reap(key, t))
        else:
            self.coalesced += 1
        # Shielded so one cancelled requester does not cancel the build
        # the other waiters (and the pool) are counting on.
        return await asyncio.shield(task)

    async def _build(self, key: str, config: ScenarioConfig) -> PoolEntry:
        self.builds += 1
        loop = asyncio.get_running_loop()
        started = time.monotonic()

        def job() -> PoolEntry:
            scenario = self._builder(
                config, workers=self.workers, cache=self.cache
            )
            view = self._view_factory(scenario)
            return PoolEntry(
                scenario_id=key,
                config=config,
                scenario=scenario,
                view=view,
                build_seconds=time.monotonic() - started,
            )

        entry = await loop.run_in_executor(self._executor, job)
        # Injected test builders may return non-Scenario stand-ins, so
        # read the warm flag defensively.
        if getattr(entry.scenario, "corpus_from_cache", False):
            self.warm_admissions += 1
        else:
            self.cold_admissions += 1
        self._admit(key, entry)
        return entry

    async def admit_cached(self, sid: str) -> Optional[PoolEntry]:
        """Admit a scenario by id through the shared artifact cache.

        Covers the multi-worker seam: a scenario built (and cached) by a
        sibling process is unknown to this pool, but its ``meta.json``
        in the shared cache records the full canonical config.  Resolve
        the id there, verify it round-trips to the same fingerprint, and
        run the normal (warm, mmap-backed) admission.  Returns ``None``
        when no cache is attached or nothing matches.
        """
        if self.cache is None:
            return None
        loop = asyncio.get_running_loop()
        config = await loop.run_in_executor(
            self._executor, self.cache.config_for_fingerprint, sid
        )
        if config is None or scenario_id(config) != sid:
            return None
        self.cache_resolutions += 1
        return await self.get_or_build(config)

    def _reap(self, key: str, task: asyncio.Task) -> None:
        self._building.pop(key, None)
        if not task.cancelled():
            # Retrieve (and drop) the exception so a failed build with
            # no remaining waiters does not warn at shutdown; waiters
            # that are still around receive it through the shield.
            task.exception()

    def _admit(self, key: str, entry: PoolEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # observability / lifecycle
    # ------------------------------------------------------------------
    @property
    def builds_in_progress(self) -> int:
        return len(self._building)

    def stats(self) -> Dict[str, Any]:
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "coalesced": self.coalesced,
            "evictions": self.evictions,
            "warm_admissions": self.warm_admissions,
            "cold_admissions": self.cold_admissions,
            "cache_resolutions": self.cache_resolutions,
            "builds_in_progress": self.builds_in_progress,
        }

    def close(self) -> None:
        """Synchronous shutdown: cancel in-flight builds, stop the executor.

        Safe to call with no running loop (the tasks are then already
        dead with their loop).  From async code prefer
        :meth:`aclose`, which additionally *awaits* the cancelled
        builds so none is garbage-collected while pending ("Task was
        destroyed but it is pending") and no executor job outlives
        shutdown unobserved.
        """
        for task in list(self._building.values()):
            task.cancel()
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def aclose(self) -> None:
        """Cancel and reap in-flight builds, then stop the executor.

        Waiters blocked in :meth:`get_or_build` receive
        ``CancelledError`` through their shield; cancelled build tasks
        are awaited (so none is destroyed pending) and the executor is
        joined off-loop — queued jobs are cancelled, already-running
        ones finish with their results discarded, and no build thread
        outlives this coroutine.
        """
        tasks = [task for task in self._building.values() if not task.done()]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._building.clear()
        await asyncio.get_running_loop().run_in_executor(
            None, self._shutdown_executor
        )

    def _shutdown_executor(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)
