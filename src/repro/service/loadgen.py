"""Closed-loop async load generator for the repro query service.

``repro loadgen`` (or :func:`run_loadgen` programmatically) drives a
running service the way the substrate benchmarks drive the pipeline:
deterministically, with machine-readable output.  ``concurrency`` tasks
each hold one keep-alive connection and issue requests back-to-back
(closed loop: a task's next request starts when its previous response
finishes), drawing endpoints from a weighted mix with a per-task
:func:`~repro.utils.rng.child_rng` stream — two runs with equal
parameters issue the same request sequence.

The result records throughput plus per-endpoint p50/p99/max latency and
merges into ``BENCH_service.json`` (same schema and atomic-merge
machinery as ``BENCH_substrate.json``), so serving performance gets a
per-PR trajectory in CI next to the substrate numbers.

The **prepare** phase is synchronous and runs before timing starts: it
admits the target scenario through ``POST /v1/scenarios`` and harvests
a working set of real visible links/ASNs via neighbor expansion, so the
timed loop measures serving — not scenario building.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.service.client import ServiceClient
from repro.utils.benchreport import merge_bench_report
from repro.utils.rng import child_rng, weighted_choice

#: Endpoints the mix may reference.
ENDPOINTS = ("rel", "batch", "neighbors", "healthz")

#: Default endpoint mix (weights, not percentages).
DEFAULT_MIX: Dict[str, float] = {"rel": 4.0, "batch": 1.0, "neighbors": 2.0}

#: Report file the loadgen publishes into.
REPORT_FILENAME = "BENCH_service.json"


def parse_mix(text: str) -> Dict[str, float]:
    """Parse ``"rel=4,batch=1"`` into an endpoint→weight dict."""
    mix: Dict[str, float] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, sep, raw = chunk.partition("=")
        name = name.strip()
        if name not in ENDPOINTS:
            raise ValueError(
                f"unknown endpoint {name!r} in mix "
                f"(accepted: {', '.join(ENDPOINTS)})"
            )
        try:
            weight = float(raw) if sep else 1.0
        except ValueError as exc:
            raise ValueError(f"bad weight for {name!r}: {raw!r}") from exc
        if weight < 0:
            raise ValueError(f"negative weight for {name!r}")
        mix[name] = weight
    if not mix or sum(mix.values()) <= 0:
        raise ValueError("endpoint mix must have at least one positive weight")
    return mix


@dataclass
class LoadgenPlan:
    """Everything the timed loop needs, fixed before timing starts."""

    host: str
    port: int
    scenario: str
    algorithm: str
    links: List[Tuple[int, int]]
    asns: List[int]
    mix: Dict[str, float]
    batch_size: int
    seed: int


@dataclass
class LoadgenResult:
    """One loadgen run's measurements (the ``BENCH_service.json`` unit)."""

    duration_s: float
    concurrency: int
    total_requests: int
    errors: int
    reconnects: int
    throughput_rps: float
    mix: Dict[str, float]
    batch_size: int
    latency_ms: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "duration_s": round(self.duration_s, 3),
            "concurrency": self.concurrency,
            "total_requests": self.total_requests,
            "errors": self.errors,
            "reconnects": self.reconnects,
            "throughput_rps": round(self.throughput_rps, 2),
            "mix": self.mix,
            "batch_size": self.batch_size,
            "latency_ms": self.latency_ms,
        }


# ----------------------------------------------------------------------
# prepare phase (synchronous, untimed)
# ----------------------------------------------------------------------
def prepare_plan(
    host: str,
    port: int,
    preset: str = "small",
    seed: int = 7,
    ases: Optional[int] = None,
    vps: Optional[int] = None,
    algorithm: str = "asrank",
    mix: Optional[Dict[str, float]] = None,
    batch_size: int = 256,
    n_links: int = 256,
    loadgen_seed: int = 0,
) -> LoadgenPlan:
    """Admit the scenario and harvest a link/ASN working set."""
    with ServiceClient(host, port, timeout=600.0) as client:
        admitted = client.build_scenario(
            preset=preset, seed=seed, ases=ases, vps=vps,
            algorithms=[algorithm],
        )
        sid = admitted["scenario"]
        links = {tuple(link) for link in admitted["sample_links"]}
        frontier = sorted({asn for link in links for asn in link})
        seen_asns = set(frontier)
        # Breadth-first neighbor expansion until the working set is big
        # enough; every link here is genuinely visible in the corpus.
        while frontier and len(links) < max(n_links, batch_size):
            asn = frontier.pop(0)
            payload = client.neighbors(asn, scenario=sid)
            for neighbor in payload["neighbors"]:
                links.add((min(asn, neighbor), max(asn, neighbor)))
                if neighbor not in seen_asns:
                    seen_asns.add(neighbor)
                    frontier.append(neighbor)
            if len(links) >= max(n_links, batch_size):
                break
    return LoadgenPlan(
        host=host,
        port=port,
        scenario=sid,
        algorithm=algorithm,
        links=sorted(links),
        asns=sorted(seen_asns),
        mix=dict(mix or DEFAULT_MIX),
        batch_size=batch_size,
        seed=loadgen_seed,
    )


# ----------------------------------------------------------------------
# the timed loop (async, minimal HTTP/1.1 client)
# ----------------------------------------------------------------------
async def _read_response(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    line = await reader.readline()
    if not line:
        raise ConnectionResetError("server closed the connection")
    parts = line.decode("latin-1").split()
    status = int(parts[1])
    length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status, body


def _request_bytes(plan: LoadgenPlan, name: str, rng: Any) -> bytes:
    sid = plan.scenario
    if name == "rel":
        a, b = plan.links[int(rng.integers(0, len(plan.links)))]
        path = f"/v1/rel/{plan.algorithm}/{a}/{b}?scenario={sid}"
        return (
            f"GET {path} HTTP/1.1\r\nHost: {plan.host}\r\n\r\n"
        ).encode("latin-1")
    if name == "batch":
        indices = rng.integers(0, len(plan.links), size=plan.batch_size)
        body = json.dumps(
            {"links": [list(plan.links[int(i)]) for i in indices]}
        ).encode("utf-8")
        path = f"/v1/rel/{plan.algorithm}:batch?scenario={sid}"
        head = (
            f"POST {path} HTTP/1.1\r\nHost: {plan.host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        return head + body
    if name == "neighbors":
        asn = plan.asns[int(rng.integers(0, len(plan.asns)))]
        path = f"/v1/as/{asn}/neighbors?scenario={sid}"
        return (
            f"GET {path} HTTP/1.1\r\nHost: {plan.host}\r\n\r\n"
        ).encode("latin-1")
    if name == "healthz":
        return (
            f"GET /healthz HTTP/1.1\r\nHost: {plan.host}\r\n\r\n"
        ).encode("latin-1")
    raise ValueError(f"unknown endpoint {name!r}")


async def _task_loop(
    plan: LoadgenPlan,
    index: int,
    deadline: float,
    samples: List[Tuple[str, float, int]],
    counters: Dict[str, int],
) -> None:
    rng = child_rng(plan.seed, f"loadgen-task-{index}")
    names = sorted(plan.mix)
    weights = [plan.mix[name] for name in names]
    reader = writer = None
    try:
        while time.monotonic() < deadline:
            if writer is None:
                reader, writer = await asyncio.open_connection(
                    plan.host, plan.port
                )
            name = weighted_choice(rng, names, weights)
            request = _request_bytes(plan, name, rng)
            started = time.monotonic()
            try:
                writer.write(request)
                await writer.drain()
                status, _body = await _read_response(reader)
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.IncompleteReadError,
            ):
                # A worker restart (or idle drop) killed the
                # connection; reconnect and keep going.
                counters["reconnects"] += 1
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()
                writer = None
                continue
            elapsed_ms = (time.monotonic() - started) * 1000.0
            samples.append((name, elapsed_ms, status))
            if status >= 400:
                counters["errors"] += 1
    finally:
        if writer is not None:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()


async def _run_tasks(
    plan: LoadgenPlan, concurrency: int, duration_s: float
) -> Tuple[List[Tuple[str, float, int]], Dict[str, int], float]:
    samples: List[Tuple[str, float, int]] = []
    counters = {"errors": 0, "reconnects": 0}
    started = time.monotonic()
    deadline = started + duration_s
    outcomes = await asyncio.gather(
        *(
            _task_loop(plan, index, deadline, samples, counters)
            for index in range(concurrency)
        ),
        return_exceptions=True,
    )
    for outcome in outcomes:
        if isinstance(outcome, BaseException):
            raise outcome
    return samples, counters, time.monotonic() - started


def _summarise(
    samples: Sequence[Tuple[str, float, int]],
    counters: Dict[str, int],
    elapsed_s: float,
    plan: LoadgenPlan,
    concurrency: int,
) -> LoadgenResult:
    by_endpoint: Dict[str, List[float]] = {}
    for name, elapsed_ms, _status in samples:
        by_endpoint.setdefault(name, []).append(elapsed_ms)
    latency = {}
    for name, values in sorted(by_endpoint.items()):
        arr = np.asarray(values, dtype=float)
        latency[name] = {
            "count": int(arr.size),
            "p50": round(float(np.percentile(arr, 50)), 3),
            "p99": round(float(np.percentile(arr, 99)), 3),
            "mean": round(float(arr.mean()), 3),
            "max": round(float(arr.max()), 3),
        }
    return LoadgenResult(
        duration_s=elapsed_s,
        concurrency=concurrency,
        total_requests=len(samples),
        errors=counters["errors"],
        reconnects=counters["reconnects"],
        throughput_rps=len(samples) / elapsed_s if elapsed_s > 0 else 0.0,
        mix=dict(plan.mix),
        batch_size=plan.batch_size,
        latency_ms=latency,
    )


def run_loadgen(
    plan: LoadgenPlan, concurrency: int = 8, duration_s: float = 5.0
) -> LoadgenResult:
    """Run the closed loop against a live service and summarise it."""
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    samples, counters, elapsed_s = asyncio.run(
        _run_tasks(plan, concurrency, duration_s)
    )
    return _summarise(samples, counters, elapsed_s, plan, concurrency)


def publish_result(
    out_dir: str, name: str, result: LoadgenResult,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Merge one run into ``<out_dir>/BENCH_service.json``."""
    path = os.path.join(out_dir, REPORT_FILENAME)
    merge_bench_report(path, {name: result.as_dict()}, extra=extra)
    return path
