"""Minimal HTTP/1.1 framing over asyncio streams (stdlib only).

Just enough of RFC 9112 for a JSON API: request-line + headers +
``Content-Length`` bodies in, ``Content-Length``-framed responses out,
keep-alive by default.  No chunked transfer, no compression, no TLS —
the service sits on a trusted host or behind a real reverse proxy.

Two error channels are distinguished on purpose:

* :class:`ProtocolError` — the bytes on the wire are not HTTP (or blow
  a size limit).  The connection gets one ``400`` and is closed.
* :class:`ApiError` — the request parsed fine but the API rejects it
  (unknown route, unknown scenario, malformed JSON body...).  These
  become structured JSON error bodies, never tracebacks, and the
  connection stays usable.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional
from urllib.parse import parse_qs, unquote, urlsplit

#: Hard ceilings that keep one bad client from ballooning memory.
MAX_HEADER_LINES = 100
MAX_BODY_BYTES = 16 * 1024 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """The peer sent bytes this server cannot frame as HTTP/1.1."""


class ApiError(Exception):
    """A structured API-level error (safe to serialise to the client)."""

    def __init__(self, status: int, code: str, message: str, **details: Any):
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.details = details

    def payload(self) -> Dict[str, Any]:
        error: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.details:
            error["details"] = self.details
        return {"error": error}


@dataclass
class Request:
    """One parsed request, query string and headers included."""

    method: str
    target: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> Any:
        """The JSON-decoded body; ``{}`` when empty."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ApiError(
                400, "invalid_json", f"request body is not valid JSON: {exc}"
            ) from exc


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one request off the stream; ``None`` on a clean EOF.

    Raises :class:`ProtocolError` for anything that is not well-formed
    HTTP/1.x — the caller answers 400 once and closes the connection.
    """
    try:
        raw_line = await reader.readline()
    except (ValueError, asyncio.LimitOverrunError) as exc:
        raise ProtocolError(f"request line too long: {exc}") from exc
    if not raw_line:
        return None
    line = raw_line.decode("latin-1").strip()
    if not line:
        raise ProtocolError("empty request line")
    parts = line.split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise ProtocolError(f"malformed request line: {line!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_LINES):
        try:
            raw_header = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError) as exc:
            raise ProtocolError(f"header line too long: {exc}") from exc
        header = raw_header.decode("latin-1").rstrip("\r\n")
        if header == "":
            break
        name, sep, value = header.partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {header!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError("too many header lines")

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise ProtocolError(
                f"bad Content-Length: {length_header!r}"
            ) from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise ProtocolError(f"Content-Length out of range: {length}")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-body") from exc

    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }
    return Request(
        method=method.upper(),
        target=target,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def json_response(status: int, payload: Any, keep_alive: bool = True) -> bytes:
    """Serialise one complete HTTP/1.1 JSON response."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body
