"""Per-scenario O(1) query indexes behind the service endpoints.

A :class:`ScenarioView` is built **once** per admitted scenario (inside
the pool's build executor, never on the event loop) and answers every
point query with plain dict lookups:

* ``adjacency`` — ASN → sorted visible neighbours (from the corpus);
* ``rel_index(algorithm)`` — link key → (relationship, provider), one
  dict per algorithm, materialised from
  :meth:`repro.scenario.Scenario.infer` the first time the algorithm is
  requested and kept forever after;
* ``validation`` — link key → the cleaned validation record;
* ``classes`` — link key → regional and topological class labels.

Point-query latency is therefore O(1) per lookup: after a scenario (and
an algorithm's index) is built, a thousand ``GET /v1/rel/...`` requests
run zero inferences — the ``/metrics`` document proves it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.casestudy import CaseStudyResult
from repro.datasets.paths import PathCorpus
from repro.scenario import ALGORITHM_NAMES, Scenario
from repro.topology.graph import LinkKey, RelType, link_key

#: Wire names of the relationship types.
REL_NAMES: Dict[RelType, str] = {
    RelType.P2C: "p2c",
    RelType.P2P: "p2p",
    RelType.S2S: "s2s",
}


class ScenarioView:
    """Immutable-after-build query indexes over one :class:`Scenario`."""

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        corpus = scenario.corpus
        #: The paper's "inferred links" universe (siblings excluded).
        self.links: List[LinkKey] = scenario.inferred_links()
        visible = corpus.visible_links()
        self._visible = set(visible)

        adjacency: Dict[int, List[int]] = {}
        for a, b in visible:
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)
        self.adjacency: Dict[int, List[int]] = {
            asn: sorted(neighbors) for asn, neighbors in adjacency.items()
        }

        self.validation: Dict[LinkKey, Tuple[RelType, Optional[int]]] = dict(
            scenario.validation.rels
        )

        regional = scenario.regional_classifier()
        topological = scenario.topological_classifier()
        self.classes: Dict[LinkKey, Tuple[Optional[str], Optional[str]]] = {
            key: (regional.classify(key), topological.classify(key))
            for key in visible
        }

        self._rels: Dict[str, Dict[LinkKey, Tuple[RelType, Optional[int]]]] = {}

    # ------------------------------------------------------------------
    # index construction
    # ------------------------------------------------------------------
    def has_rel_index(self, algorithm: str) -> bool:
        return algorithm in self._rels

    def build_rel_index(
        self, algorithm: str
    ) -> Dict[LinkKey, Tuple[RelType, Optional[int]]]:
        """Materialise (and memoise) one algorithm's link→rel dict.

        Runs the inference when the scenario has not produced it yet, so
        callers must dispatch this to an executor, not the event loop.
        """
        if algorithm not in ALGORITHM_NAMES:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        if algorithm not in self._rels:
            rels = self.scenario.infer(algorithm)
            index: Dict[LinkKey, Tuple[RelType, Optional[int]]] = {}
            for key, rel, provider in rels.items():
                index[key] = (rel, provider if rel is RelType.P2C else None)
            self._rels[algorithm] = index
        return self._rels[algorithm]

    # ------------------------------------------------------------------
    # point queries (all O(1))
    # ------------------------------------------------------------------
    def is_visible(self, key: LinkKey) -> bool:
        return key in self._visible

    def link_payload(
        self, algorithm: str, a: int, b: int
    ) -> Optional[Dict[str, Any]]:
        """The JSON record for one link, ``None`` if never observed.

        The algorithm's index must already be built (see
        :meth:`build_rel_index`); this method only does dict lookups.
        """
        key = link_key(a, b)
        if key not in self._visible:
            return None
        index = self._rels[algorithm]
        entry = index.get(key)
        validated = self.validation.get(key)
        regional, topological = self.classes.get(key, (None, None))
        return {
            "as1": key[0],
            "as2": key[1],
            "algorithm": algorithm,
            "relationship": REL_NAMES[entry[0]] if entry else None,
            "provider": entry[1] if entry else None,
            "validation": (
                {
                    "relationship": REL_NAMES[validated[0]],
                    "provider": validated[1],
                }
                if validated
                else None
            ),
            "classes": {"regional": regional, "topological": topological},
            "visibility": self.scenario.corpus.link_visibility(key),
        }

    def neighbors_payload(self, asn: int) -> Optional[Dict[str, Any]]:
        neighbors = self.adjacency.get(asn)
        if neighbors is None:
            return None
        corpus = self.scenario.corpus
        return {
            "asn": asn,
            "neighbors": neighbors,
            "degree": len(neighbors),
            "transit_degree": corpus.transit_degree(asn),
        }

    # ------------------------------------------------------------------
    # summary payloads (cached per scenario by the app layer)
    # ------------------------------------------------------------------
    def scenario_payload(self, scenario_id: str) -> Dict[str, Any]:
        scenario = self.scenario
        return {
            "scenario": scenario_id,
            "seed": scenario.config.seed,
            "n_ases": scenario.config.topology.n_ases,
            "snapshot": scenario.config.snapshot,
            "stats": {
                **scenario.corpus.stats(),
                "n_inferred_links": len(self.links),
                "n_validated_links": len(scenario.validation),
            },
            "algorithms_indexed": sorted(self._rels),
        }


def casestudy_payload(result: CaseStudyResult) -> Dict[str, Any]:
    """The §6.1 case-study summary as served by ``GET /v1/casestudy``."""
    return {
        "n_wrong_p2p": result.n_wrong,
        "focus_member": result.focus_member,
        "focus_share": round(result.focus_share, 6),
        "n_targets": len(result.targets),
        "n_partial_transit_confirmed": result.n_partial_transit_confirmed,
        "n_stale_validation": result.n_stale_validation,
        "n_clique_triplet_targets": sum(
            1 for target in result.targets if target.has_clique_triplet
        ),
    }


def corpus_stats_payload(corpus: "PathCorpus") -> Dict[str, Any]:
    """Corpus counters, intern-table sizes, and memory footprint.

    One serialisation shared by ``repro corpus stats``, the substrate
    benchmarks' ``BENCH_substrate.json``, and service consumers — so a
    corpus is always described by the same JSON shape.
    """
    payload: Dict[str, Any] = {
        "stats": corpus.stats(),
        "memory": corpus.memory_report(),
    }
    index = corpus.columnar_index()
    if index is not None:
        payload["intern_tables"] = {
            "n_links": index.n_links,
            "n_ases": index.n_ases,
            "n_triplets": index.n_triplets,
            "n_link_vp_pairs": index.n_link_vp_pairs,
        }
    else:
        payload["intern_tables"] = {}
    return payload
