"""Per-scenario O(1) query indexes behind the service endpoints.

A :class:`ScenarioView` is built **once** per admitted scenario (inside
the pool's build executor, never on the event loop) and answers every
point query with plain dict lookups:

* ``adjacency`` — ASN → sorted visible neighbours (from the corpus);
* ``rel_index(algorithm)`` — link key → (relationship, provider), one
  dict per algorithm, materialised from
  :meth:`repro.scenario.Scenario.infer` the first time the algorithm is
  requested and kept forever after;
* ``validation`` — link key → the cleaned validation record;
* ``classes`` — link key → regional and topological class labels.

Point-query latency is therefore O(1) per lookup: after a scenario (and
an algorithm's index) is built, a thousand ``GET /v1/rel/...`` requests
run zero inferences — the ``/metrics`` document proves it.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.casestudy import CaseStudyResult
from repro.datasets.paths import PathCorpus
from repro.scenario import ALGORITHM_NAMES, Scenario
from repro.topology.graph import LinkKey, RelType, link_key

#: Wire names of the relationship types.
REL_NAMES: Dict[RelType, str] = {
    RelType.P2C: "p2c",
    RelType.P2P: "p2p",
    RelType.S2S: "s2s",
}


class ScenarioView:
    """Immutable-after-build query indexes over one :class:`Scenario`."""

    def __init__(self, scenario: Scenario):
        self.scenario = scenario
        corpus = scenario.corpus
        #: The paper's "inferred links" universe (siblings excluded).
        self.links: List[LinkKey] = scenario.inferred_links()
        visible = corpus.visible_links()
        self._visible = set(visible)
        self._visible_sorted: List[LinkKey] = list(visible)
        self._visible_pack: Optional[np.ndarray] = None
        self._visible_order: Optional[np.ndarray] = None

        adjacency: Dict[int, List[int]] = {}
        for a, b in visible:
            adjacency.setdefault(a, []).append(b)
            adjacency.setdefault(b, []).append(a)
        self.adjacency: Dict[int, List[int]] = {
            asn: sorted(neighbors) for asn, neighbors in adjacency.items()
        }

        self.validation: Dict[LinkKey, Tuple[RelType, Optional[int]]] = dict(
            scenario.validation.rels
        )

        regional = scenario.regional_classifier()
        topological = scenario.topological_classifier()
        self.classes: Dict[LinkKey, Tuple[Optional[str], Optional[str]]] = {
            key: (regional.classify(key), topological.classify(key))
            for key in visible
        }

        self._rels: Dict[str, Dict[LinkKey, Tuple[RelType, Optional[int]]]] = {}
        #: Per-algorithm batch records, aligned with ``_visible_sorted``.
        self._batch_records: Dict[str, List[Dict[str, Any]]] = {}

    # ------------------------------------------------------------------
    # index construction
    # ------------------------------------------------------------------
    def has_rel_index(self, algorithm: str) -> bool:
        return algorithm in self._rels

    def build_rel_index(
        self, algorithm: str
    ) -> Dict[LinkKey, Tuple[RelType, Optional[int]]]:
        """Materialise (and memoise) one algorithm's link→rel dict.

        Runs the inference when the scenario has not produced it yet, so
        callers must dispatch this to an executor, not the event loop.
        """
        if algorithm not in ALGORITHM_NAMES:
            raise ValueError(f"unknown algorithm {algorithm!r}")
        if algorithm not in self._rels:
            rels = self.scenario.infer(algorithm)
            index: Dict[LinkKey, Tuple[RelType, Optional[int]]] = {}
            for key, rel, provider in rels.items():
                index[key] = (rel, provider if rel is RelType.P2C else None)
            self._rels[algorithm] = index
            records = []
            for a, b in self._visible_sorted:
                record = self.link_payload(algorithm, a, b)
                record["visible"] = True
                records.append(record)
            self._batch_records[algorithm] = records
        return self._rels[algorithm]

    # ------------------------------------------------------------------
    # point queries (all O(1))
    # ------------------------------------------------------------------
    def is_visible(self, key: LinkKey) -> bool:
        return key in self._visible

    def link_payload(
        self, algorithm: str, a: int, b: int
    ) -> Optional[Dict[str, Any]]:
        """The JSON record for one link, ``None`` if never observed.

        The algorithm's index must already be built (see
        :meth:`build_rel_index`); this method only does dict lookups.
        """
        key = link_key(a, b)
        if key not in self._visible:
            return None
        index = self._rels[algorithm]
        entry = index.get(key)
        validated = self.validation.get(key)
        regional, topological = self.classes.get(key, (None, None))
        return {
            "as1": key[0],
            "as2": key[1],
            "algorithm": algorithm,
            "relationship": REL_NAMES[entry[0]] if entry else None,
            "provider": entry[1] if entry else None,
            "validation": (
                {
                    "relationship": REL_NAMES[validated[0]],
                    "provider": validated[1],
                }
                if validated
                else None
            ),
            "classes": {"regional": regional, "topological": topological},
            "visibility": self.scenario.corpus.link_visibility(key),
        }

    # ------------------------------------------------------------------
    # batch queries (one vectorized pass)
    # ------------------------------------------------------------------
    @staticmethod
    def unknown_record(algorithm: str, a: int, b: int) -> Dict[str, Any]:
        """The fixed record shape for a link never observed in paths."""
        return {
            "as1": min(a, b),
            "as2": max(a, b),
            "algorithm": algorithm,
            "relationship": None,
            "provider": None,
            "validation": None,
            "classes": {"regional": None, "topological": None},
            "visibility": 0,
            "visible": False,
        }

    def _link_pack(self) -> Tuple[np.ndarray, np.ndarray]:
        """Visible links as an ascending packed-uint64 array.

        Each ``(as1, as2)`` canonical key packs to ``(as1 << 32) | as2``
        — an order-preserving encoding, so one ``searchsorted`` resolves
        a whole batch.  The companion permutation maps a pack position
        back to the ``_visible_sorted`` index carrying its record.
        """
        if self._visible_pack is None:
            if self._visible_sorted:
                arr = np.asarray(self._visible_sorted, dtype=np.uint64)
                pack = (arr[:, 0] << np.uint64(32)) | arr[:, 1]
                order = np.argsort(pack, kind="stable")
                self._visible_pack = pack[order]
                self._visible_order = order
            else:
                self._visible_pack = np.empty(0, dtype=np.uint64)
                self._visible_order = np.empty(0, dtype=np.intp)
        return self._visible_pack, self._visible_order

    def batch_payloads(
        self, algorithm: str, pairs: Sequence[Sequence[int]]
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Resolve a whole batch of ASN pairs in one vectorized pass.

        Byte-compatible with :meth:`batch_payloads_perkey` (the
        pre-vectorization per-key dict walk, kept as the equivalence
        oracle): pairs pack to uint64 keys, one ``searchsorted`` against
        the visible-link table finds every known link, and known links
        reuse records prebuilt at index time.  Falls back to the scalar
        path for ASNs numpy cannot hold in int64 and for ragged input
        (every ``pairs`` element must be an ``(a, b)`` pair — the HTTP
        handler validates this before calling).
        """
        if not pairs:
            return [], 0
        records = self._batch_records[algorithm]
        # fromiter over a flattened iterator skips the per-pair sequence
        # protocol np.asarray pays on list-of-lists (~2x faster here).
        flat = itertools.chain.from_iterable(pairs)
        try:
            arr = np.fromiter(
                flat, dtype=np.int64, count=2 * len(pairs)
            ).reshape(-1, 2)
        except (OverflowError, ValueError, TypeError):
            return self.batch_payloads_perkey(algorithm, pairs)
        if next(flat, None) is not None:
            # Ragged input: let the scalar path raise its usual error.
            return self.batch_payloads_perkey(algorithm, pairs)
        self_loops = arr[:, 0] == arr[:, 1]
        if self_loops.any():
            # Same contract as link_key() on the per-key path.
            raise ValueError(
                f"self-loop link at AS{int(arr[int(np.argmax(self_loops)), 0])}"
            )
        lo = np.minimum(arr[:, 0], arr[:, 1])
        hi = np.maximum(arr[:, 0], arr[:, 1])
        valid = (lo >= 0) & (hi <= 0xFFFFFFFF)
        packed = (
            np.where(valid, lo, 0).astype(np.uint64) << np.uint64(32)
        ) | np.where(valid, hi, 0).astype(np.uint64)
        pack, order = self._link_pack()
        if len(pack):
            pos = np.searchsorted(pack, packed)
            pos_safe = np.minimum(pos, len(pack) - 1)
            found = valid & (pack[pos_safe] == packed)
            indices = order[pos_safe]
        else:
            found = np.zeros(len(arr), dtype=bool)
            indices = np.zeros(len(arr), dtype=np.intp)
        # Plain-int lists beat per-element numpy scalar access in the
        # assembly comprehension.
        found_list = found.tolist()
        index_list = indices.tolist()
        unknown = self.unknown_record
        results = [
            records[index] if ok else unknown(algorithm, pair[0], pair[1])
            for ok, index, pair in zip(found_list, index_list, pairs)
        ]
        return results, len(results) - int(np.count_nonzero(found))

    def batch_payloads_perkey(
        self, algorithm: str, pairs: Sequence[Sequence[int]]
    ) -> Tuple[List[Dict[str, Any]], int]:
        """The original per-key dict walk (equivalence oracle + bench
        baseline for :meth:`batch_payloads`)."""
        results: List[Dict[str, Any]] = []
        n_unknown = 0
        for a, b in pairs:
            record = self.link_payload(algorithm, a, b)
            if record is None:
                n_unknown += 1
                record = self.unknown_record(algorithm, a, b)
            else:
                record["visible"] = True
            results.append(record)
        return results, n_unknown

    def neighbors_payload(self, asn: int) -> Optional[Dict[str, Any]]:
        neighbors = self.adjacency.get(asn)
        if neighbors is None:
            return None
        corpus = self.scenario.corpus
        return {
            "asn": asn,
            "neighbors": neighbors,
            "degree": len(neighbors),
            "transit_degree": corpus.transit_degree(asn),
        }

    # ------------------------------------------------------------------
    # summary payloads (cached per scenario by the app layer)
    # ------------------------------------------------------------------
    def scenario_payload(self, scenario_id: str) -> Dict[str, Any]:
        scenario = self.scenario
        return {
            "scenario": scenario_id,
            "seed": scenario.config.seed,
            "n_ases": scenario.config.topology.n_ases,
            "snapshot": scenario.config.snapshot,
            "stats": {
                **scenario.corpus.stats(),
                "n_inferred_links": len(self.links),
                "n_validated_links": len(scenario.validation),
            },
            "algorithms_indexed": sorted(self._rels),
        }


def casestudy_payload(result: CaseStudyResult) -> Dict[str, Any]:
    """The §6.1 case-study summary as served by ``GET /v1/casestudy``."""
    return {
        "n_wrong_p2p": result.n_wrong,
        "focus_member": result.focus_member,
        "focus_share": round(result.focus_share, 6),
        "n_targets": len(result.targets),
        "n_partial_transit_confirmed": result.n_partial_transit_confirmed,
        "n_stale_validation": result.n_stale_validation,
        "n_clique_triplet_targets": sum(
            1 for target in result.targets if target.has_clique_triplet
        ),
    }


def corpus_stats_payload(corpus: "PathCorpus") -> Dict[str, Any]:
    """Corpus counters, intern-table sizes, and memory footprint.

    One serialisation shared by ``repro corpus stats``, the substrate
    benchmarks' ``BENCH_substrate.json``, and service consumers — so a
    corpus is always described by the same JSON shape.
    """
    payload: Dict[str, Any] = {
        "stats": corpus.stats(),
        "memory": corpus.memory_report(),
    }
    index = corpus.columnar_index()
    if index is not None:
        payload["intern_tables"] = {
            "n_links": index.n_links,
            "n_ases": index.n_ases,
            "n_triplets": index.n_triplets,
            "n_link_vp_pairs": index.n_link_vp_pairs,
        }
    else:
        payload["intern_tables"] = {}
    return payload
