"""HTTP query service for scenarios, relationships, and bias reports.

The paper argues that validation bias should be inspectable per link
and per class; this package makes it inspectable *on demand* — the way
CAIDA serves its AS-relationship datasets — instead of requiring every
consumer to import Python and rebuild a scenario in-process.

The subsystem is stdlib-only (``asyncio`` + hand-rolled HTTP/1.1 over
:func:`asyncio.start_server`, JSON bodies) and splits into:

* :mod:`repro.service.http` — request framing, JSON responses, and the
  structured :class:`~repro.service.http.ApiError` every handler speaks;
* :mod:`repro.service.pool` — :class:`~repro.service.pool.ScenarioPool`,
  an LRU of built :class:`~repro.scenario.Scenario` objects keyed by
  canonical config fingerprint, with single-flight builds that run in an
  executor so the event loop keeps serving while propagation crunches;
* :mod:`repro.service.query` — the O(1) per-scenario indexes (adjacency,
  link→relationship per algorithm, link→validation, link→classes) behind
  the point and batch endpoints;
* :mod:`repro.service.app` — :class:`~repro.service.app.ReproService`,
  the routed application plus ``/healthz`` and ``/metrics``;
* :mod:`repro.service.client` — the small blocking
  :class:`~repro.service.client.ServiceClient` used by tests, examples,
  and scripts;
* :mod:`repro.service.supervisor` — the pre-fork
  :class:`~repro.service.supervisor.Supervisor` behind
  ``repro serve --serve-workers N`` (SO_REUSEPORT fan-out, crash
  restarts with backoff, signal-propagated drain);
* :mod:`repro.service.loadgen` — the deterministic closed-loop load
  generator behind ``repro loadgen`` and ``BENCH_service.json``.

Run it from the CLI (``repro serve --port 8787``) or embed it::

    from repro.service import ReproService, ServiceClient, serve_in_thread

    with serve_in_thread(ReproService(pool_size=2)) as service:
        client = ServiceClient(port=service.port)
        client.build_scenario(preset="small", seed=7)
        print(client.rel("asrank", 11, 42))
"""

from repro.service.app import ReproService, serve_in_thread
from repro.service.client import ServiceClient, ServiceError
from repro.service.http import ApiError
from repro.service.loadgen import LoadgenResult, prepare_plan, run_loadgen
from repro.service.pool import ScenarioPool
from repro.service.query import ScenarioView
from repro.service.supervisor import Supervisor

__all__ = [
    "ApiError",
    "LoadgenResult",
    "ReproService",
    "ScenarioPool",
    "ScenarioView",
    "ServiceClient",
    "ServiceError",
    "Supervisor",
    "prepare_plan",
    "run_loadgen",
    "serve_in_thread",
]
