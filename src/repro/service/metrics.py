"""Service observability: request counters, latency histogram, gauges.

Everything here is plain in-process counting — no third-party metrics
client — rendered as one JSON document by ``GET /metrics``.  The shape
is stable enough for scripts (and the test suite) to assert on:

* ``requests``: total count plus per-route ``{count, errors}``;
* ``latency_ms``: fixed-bucket histogram over all handled requests;
* ``in_flight``: requests currently inside a handler;
* ``pool``: hits/misses/evictions/builds/coalesced from the
  :class:`~repro.service.pool.ScenarioPool` (builds are what the
  "no per-request re-inference" acceptance check watches);
* ``indexes_built``: query indexes / cached reports computed so far.

All mutation happens on the event-loop thread, so bare ints are safe.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional, Tuple

#: Upper bucket bounds in milliseconds (the last bucket is +inf).
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0, 5000.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (cumulative, Prometheus-style)."""

    def __init__(self, bounds: Tuple[float, ...] = LATENCY_BUCKETS_MS):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum_ms = 0.0
        self.max_ms = 0.0

    def observe(self, elapsed_ms: float) -> None:
        self.total += 1
        self.sum_ms += elapsed_ms
        self.max_ms = max(self.max_ms, elapsed_ms)
        for index, bound in enumerate(self.bounds):
            if elapsed_ms <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def as_dict(self) -> Dict[str, Any]:
        buckets = {
            f"le_{bound:g}": sum(self.counts[: index + 1])
            for index, bound in enumerate(self.bounds)
        }
        buckets["le_inf"] = self.total
        return {
            "buckets": buckets,
            "count": self.total,
            "sum_ms": round(self.sum_ms, 3),
            "max_ms": round(self.max_ms, 3),
        }


class ServiceMetrics:
    """All counters the ops surface exposes, in one mutable object."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.requests_total = 0
        self.errors_total = 0
        self.in_flight = 0
        self.indexes_built = 0
        #: Position in a multi-worker deployment (0 when standalone);
        #: the supervisor sets this per fork so scraped histograms are
        #: attributable to a worker instead of silently conflated.
        self.worker_index = 0
        self.by_route: Dict[str, Dict[str, int]] = {}
        self.latency = LatencyHistogram()

    def observe(self, route: str, status: int, elapsed_ms: float) -> None:
        """Account one finished request."""
        self.requests_total += 1
        record = self.by_route.setdefault(route, {"count": 0, "errors": 0})
        record["count"] += 1
        if status >= 400:
            record["errors"] += 1
            self.errors_total += 1
        self.latency.observe(elapsed_ms)

    def snapshot(self, pool: Optional[Any] = None) -> Dict[str, Any]:
        """The ``GET /metrics`` document."""
        out: Dict[str, Any] = {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "requests": {
                "total": self.requests_total,
                "errors": self.errors_total,
                "by_route": self.by_route,
            },
            "latency_ms": self.latency.as_dict(),
            "in_flight": self.in_flight,
            "indexes_built": self.indexes_built,
            # os.getpid() is read live (not cached at construction) so
            # the label is correct even when the metrics object was
            # created before a pre-fork.
            "worker": {"index": self.worker_index, "pid": os.getpid()},
        }
        if pool is not None:
            out["pool"] = pool.stats()
        return out
