"""Looking-glass simulation (Adj-RIB-In queries).

§6.1 of the paper investigates the Cogent case by querying *Cogent's
looking glass*: the routes Cogent **received** from the ASes on the
suspicious links all carried community 174:990 ("do not export to
peers"), which is invisible from public route collectors because Cogent
strips it before redistributing to customers and never exports those
routes to peers at all.

:class:`LookingGlass` reproduces that investigation surface: it
reconstructs, for a target AS ``X`` and neighbour ``Y``, the routes
``X`` holds in its Adj-RIB-In for the session with ``Y`` — including
action communities that no collector ever sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.bgp.communities import Community, CommunityRegistry, Meaning
from repro.bgp.policy import AdjacencyIndex, RouteClass
from repro.bgp.propagation import compute_route_tree
from repro.topology.generator import Topology
from repro.topology.graph import RelType

_CLASS_TO_MEANING = {
    RouteClass.CUSTOMER: Meaning.LEARNED_FROM_CUSTOMER,
    RouteClass.PEER: Meaning.LEARNED_FROM_PEER,
    RouteClass.PROVIDER: Meaning.LEARNED_FROM_PROVIDER,
}


@dataclass(frozen=True)
class ReceivedRoute:
    """One Adj-RIB-In entry at the queried AS."""

    origin: int
    #: AS path as received: the announcing neighbour first, origin last.
    path: Tuple[int, ...]
    #: communities on the route as received, including action
    #: communities addressed to the queried AS.
    communities: Tuple[Community, ...]

    def has_community(self, community: Community) -> bool:
        return community in self.communities


class LookingGlass:
    """Query interface over one AS's received routes."""

    def __init__(self, topology: Topology, communities: CommunityRegistry) -> None:
        self.topology = topology
        self.communities = communities
        self.adjacency = AdjacencyIndex(topology.graph)

    def routes_received(self, asn: int, from_neighbor: int) -> List[ReceivedRoute]:
        """Routes ``asn`` received over its session with ``from_neighbor``.

        Only routes the neighbour's export policy permits on this
        session are returned: towards a peer or provider the neighbour
        exports its own and (unrestricted) customer routes; towards a
        customer it exports everything it uses.
        """
        graph = self.topology.graph
        if not graph.has_link(asn, from_neighbor):
            raise ValueError(f"AS{asn} and AS{from_neighbor} are not adjacent")
        link = graph.link(asn, from_neighbor)
        neighbor_exports_all = (
            link.rel is RelType.P2C and link.provider == from_neighbor
        )
        origins = self._exportable_origins(from_neighbor, neighbor_exports_all)
        received: List[ReceivedRoute] = []
        for origin in sorted(origins):
            entry = self._received_route(asn, from_neighbor, origin, link)
            if entry is not None:
                received.append(entry)
        return received

    def _exportable_origins(self, neighbor: int, exports_all: bool) -> Set[int]:
        """Origins the neighbour can offer on this session.

        When the neighbour is the session's provider it exports its full
        table; otherwise only itself plus its customer cone (export-all
        routes under Gao-Rexford).
        """
        if exports_all:
            return set(self.adjacency.asns)
        cone = self.topology.graph.customer_cone(neighbor)
        return {neighbor} | cone

    def _received_route(
        self, asn: int, neighbor: int, origin: int, link
    ) -> Optional[ReceivedRoute]:
        tree = compute_route_tree(self.adjacency, origin)
        if not tree.has_route(neighbor):
            return None
        if not self._neighbor_would_export(asn, neighbor, origin, tree, link):
            return None
        path = tree.path_from(neighbor)
        assert path is not None
        if asn in path:
            return None  # loop prevention: asn would reject its own ASN
        communities = self._communities_as_received(asn, neighbor, path, tree, link)
        return ReceivedRoute(origin=origin, path=path, communities=communities)

    def _neighbor_would_export(
        self, asn: int, neighbor: int, origin: int, tree, link
    ) -> bool:
        """Export policy of the neighbour towards ``asn``."""
        if link.rel is RelType.P2C and link.provider == neighbor:
            # Neighbour is the provider: exports everything it uses.
            return True
        pref = tree.pref[neighbor]
        if pref is RouteClass.SELF:
            return True
        if pref is RouteClass.CUSTOMER and not tree.restricted.get(neighbor, False):
            return True
        return False

    def _communities_as_received(
        self, asn: int, neighbor: int, path: Tuple[int, ...], tree, link
    ) -> Tuple[Community, ...]:
        """Tags present when the route lands in ``asn``'s Adj-RIB-In."""
        tags: List[Community] = []
        # Informational ingress tags along the path, subject to the same
        # stripping rule collectors face — except here nothing between
        # the neighbour and us can strip (it is a direct session), so the
        # neighbour's own tag is always present.
        for i in range(len(path) - 1):
            tagger = path[i]
            meaning = _CLASS_TO_MEANING.get(tree.pref[tagger])
            if meaning is None:
                continue
            tags.append(self.communities.codebook(tagger).encode(meaning))
            # Only the announcing neighbour's own tags are guaranteed;
            # deeper tags depend on intermediate ASes, which we include
            # optimistically (a looking glass shows what survived).
        # The partial-transit action community: attached by the customer
        # on its announcements to this specific provider.
        if (
            link.rel is RelType.P2C
            and link.partial_transit
            and link.provider == asn
            and link.customer == neighbor
        ):
            provider_book = self.communities.codebook(asn)
            tags.append(provider_book.encode(Meaning.NO_EXPORT_TO_PEERS))
        return tuple(tags)

    def find_no_export_sessions(self, asn: int) -> List[int]:
        """Neighbours whose announcements to ``asn`` carry ``asn``'s
        do-not-export-to-peers community — the §6.1 smoking gun."""
        graph = self.topology.graph
        marker = self.communities.codebook(asn).encode(Meaning.NO_EXPORT_TO_PEERS)
        flagged = []
        for neighbor in sorted(graph.neighbors_of(asn)):
            link = graph.link(asn, neighbor)
            if (
                link.rel is RelType.P2C
                and link.partial_transit
                and link.provider == asn
            ):
                routes = self.routes_received(asn, neighbor)
                if any(route.has_community(marker) for route in routes):
                    flagged.append(neighbor)
        return flagged
