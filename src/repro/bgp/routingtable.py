"""Per-AS routing tables (Loc-RIB view) and classic text rendering.

The propagation layer computes best routes *per origin*; operators and
the §6.1-style investigations think *per router*: "what does AS X's
table look like?".  :class:`RoutingTable` assembles X's Loc-RIB by
sweeping every origin's route tree, and renders it in the familiar
``show ip bgp`` shape (one line per route, next hop, AS path, the
route class in place of communities/local-pref details).

This is an analysis/debugging surface — inference never consumes it —
but it makes simulator output directly comparable to what an operator
pastes into a mailing-list thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.bgp.policy import AdjacencyIndex, RouteClass
from repro.bgp.propagation import compute_origin_routes
from repro.topology.graph import ASGraph


@dataclass(frozen=True)
class RibEntry:
    """One best route in an AS's Loc-RIB."""

    origin: int
    next_hop: Optional[int]  # None when the origin is the AS itself
    path: Tuple[int, ...]    # from this AS to the origin, inclusive
    route_class: RouteClass

    @property
    def path_length(self) -> int:
        """AS-path length in hops (0 for the AS's own routes)."""
        return len(self.path) - 1


class RoutingTable:
    """The Loc-RIB of one AS, assembled from per-origin route trees."""

    def __init__(self, asn: int, entries: Dict[int, RibEntry]) -> None:
        self.asn = asn
        self._entries = entries

    @classmethod
    def compute(cls, graph: ASGraph, asn: int) -> "RoutingTable":
        """Sweep every origin's decision process for this AS.

        The adjacency index — and, under the vectorized engine, the
        CSR propagation plane — is built exactly once and reused for
        the whole origin sweep; only the per-origin route columns are
        recomputed.  Cost is still one propagation per origin — fine
        for inspecting a few ASes, not meant for bulk use (collectors
        stream instead).
        """
        if asn not in graph:
            raise KeyError(f"AS{asn} not in graph")
        adjacency = AdjacencyIndex(graph)
        entries: Dict[int, RibEntry] = {}
        for origin in adjacency.asns:
            routes = compute_origin_routes(adjacency, origin)
            if not routes.has_route(asn):
                continue
            path = routes.path_from(asn)
            assert path is not None
            next_hop = path[1] if len(path) > 1 else None
            entries[origin] = RibEntry(
                origin=origin,
                next_hop=next_hop,
                path=path,
                route_class=routes.pref[asn],
            )
        return cls(asn=asn, entries=entries)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, origin: int) -> bool:
        return origin in self._entries

    def lookup(self, origin: int) -> Optional[RibEntry]:
        return self._entries.get(origin)

    def entries(self) -> Iterator[RibEntry]:
        for origin in sorted(self._entries):
            yield self._entries[origin]

    def routes_via(self, next_hop: int) -> List[RibEntry]:
        """All best routes using the given neighbour."""
        return [e for e in self.entries() if e.next_hop == next_hop]

    def class_counts(self) -> Dict[RouteClass, int]:
        counts: Dict[RouteClass, int] = {cls: 0 for cls in RouteClass}
        for entry in self._entries.values():
            counts[entry.route_class] += 1
        return counts

    def unreachable(self, graph: ASGraph) -> List[int]:
        """Origins with no route — e.g. partial-transit islands."""
        return sorted(set(graph.asns()) - set(self._entries))

    # ------------------------------------------------------------------
    def render(self, max_routes: Optional[int] = None) -> str:
        """``show ip bgp``-flavoured text output."""
        lines = [
            f"AS{self.asn} BGP table: {len(self)} best routes",
            f"{'Origin':>10s} {'NextHop':>10s} {'Class':>9s}  Path",
        ]
        for index, entry in enumerate(self.entries()):
            if max_routes is not None and index >= max_routes:
                lines.append(f"... ({len(self) - max_routes} more)")
                break
            next_hop = f"AS{entry.next_hop}" if entry.next_hop else "self"
            path = " ".join(str(asn) for asn in entry.path)
            lines.append(
                f"{'AS' + str(entry.origin):>10s} {next_hop:>10s} "
                f"{entry.route_class.name:>9s}  {path}"
            )
        return "\n".join(lines)
