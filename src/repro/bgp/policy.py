"""Routing policy: route classes, preference, and export rules.

The simulator implements the standard Gao-Rexford policy model:

* **Preference**: routes learned from customers are preferred over
  routes learned from peers, which are preferred over routes learned
  from providers; ties break on shorter AS path, then on lower
  next-hop ASN (deterministic).
* **Export**: routes learned from customers (and an AS's own routes)
  are exported to everyone; routes learned from peers or providers are
  exported to customers only.

Two refinements:

* **Partial transit** (§6.1 of the paper): when a customer attaches the
  provider's *do-not-export-to-peers* community, the provider treats the
  customer-learned route as customer-preferred but **peer-exported** —
  it reaches the provider's customers only.  This is exactly why no
  ``clique | Cogent | X`` triplet exists for such links.
* **Siblings**: S2S links are modelled as peering links for propagation
  purposes (preference slot between customer and provider, export to
  customers only).  Real sibling route sharing is richer, but sibling
  links are excluded from validation anyway (§4.2), so only their
  existence — not their exact propagation — matters for the analysis.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Set, Tuple

from repro.topology.graph import ASGraph, RelType


class RouteClass(enum.IntEnum):
    """How an AS learned a route; lower is more preferred."""

    SELF = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


def exports_to_non_customers(route_class: RouteClass, restricted: bool) -> bool:
    """Gao-Rexford export rule for peer/provider-facing sessions.

    ``restricted`` marks customer routes received over a partial-transit
    link: preference-wise they are customer routes, export-wise they
    behave like peer routes.
    """
    if restricted:
        return False
    return route_class in (RouteClass.SELF, RouteClass.CUSTOMER)


class AdjacencyIndex:
    """Flat adjacency lists extracted once from an :class:`ASGraph`.

    Propagation runs per origin over these plain dict/list structures —
    the graph object itself is too pointer-chasing-heavy for the inner
    loop.  Sibling links are folded into the peer lists (see module
    docstring); partial-transit links are kept as a set of
    ``(provider, customer)`` pairs.
    """

    def __init__(
        self,
        graph: ASGraph,
        exclude: Optional[Set[Tuple[int, int]]] = None,
    ) -> None:
        """``exclude`` removes the given (canonical-key) links from the
        index — used to simulate routing churn (link failures)."""
        asns = graph.asns()
        self.asns: List[int] = asns
        self.providers: Dict[int, List[int]] = {a: [] for a in asns}
        self.customers: Dict[int, List[int]] = {a: [] for a in asns}
        self.peers: Dict[int, List[int]] = {a: [] for a in asns}
        self.partial: Set[Tuple[int, int]] = set()
        exclude = exclude or set()
        for link in graph.links():
            if link.key in exclude:
                continue
            if link.rel is RelType.P2C:
                self.customers[link.provider].append(link.customer)
                self.providers[link.customer].append(link.provider)
                if link.partial_transit:
                    self.partial.add((link.provider, link.customer))
            else:  # P2P and S2S both propagate as peering
                self.peers[link.provider].append(link.customer)
                self.peers[link.customer].append(link.provider)
        # Deterministic neighbour order makes tie-breaking reproducible.
        for table in (self.providers, self.customers, self.peers):
            for neighbor_list in table.values():
                neighbor_list.sort()

    def __getstate__(self) -> Dict[str, object]:
        """Pickle only the source-of-truth tables.

        Derived caches (neighbour sets, the propagation plane) are
        rebuilt on demand in the receiving process — shipping them to
        workers would only inflate the initializer payload.
        """
        state = dict(self.__dict__)
        for key in ("_cust_cache", "_peer_cache", "_prov_cache", "_plane_cache"):
            state.pop(key, None)
        return state

    def route_class(self, receiver: int, sender: int) -> RouteClass:
        """The class of a route ``receiver`` learns from ``sender``."""
        if sender in self._customers_set(receiver):
            return RouteClass.CUSTOMER
        if sender in self._peers_set(receiver):
            return RouteClass.PEER
        if sender in self._providers_set(receiver):
            return RouteClass.PROVIDER
        raise ValueError(f"AS{sender} is not a neighbor of AS{receiver}")

    # Cached set views for membership tests --------------------------------
    def _customers_set(self, asn: int) -> Set[int]:
        cache = getattr(self, "_cust_cache", None)
        if cache is None:
            cache = {a: set(v) for a, v in self.customers.items()}
            self._cust_cache = cache
        return cache.get(asn, set())

    def _peers_set(self, asn: int) -> Set[int]:
        cache = getattr(self, "_peer_cache", None)
        if cache is None:
            cache = {a: set(v) for a, v in self.peers.items()}
            self._peer_cache = cache
        return cache.get(asn, set())

    def _providers_set(self, asn: int) -> Set[int]:
        cache = getattr(self, "_prov_cache", None)
        if cache is None:
            cache = {a: set(v) for a, v in self.providers.items()}
            self._prov_cache = cache
        return cache.get(asn, set())
