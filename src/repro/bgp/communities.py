"""BGP communities: values, per-AS codebooks, and the ambiguity problem.

A BGP community is a colon-separated pair ``asn:value`` (RFC 1997).  The
meaning of a value is private to the AS that defines it, which creates
the **ambiguity** the paper's §3.2 discusses: 3356:666 is a blackhole
request to most of the Internet but tags *peering routes* inside
AS3356's own scheme.

The simulator distinguishes two community kinds:

* **informational** communities: an AS tags routes at ingress with the
  relationship of the neighbour it learned them from ("learned from
  customer/peer/provider").  These are the raw material of the
  community-based validation data (Luckie et al.'s source (iii)).
* **action** communities: requests attached by a neighbour, of which the
  only one the paper needs is the *do-not-export-to-peers* request that
  implements partial transit (Cogent's 174:990).

Each AS owns a :class:`CommunityCodebook` mapping values to meanings.
Codebooks are drawn from a handful of popular layouts so that the same
value legitimately means different things at different ASes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

#: A concrete community on a route: ``(asn, value)``.
Community = Tuple[int, int]


class Meaning(enum.Enum):
    """What a community value means inside one AS's codebook."""

    LEARNED_FROM_CUSTOMER = "customer"
    LEARNED_FROM_PEER = "peer"
    LEARNED_FROM_PROVIDER = "provider"
    BLACKHOLE = "blackhole"
    NO_EXPORT_TO_PEERS = "no_export_to_peers"


#: Relationship-tagging meanings, i.e. the ones usable for validation.
RELATIONSHIP_MEANINGS = (
    Meaning.LEARNED_FROM_CUSTOMER,
    Meaning.LEARNED_FROM_PEER,
    Meaning.LEARNED_FROM_PROVIDER,
)

#: Popular codebook layouts (value per meaning).  Several real operators
#: use schemes like these; overlap between layouts is intentional — it
#: is precisely what makes communities ambiguous across ASes.
_CODEBOOK_LAYOUTS: Tuple[Dict[Meaning, int], ...] = (
    {
        Meaning.LEARNED_FROM_CUSTOMER: 100,
        Meaning.LEARNED_FROM_PEER: 200,
        Meaning.LEARNED_FROM_PROVIDER: 300,
        Meaning.BLACKHOLE: 666,
        Meaning.NO_EXPORT_TO_PEERS: 990,
    },
    {
        Meaning.LEARNED_FROM_CUSTOMER: 1000,
        Meaning.LEARNED_FROM_PEER: 2000,
        Meaning.LEARNED_FROM_PROVIDER: 3000,
        Meaning.BLACKHOLE: 9999,
        Meaning.NO_EXPORT_TO_PEERS: 2500,
    },
    {
        Meaning.LEARNED_FROM_CUSTOMER: 3,
        Meaning.LEARNED_FROM_PEER: 2,
        Meaning.LEARNED_FROM_PROVIDER: 1,
        Meaning.BLACKHOLE: 666,
        Meaning.NO_EXPORT_TO_PEERS: 50,
    },
    {
        # The Lumen-style scheme of the paper's example: 666 tags
        # *peering* routes rather than requesting a blackhole.
        Meaning.LEARNED_FROM_CUSTOMER: 500,
        Meaning.LEARNED_FROM_PEER: 666,
        Meaning.LEARNED_FROM_PROVIDER: 700,
        Meaning.BLACKHOLE: 911,
        Meaning.NO_EXPORT_TO_PEERS: 70,
    },
)


@dataclass(frozen=True)
class CommunityCodebook:
    """One AS's community scheme."""

    asn: int
    values: Dict[Meaning, int]

    def encode(self, meaning: Meaning) -> Community:
        """The concrete community this AS uses for ``meaning``."""
        return (self.asn, self.values[meaning])

    def decode(self, community: Community) -> Optional[Meaning]:
        """Decode a community *under this AS's scheme*.

        Returns ``None`` when the community belongs to another AS or
        uses an unknown value.  Decoding a foreign community with the
        wrong codebook is exactly the mistake the ambiguity discussion
        warns about; the registry below guards against it.
        """
        asn, value = community
        if asn != self.asn:
            return None
        for meaning, known_value in self.values.items():
            if known_value == value:
                return meaning
        return None

    def relationship_value_set(self) -> Dict[int, Meaning]:
        """value -> meaning for the relationship-tagging subset."""
        return {
            self.values[m]: m for m in RELATIONSHIP_MEANINGS if m in self.values
        }


class CommunityRegistry:
    """All codebooks of a scenario.

    Every AS *has* a codebook (it tags routes internally); whether the
    codebook is *publicly documented* is a separate fact owned by the
    validation layer — scraping can only decode communities of
    documenting ASes.
    """

    def __init__(self) -> None:
        self._codebooks: Dict[int, CommunityCodebook] = {}

    @classmethod
    def build(
        cls,
        asns: Iterable[int],
        rng: np.random.Generator,
        pinned_layouts: Optional[Dict[int, int]] = None,
    ) -> "CommunityRegistry":
        """Assign every AS a codebook drawn from the popular layouts.

        ``pinned_layouts`` forces specific ASes onto a specific layout
        index — used to give the Cogent-like AS the classic scheme so
        its do-not-export community is literally ``174:990``.
        """
        registry = cls()
        pinned_layouts = pinned_layouts or {}
        for asn in asns:
            if asn in pinned_layouts:
                layout = _CODEBOOK_LAYOUTS[pinned_layouts[asn]]
            else:
                layout = _CODEBOOK_LAYOUTS[
                    int(rng.integers(0, len(_CODEBOOK_LAYOUTS)))
                ]
            registry.add(CommunityCodebook(asn=asn, values=dict(layout)))
        return registry

    def add(self, codebook: CommunityCodebook) -> None:
        if codebook.asn in self._codebooks:
            raise ValueError(f"codebook for AS{codebook.asn} already present")
        self._codebooks[codebook.asn] = codebook

    def __contains__(self, asn: int) -> bool:
        return asn in self._codebooks

    def __len__(self) -> int:
        return len(self._codebooks)

    def codebook(self, asn: int) -> CommunityCodebook:
        return self._codebooks[asn]

    def decode(self, community: Community) -> Optional[Meaning]:
        """Decode a community with its owner's codebook (unambiguous)."""
        owner = community[0]
        codebook = self._codebooks.get(owner)
        if codebook is None:
            return None
        return codebook.decode(community)

    def ambiguous_values(self) -> Dict[int, List[Meaning]]:
        """Community *values* that mean different things to different
        ASes — a diagnostic for the §3.2 ambiguity discussion."""
        seen: Dict[int, set] = {}
        for codebook in self._codebooks.values():
            for meaning, value in codebook.values.items():
                seen.setdefault(value, set()).add(meaning)
        return {
            value: sorted(meanings, key=lambda m: m.value)
            for value, meanings in seen.items()
            if len(meanings) > 1
        }
