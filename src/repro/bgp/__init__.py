"""BGP substrate (system S4 of DESIGN.md): policies, propagation,
communities, route collection, and the looking glass."""

from repro.bgp.communities import (
    Community,
    CommunityCodebook,
    CommunityRegistry,
    Meaning,
    RELATIONSHIP_MEANINGS,
)
from repro.bgp.collectors import (
    RouteCollector,
    VantagePoint,
    assign_community_strippers,
    collect_corpus,
    collect_rounds,
    measurement_setup,
    routes_for_origin,
    select_vantage_points,
    surviving_communities,
)
from repro.bgp.lookingglass import LookingGlass, ReceivedRoute
from repro.bgp.policy import AdjacencyIndex, RouteClass, exports_to_non_customers
from repro.bgp.propagation import RouteTree, compute_route_tree, iter_route_trees
from repro.bgp.routingtable import RibEntry, RoutingTable

__all__ = [
    "Community",
    "CommunityCodebook",
    "CommunityRegistry",
    "Meaning",
    "RELATIONSHIP_MEANINGS",
    "RouteCollector",
    "VantagePoint",
    "assign_community_strippers",
    "collect_corpus",
    "collect_rounds",
    "measurement_setup",
    "routes_for_origin",
    "select_vantage_points",
    "surviving_communities",
    "LookingGlass",
    "ReceivedRoute",
    "AdjacencyIndex",
    "RouteClass",
    "exports_to_non_customers",
    "RouteTree",
    "compute_route_tree",
    "iter_route_trees",
    "RibEntry",
    "RoutingTable",
]
