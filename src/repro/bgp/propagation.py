"""Per-origin best-route computation (the BGP decision process).

For every origin AS the simulator computes the best route of *every*
other AS under Gao-Rexford policies with the classic three-stage
algorithm (customer routes first, then peer routes, then provider
routes).  The result is a shortest-path-within-preference-class tree
whose parent pointers reconstruct the exact AS path any vantage point
would export to a route collector.

Stage structure
---------------
1. **Customer routes** (export-all): breadth-first search from the
   origin along customer-to-provider edges.  Routes crossing a
   partial-transit link stop propagating upwards — the provider keeps a
   customer-*preferred* route but exports it to customers only
   (``restricted`` in the tree), reproducing the Cogent mechanism.
2. **Peer routes**: every AS holding an export-all route offers it
   across each of its peering links; the receiver adopts the best offer
   unless it already holds a customer route.
3. **Provider routes**: every routed AS exports down to its customers;
   a bucket queue by path length keeps the within-class
   shortest-path/lowest-ASN tie-break exact.

All ties are broken deterministically: shorter path first, then lower
neighbour ASN — the same convention real implementations approximate
with router IDs, and the one ASRank-style inference assumes.

Engines
-------
Two implementations of the identical semantics:

* **vectorized** (default) — :class:`PropagationPlane` compiles the
  :class:`~repro.bgp.policy.AdjacencyIndex` once into CSR adjacency
  arrays (provider/customer/peer neighbour lists plus a partial-transit
  edge mask) and runs the three stages as numpy frontier passes; each
  stage's tie-break is a ``lexsort`` + first-occurrence reduce instead
  of a per-candidate dict race.  The result is a :class:`RouteArrays`
  (flat int32 ``pref``/``dist``/``parent`` plus a ``restricted`` mask)
  that collectors consume directly — no per-origin dict trees.
* **legacy** — the original per-origin dict BFS, retained verbatim as
  the differential baseline.  Select it with
  ``REPRO_PROPAGATION_ENGINE=legacy``; the harness in
  ``tests/bgp/test_propagation_differential.py`` proves the two
  engines agree AS-for-AS on randomized topologies and byte-for-byte
  on full scenario artifacts.

:func:`compute_route_tree` always returns the dict-backed
:class:`RouteTree` compatibility view regardless of engine;
:func:`compute_origin_routes` returns whichever native representation
the active engine produces (both satisfy the same read protocol:
``has_route`` / ``path_from`` / ``pref[asn]`` / ``origin``).

Adversarial (joint two-source) propagation
------------------------------------------
:func:`compute_attack_routes` runs the same three stages for a
*contested* prefix: the legitimate origin is seeded normally while an
attack source pre-claims a route of forged length ``claim_dist`` and
exports it like a customer route (the behaviour of both hijacks and
RFC 7908 route leaks).  Every adopted route carries a provenance bit
(``src``: 0 = legitimate, 1 = attack) propagated along parent
pointers, and a per-AS ``blocked`` mask — security-policy deployments
plus AS-path loop detection — drops attack-source offers in all three
stages while leaving legitimate offers untouched.  Both engines
implement the joint pass; the adversarial differential suite
(``tests/adversarial/``) proves they agree byte-for-byte on polluted
corpora.  With no attack the passes are bit-identical to the honest
code path.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from repro.bgp.policy import AdjacencyIndex, RouteClass

#: Sentinel distance for "no route".
_NO_ROUTE = -1

#: Environment variable selecting the propagation engine.
ENGINE_ENV = "REPRO_PROPAGATION_ENGINE"

_ENGINES = ("vectorized", "legacy")

_SELF = np.int32(int(RouteClass.SELF))
_CUSTOMER = np.int32(int(RouteClass.CUSTOMER))
_PEER = np.int32(int(RouteClass.PEER))
_PROVIDER = np.int32(int(RouteClass.PROVIDER))


def propagation_engine() -> str:
    """The active engine name (``vectorized`` unless overridden)."""
    engine = os.environ.get(ENGINE_ENV) or "vectorized"
    if engine not in _ENGINES:
        raise ValueError(
            f"{ENGINE_ENV}={engine!r}: expected one of {_ENGINES}"
        )
    return engine


@dataclass
class RouteTree:
    """Best routes of every AS towards one origin.

    ``parent[asn]`` is the next hop towards the origin (``None`` at the
    origin itself); ``pref``/``dist`` hold the route class and AS-path
    length; ``restricted`` flags customer routes that arrived over a
    partial-transit link and therefore do not propagate to peers or
    providers.  ``src`` is only present for joint two-source (attack)
    propagation: 0 = route descends from the legitimate origin, 1 =
    from the attack source.
    """

    origin: int
    pref: Dict[int, RouteClass]
    dist: Dict[int, int]
    parent: Dict[int, Optional[int]]
    restricted: Dict[int, bool]
    src: Optional[Dict[int, int]] = None

    def has_route(self, asn: int) -> bool:
        return asn in self.pref

    def path_from(self, asn: int) -> Optional[Tuple[int, ...]]:
        """AS path from ``asn`` to the origin (inclusive), or ``None``.

        The first element is ``asn`` itself, the last is the origin —
        the order a collector would record after prepending the VP.
        """
        if asn not in self.pref:
            return None
        path: List[int] = [asn]
        current: Optional[int] = asn
        while True:
            current = self.parent[current]
            if current is None:
                break
            path.append(current)
            if len(path) > len(self.pref) + 1:
                raise RuntimeError("parent-pointer loop in route tree")
        return tuple(path)


# ---------------------------------------------------------------------------
# vectorized engine
# ---------------------------------------------------------------------------

def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """``np.concatenate([np.arange(s, s + c) ...])`` without the Python
    loop (the vectorized range-concatenation trick)."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    base = np.repeat(starts.astype(np.int64), counts)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    return base + np.arange(total, dtype=np.int64) - resets


def _first_occurrence(sorted_keys: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first element of each run of equal keys."""
    first = np.empty(len(sorted_keys), dtype=bool)
    first[0] = True
    first[1:] = sorted_keys[1:] != sorted_keys[:-1]
    return first


class PropagationPlane:
    """CSR compilation of an :class:`AdjacencyIndex` for array passes.

    AS ids are dense int32 indices into ``self.asns`` (ASNs sorted
    ascending), so *minimising over ids minimises over ASNs* — the
    lower-ASN tie-break of the decision process becomes a plain
    ``lexsort``/first-occurrence reduce.  Three CSR tables hold the
    directed neighbour lists (providers of, customers of, peers of);
    ``partial_up[j]`` flags the customer→provider edge
    ``prov_indices[j]`` whose P2C link is partial transit.

    Build once per adjacency (see :func:`plane_of`), propagate per
    origin with :meth:`propagate`.
    """

    def __init__(self, adj: AdjacencyIndex) -> None:
        asns = np.sort(np.asarray(adj.asns, dtype=np.int64))
        self.asns = asns
        self.n = len(asns)
        self.prov_indptr, self.prov_indices = self._csr(adj.providers, asns)
        self.cust_indptr, self.cust_indices = self._csr(adj.customers, asns)
        self.peer_indptr, self.peer_indices = self._csr(adj.peers, asns)
        partial_up = np.zeros(len(self.prov_indices), dtype=bool)
        for provider, customer in sorted(adj.partial):
            ci = self._id(customer)
            pi = self._id(provider)
            lo, hi = int(self.prov_indptr[ci]), int(self.prov_indptr[ci + 1])
            pos = lo + int(np.searchsorted(self.prov_indices[lo:hi], pi))
            if pos >= hi or int(self.prov_indices[pos]) != pi:
                raise ValueError(
                    f"partial-transit link ({provider}, {customer}) not in "
                    "the adjacency index"
                )
            partial_up[pos] = True
        self.partial_up = partial_up

    @staticmethod
    def _csr(
        table: Dict[int, List[int]], asns: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = len(asns)
        asn_list = asns.tolist()
        counts = np.fromiter(
            (len(table[a]) for a in asn_list), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        flat = np.fromiter(
            (x for a in asn_list for x in table[a]),
            dtype=np.int64,
            count=total,
        )
        # Neighbour lists are ASN-sorted, so the id lists stay sorted.
        indices = np.searchsorted(asns, flat).astype(np.int32)
        return indptr, indices

    # ------------------------------------------------------------------
    def _id(self, asn: int) -> int:
        """Dense id of ``asn`` (raises ``KeyError`` when unknown)."""
        pos = int(np.searchsorted(self.asns, asn))
        if pos >= self.n or int(self.asns[pos]) != asn:
            raise KeyError(f"AS{asn} not in plane")
        return pos

    def id_or_none(self, asn: int) -> Optional[int]:
        pos = int(np.searchsorted(self.asns, asn))
        if pos >= self.n or int(self.asns[pos]) != asn:
            return None
        return pos

    @staticmethod
    def _out_edges(
        indptr: np.ndarray, frontier: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(edge positions, repeated senders) for a frontier id array."""
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        positions = _concat_ranges(starts, counts)
        senders = np.repeat(frontier, counts)
        return positions, senders

    # ------------------------------------------------------------------
    def propagate(
        self,
        origin: int,
        attack: Optional[Tuple[int, int, np.ndarray]] = None,
    ) -> "RouteArrays":
        """Run the three-stage decision process for one origin.

        Pure array passes; the returned :class:`RouteArrays` holds the
        full per-AS ``pref``/``dist``/``parent``/``restricted`` columns.

        ``attack`` switches to the joint two-source pass for a contested
        prefix: ``(attacker_asn, claim_dist, blocked)`` pre-claims the
        attack source with an export-all route of forged length
        ``claim_dist`` and drops attack-source offers at every AS whose
        ``blocked`` flag (a bool column over plane ids) is set.  The
        ``src_arr`` provenance column of the result marks which source
        each route descends from.  With ``attack=None`` every pass is
        bit-identical to the honest single-source computation.
        """
        n = self.n
        o = self._id(origin)
        pref = np.full(n, _NO_ROUTE, dtype=np.int32)
        dist = np.zeros(n, dtype=np.int32)
        parent = np.full(n, -1, dtype=np.int32)
        restricted = np.zeros(n, dtype=bool)
        src: Optional[np.ndarray] = None
        blocked: Optional[np.ndarray] = None
        a = -1
        if attack is not None:
            attacker, claim_dist, blocked = attack
            a = self._id(attacker)
            if a == o:
                raise ValueError("attack source cannot be the origin")
            src = np.zeros(n, dtype=np.int8)
            src[a] = 1
            pref[a] = _SELF
            dist[a] = np.int32(claim_dist)
        pref[o] = _SELF

        # ---- stage 1: customer routes (frontier BFS upward) ----------
        # Level-bucketed BFS: ``pending[d]`` holds export-all holders
        # whose route length is ``d``.  The honest case degenerates to
        # the contiguous frontier walk; an attack source with a forged
        # claim length simply enters its bucket late.
        pending: Dict[int, List[np.ndarray]] = {
            0: [np.array([o], dtype=np.int32)]
        }
        if src is not None:
            pending.setdefault(int(dist[a]), []).append(
                np.array([a], dtype=np.int32)
            )
        level = 0
        while pending:
            if level not in pending:
                level = min(pending)
            frontier = np.concatenate(pending.pop(level))
            positions, senders = self._out_edges(self.prov_indptr, frontier)
            targets = self.prov_indices[positions]
            partial = self.partial_up[positions]
            keep = pref[targets] == _NO_ROUTE
            if src is not None:
                keep &= ~(blocked[targets] & (src[senders] == 1))
            targets, senders, partial = (
                targets[keep], senders[keep], partial[keep],
            )
            if targets.size:
                # Lowest child ASN wins each provider: sort by (target,
                # sender id) and take each target's first row — ids are
                # ASN-ordered, so min id is min ASN.
                order = np.lexsort((senders, targets))
                targets, senders, partial = (
                    targets[order], senders[order], partial[order],
                )
                first = _first_occurrence(targets)
                targets, senders, partial = (
                    targets[first], senders[first], partial[first],
                )
                pref[targets] = _CUSTOMER
                dist[targets] = level + 1
                parent[targets] = senders
                restricted[targets] = partial
                if src is not None:
                    src[targets] = src[senders]
                # Restricted holders keep the route but stop exporting
                # up.
                nxt = targets[~partial]
                if nxt.size:
                    pending.setdefault(level + 1, []).append(nxt)
            level += 1

        # ---- stage 2: peer routes (one offer pass) -------------------
        exporters = np.flatnonzero(
            (pref == _SELF) | ((pref == _CUSTOMER) & ~restricted)
        ).astype(np.int32)
        positions, senders = self._out_edges(self.peer_indptr, exporters)
        receivers = self.peer_indices[positions]
        keep = pref[receivers] == _NO_ROUTE
        if src is not None:
            keep &= ~(blocked[receivers] & (src[senders] == 1))
        receivers, senders = receivers[keep], senders[keep]
        if receivers.size:
            sender_dist = dist[senders]
            # Best offer per receiver: shortest sender path, then lowest
            # sender ASN.
            order = np.lexsort((senders, sender_dist, receivers))
            receivers, senders, sender_dist = (
                receivers[order], senders[order], sender_dist[order],
            )
            first = _first_occurrence(receivers)
            receivers, senders, sender_dist = (
                receivers[first], senders[first], sender_dist[first],
            )
            pref[receivers] = _PEER
            dist[receivers] = sender_dist + 1
            parent[receivers] = senders
            if src is not None:
                src[receivers] = src[senders]

        # ---- stage 3: provider routes (bucket-queue descent) ---------
        routed = np.flatnonzero(pref != _NO_ROUTE).astype(np.int32)
        if routed.size:
            order = np.argsort(dist[routed], kind="stable")
            routed = routed[order]
            routed_dist = dist[routed]
            max_level = int(routed_dist[-1])
            added: Dict[int, np.ndarray] = {}
            level = 0
            while level <= max_level:
                lo = int(np.searchsorted(routed_dist, level, side="left"))
                hi = int(np.searchsorted(routed_dist, level, side="right"))
                extra = added.pop(level, None)
                if hi > lo and extra is not None:
                    senders_now = np.concatenate((routed[lo:hi], extra))
                elif hi > lo:
                    senders_now = routed[lo:hi]
                else:
                    senders_now = extra
                if senders_now is not None and senders_now.size:
                    positions, senders = self._out_edges(
                        self.cust_indptr, senders_now
                    )
                    customers = self.cust_indices[positions]
                    keep = pref[customers] == _NO_ROUTE
                    if src is not None:
                        keep &= ~(blocked[customers] & (src[senders] == 1))
                    customers, senders = customers[keep], senders[keep]
                    if customers.size:
                        order = np.lexsort((senders, customers))
                        customers, senders = customers[order], senders[order]
                        first = _first_occurrence(customers)
                        customers, senders = customers[first], senders[first]
                        pref[customers] = _PROVIDER
                        dist[customers] = level + 1
                        parent[customers] = senders
                        if src is not None:
                            src[customers] = src[senders]
                        added[level + 1] = customers
                        if level + 1 > max_level:
                            max_level = level + 1
                level += 1

        return RouteArrays(
            origin=origin,
            plane=self,
            pref_arr=pref,
            dist_arr=dist,
            parent_arr=parent,
            restricted_arr=restricted,
            src_arr=src,
        )


class _ClassView:
    """Read-only ``pref[asn] -> RouteClass`` view over the pref column.

    Mimics the legacy dict's mapping protocol where consumers use it:
    ``[]`` raises ``KeyError`` for unrouted or unknown ASes, ``in``
    tests route existence.
    """

    __slots__ = ("_routes",)

    def __init__(self, routes: "RouteArrays") -> None:
        self._routes = routes

    def __getitem__(self, asn: int) -> RouteClass:
        routes = self._routes
        i = routes.plane.id_or_none(asn)
        if i is None or routes.pref_arr[i] == _NO_ROUTE:
            raise KeyError(asn)
        return RouteClass(int(routes.pref_arr[i]))

    def __contains__(self, asn: int) -> bool:
        return self._routes.has_route(asn)


@dataclass
class RouteArrays:
    """Vectorized best routes of every AS towards one origin.

    The columnar counterpart of :class:`RouteTree`: ``pref_arr`` /
    ``dist_arr`` / ``parent_arr`` are int32 columns indexed by dense
    plane id (``pref_arr == -1`` means no route; ``parent_arr`` holds
    plane ids, ``-1`` at the origin), ``restricted_arr`` is the
    partial-transit mask.  The read protocol the collectors use
    (``has_route`` / ``path_from`` / ``pref[asn]`` / ``origin``) is
    identical to the dict tree, so :func:`routes_for_origin` accepts
    either representation.
    """

    origin: int
    plane: PropagationPlane
    pref_arr: np.ndarray
    dist_arr: np.ndarray
    parent_arr: np.ndarray
    restricted_arr: np.ndarray
    #: Provenance column for joint two-source (attack) propagation:
    #: 0 = legitimate origin, 1 = attack source.  ``None`` on honest
    #: single-source results.
    src_arr: Optional[np.ndarray] = None

    @property
    def pref(self) -> _ClassView:
        return _ClassView(self)

    def has_route(self, asn: int) -> bool:
        i = self.plane.id_or_none(asn)
        return i is not None and self.pref_arr[i] != _NO_ROUTE

    def routed_ids(self) -> np.ndarray:
        """Dense ids of every AS holding a route (ascending)."""
        return np.flatnonzero(self.pref_arr != _NO_ROUTE)

    def path_from(self, asn: int) -> Optional[Tuple[int, ...]]:
        """AS path from ``asn`` to the origin (inclusive), or ``None``."""
        i = self.plane.id_or_none(asn)
        if i is None or self.pref_arr[i] == _NO_ROUTE:
            return None
        asns = self.plane.asns
        parent = self.parent_arr
        path: List[int] = [int(asns[i])]
        current = i
        while True:
            current = int(parent[current])
            if current < 0:
                break
            path.append(int(asns[current]))
            if len(path) > self.plane.n + 1:
                raise RuntimeError("parent-pointer loop in route arrays")
        return tuple(path)

    def to_route_tree(self) -> RouteTree:
        """Materialise the dict-backed compatibility view.

        Routed ASes are emitted in ascending-ASN order (deterministic
        but not the legacy BFS-discovery order; no consumer observes
        the dict order, and the differential tests compare by value).
        """
        routed = self.routed_ids()
        asns = self.plane.asns[routed].tolist()
        prefs = self.pref_arr[routed].tolist()
        dists = self.dist_arr[routed].tolist()
        parents = self.parent_arr[routed].tolist()
        restr = self.restricted_arr[routed].tolist()
        plane_asns = self.plane.asns
        pref: Dict[int, RouteClass] = {}
        dist: Dict[int, int] = {}
        parent: Dict[int, Optional[int]] = {}
        restricted: Dict[int, bool] = {}
        for asn, p, d, par, r in zip(asns, prefs, dists, parents, restr):
            pref[asn] = RouteClass(p)
            dist[asn] = d
            parent[asn] = int(plane_asns[par]) if par >= 0 else None
            restricted[asn] = bool(r)
        src: Optional[Dict[int, int]] = None
        if self.src_arr is not None:
            src_values = self.src_arr[routed].tolist()
            src = dict(zip(asns, (int(s) for s in src_values)))
        return RouteTree(
            origin=self.origin,
            pref=pref,
            dist=dist,
            parent=parent,
            restricted=restricted,
            src=src,
        )


def plane_of(adj: AdjacencyIndex) -> PropagationPlane:
    """The (cached) propagation plane of an adjacency index.

    The plane is derived once and memoised on the adjacency object —
    the same idiom as the index's neighbour-set caches — so per-origin
    sweeps, `RoutingTable.compute`, and the parallel workers all share
    one build per adjacency.
    """
    plane = getattr(adj, "_plane_cache", None)
    if plane is None:
        plane = PropagationPlane(adj)
        adj._plane_cache = plane
    return plane


# ---------------------------------------------------------------------------
# legacy engine (differential baseline)
# ---------------------------------------------------------------------------

def _compute_route_tree_legacy(adj: AdjacencyIndex, origin: int) -> RouteTree:
    """The original per-origin dict BFS, kept as the reference engine."""
    pref: Dict[int, RouteClass] = {origin: RouteClass.SELF}
    dist: Dict[int, int] = {origin: 0}
    parent: Dict[int, Optional[int]] = {origin: None}
    restricted: Dict[int, bool] = {origin: False}

    providers = adj.providers
    customers = adj.customers
    peers = adj.peers
    partial = adj.partial

    # ---- stage 1: customer routes ------------------------------------
    # Level-synchronous BFS upward.  ``frontier`` holds ASes whose route
    # is export-all; restricted holders are recorded but not expanded.
    frontier: List[int] = [origin]
    level = 0
    while frontier:
        level += 1
        candidates: Dict[int, int] = {}
        for asn in frontier:
            for provider in providers[asn]:
                if provider in pref:
                    continue
                best = candidates.get(provider)
                if best is None or asn < best:
                    candidates[provider] = asn
        next_frontier: List[int] = []
        for provider, chosen_child in candidates.items():
            pref[provider] = RouteClass.CUSTOMER
            dist[provider] = level
            parent[provider] = chosen_child
            is_restricted = (provider, chosen_child) in partial
            restricted[provider] = is_restricted
            if not is_restricted:
                next_frontier.append(provider)
        frontier = next_frontier

    # ---- stage 2: peer routes ----------------------------------------
    # Offers come only from export-all holders (SELF or unrestricted
    # CUSTOMER routes).  Each receiver takes the best offer.
    offers: Dict[int, Tuple[int, int]] = {}  # receiver -> (dist, sender)
    for sender, sender_pref in pref.items():
        if sender_pref is RouteClass.CUSTOMER and restricted.get(sender):
            continue
        sender_dist = dist[sender]
        for receiver in peers[sender]:
            if receiver in pref:
                continue
            offer = offers.get(receiver)
            candidate = (sender_dist, sender)
            if offer is None or candidate < offer:
                offers[receiver] = candidate
    for receiver, (sender_dist, sender) in offers.items():
        pref[receiver] = RouteClass.PEER
        dist[receiver] = sender_dist + 1
        parent[receiver] = sender
        restricted[receiver] = False

    # ---- stage 3: provider routes ------------------------------------
    # Everyone with a route exports it to customers.  A bucket queue by
    # path length realises within-class shortest-path tie-breaking.
    buckets: Dict[int, List[int]] = {}
    for asn, asn_dist in dist.items():
        buckets.setdefault(asn_dist, []).append(asn)
    current_level = 0
    max_level = max(buckets) if buckets else 0
    while current_level <= max_level:
        senders = buckets.get(current_level)
        if senders:
            candidates = {}
            for sender in senders:
                for customer in customers[sender]:
                    if customer in pref:
                        continue
                    best = candidates.get(customer)
                    if best is None or sender < best:
                        candidates[customer] = sender
            for customer, sender in candidates.items():
                pref[customer] = RouteClass.PROVIDER
                dist[customer] = current_level + 1
                parent[customer] = sender
                restricted[customer] = False
                buckets.setdefault(current_level + 1, []).append(customer)
                if current_level + 1 > max_level:
                    max_level = current_level + 1
        current_level += 1

    return RouteTree(
        origin=origin, pref=pref, dist=dist, parent=parent, restricted=restricted
    )


def _compute_attack_tree_legacy(
    adj: AdjacencyIndex,
    origin: int,
    attacker: int,
    claim_dist: int,
    blocked: Set[int],
) -> RouteTree:
    """The dict mirror of the joint two-source pass (reference engine).

    Same stage structure and tie-breaks as the honest legacy engine;
    the attack source is pre-claimed with an export-all route of length
    ``claim_dist``, offers from attack-descended routes are dropped at
    ``blocked`` ASes, and the ``src`` column records provenance.
    """
    pref: Dict[int, RouteClass] = {origin: RouteClass.SELF}
    dist: Dict[int, int] = {origin: 0}
    parent: Dict[int, Optional[int]] = {origin: None}
    restricted: Dict[int, bool] = {origin: False}
    src: Dict[int, int] = {origin: 0}
    pref[attacker] = RouteClass.SELF
    dist[attacker] = claim_dist
    parent[attacker] = None
    restricted[attacker] = False
    src[attacker] = 1

    providers = adj.providers
    customers = adj.customers
    peers = adj.peers
    partial = adj.partial

    # ---- stage 1: customer routes ------------------------------------
    # Level-bucketed BFS upward; the attack source enters its bucket at
    # the forged claim length.
    pending: Dict[int, List[int]] = {0: [origin]}
    pending.setdefault(claim_dist, []).append(attacker)
    level = 0
    while pending:
        if level not in pending:
            level = min(pending)
        frontier = pending.pop(level)
        candidates: Dict[int, int] = {}
        for asn in frontier:
            from_attack = src[asn] == 1
            for provider in providers[asn]:
                if provider in pref:
                    continue
                if from_attack and provider in blocked:
                    continue
                best = candidates.get(provider)
                if best is None or asn < best:
                    candidates[provider] = asn
        for provider, chosen_child in candidates.items():
            pref[provider] = RouteClass.CUSTOMER
            dist[provider] = level + 1
            parent[provider] = chosen_child
            src[provider] = src[chosen_child]
            is_restricted = (provider, chosen_child) in partial
            restricted[provider] = is_restricted
            if not is_restricted:
                pending.setdefault(level + 1, []).append(provider)
        level += 1

    # ---- stage 2: peer routes ----------------------------------------
    offers: Dict[int, Tuple[int, int]] = {}  # receiver -> (dist, sender)
    for sender, sender_pref in pref.items():
        if sender_pref is RouteClass.CUSTOMER and restricted.get(sender):
            continue
        sender_dist = dist[sender]
        from_attack = src[sender] == 1
        for receiver in peers[sender]:
            if receiver in pref:
                continue
            if from_attack and receiver in blocked:
                continue
            offer = offers.get(receiver)
            candidate = (sender_dist, sender)
            if offer is None or candidate < offer:
                offers[receiver] = candidate
    for receiver, (sender_dist, sender) in offers.items():
        pref[receiver] = RouteClass.PEER
        dist[receiver] = sender_dist + 1
        parent[receiver] = sender
        restricted[receiver] = False
        src[receiver] = src[sender]

    # ---- stage 3: provider routes ------------------------------------
    buckets: Dict[int, List[int]] = {}
    for asn, asn_dist in dist.items():
        buckets.setdefault(asn_dist, []).append(asn)
    current_level = 0
    max_level = max(buckets) if buckets else 0
    while current_level <= max_level:
        senders = buckets.get(current_level)
        if senders:
            candidates = {}
            for sender in senders:
                from_attack = src[sender] == 1
                for customer in customers[sender]:
                    if customer in pref:
                        continue
                    if from_attack and customer in blocked:
                        continue
                    best = candidates.get(customer)
                    if best is None or sender < best:
                        candidates[customer] = sender
            for customer, sender in candidates.items():
                pref[customer] = RouteClass.PROVIDER
                dist[customer] = current_level + 1
                parent[customer] = sender
                restricted[customer] = False
                src[customer] = src[sender]
                buckets.setdefault(current_level + 1, []).append(customer)
                if current_level + 1 > max_level:
                    max_level = current_level + 1
        current_level += 1

    return RouteTree(
        origin=origin, pref=pref, dist=dist, parent=parent,
        restricted=restricted, src=src,
    )


# ---------------------------------------------------------------------------
# engine dispatch
# ---------------------------------------------------------------------------

#: Either native representation; both satisfy the collector protocol.
OriginRoutes = Union[RouteTree, RouteArrays]


def compute_origin_routes(adj: AdjacencyIndex, origin: int) -> OriginRoutes:
    """One origin's routes in the active engine's native representation.

    The hot-path entry point: the vectorized engine returns
    :class:`RouteArrays` (no dict materialisation), the legacy engine
    its :class:`RouteTree`.  Use :func:`compute_route_tree` when the
    dict view is required.
    """
    if propagation_engine() == "legacy":
        return _compute_route_tree_legacy(adj, origin)
    return plane_of(adj).propagate(origin)


def compute_attack_routes(
    adj: AdjacencyIndex,
    origin: int,
    attacker: int,
    claim_dist: int,
    blocked: Iterable[int] = (),
) -> OriginRoutes:
    """Joint two-source routes for a prefix contested by an attacker.

    The legitimate ``origin`` is seeded normally; ``attacker``
    pre-claims a route whose announced AS path has ``claim_dist``
    additional hops (0 for an origin hijack, 1 for a forged-origin
    hijack, the leaked route's real length for a route leak) and
    exports it to every neighbour like a customer route.  ``blocked``
    ASes — security-policy deployers that detect this event class plus
    the ASes already on the forged path suffix (BGP loop detection) —
    never adopt attack-source routes but keep participating in
    legitimate propagation.

    Dispatches on the active engine exactly like
    :func:`compute_origin_routes`; both engines produce identical
    routes (see ``tests/adversarial/test_engine_differential.py``).
    """
    if origin == attacker:
        raise ValueError("attack source cannot be the origin AS")
    if claim_dist < 0:
        raise ValueError(f"claim_dist must be >= 0, got {claim_dist}")
    if propagation_engine() == "legacy":
        return _compute_attack_tree_legacy(
            adj, origin, attacker, claim_dist, set(blocked)
        )
    plane = plane_of(adj)
    blocked_arr = np.zeros(plane.n, dtype=bool)
    for asn in sorted(blocked):
        i = plane.id_or_none(asn)
        if i is not None:
            blocked_arr[i] = True
    return plane.propagate(origin, attack=(attacker, claim_dist, blocked_arr))


def compute_route_tree(adj: AdjacencyIndex, origin: int) -> RouteTree:
    """Run the three-stage decision process for one origin.

    Always returns the dict-backed :class:`RouteTree` view; with the
    default vectorized engine the routes are computed as array passes
    and then materialised.
    """
    if propagation_engine() == "legacy":
        return _compute_route_tree_legacy(adj, origin)
    return plane_of(adj).propagate(origin).to_route_tree()


def iter_route_trees(
    adj: AdjacencyIndex,
    origins: Optional[Iterable[int]] = None,
    workers: int = 0,
) -> Iterable[RouteTree]:
    """Yield the route tree of every origin (all ASes by default).

    Trees are produced lazily so callers can extract vantage-point paths
    and drop each tree before the next one is built — the full set of
    trees would be quadratic in memory.  The propagation plane is built
    once for the whole sweep (see :func:`plane_of`).

    ``workers`` shards the per-origin fan-out across that many worker
    processes (see :class:`repro.pipeline.parallel.ParallelPropagator`);
    the yielded sequence is identical to the serial one — same trees,
    same origin order — because every tie-break is explicit and the
    parallel merge preserves submission order.  ``workers=0`` (default)
    stays fully in-process.
    """
    if workers:
        from repro.pipeline.parallel import ParallelPropagator

        propagator = ParallelPropagator(adj, workers=workers)
        yield from propagator.iter_route_trees(origins)
        return
    if origins is None:
        origins = adj.asns
    for origin in origins:
        yield compute_route_tree(adj, origin)
