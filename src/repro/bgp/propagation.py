"""Per-origin best-route computation (the BGP decision process).

For every origin AS the simulator computes the best route of *every*
other AS under Gao-Rexford policies with the classic three-stage
algorithm (customer routes first, then peer routes, then provider
routes).  The result is a shortest-path-within-preference-class tree
whose parent pointers reconstruct the exact AS path any vantage point
would export to a route collector.

Stage structure
---------------
1. **Customer routes** (export-all): breadth-first search from the
   origin along customer-to-provider edges.  Routes crossing a
   partial-transit link stop propagating upwards — the provider keeps a
   customer-*preferred* route but exports it to customers only
   (``restricted`` in the tree), reproducing the Cogent mechanism.
2. **Peer routes**: every AS holding an export-all route offers it
   across each of its peering links; the receiver adopts the best offer
   unless it already holds a customer route.
3. **Provider routes**: every routed AS exports down to its customers;
   a bucket queue by path length keeps the within-class
   shortest-path/lowest-ASN tie-break exact.

All ties are broken deterministically: shorter path first, then lower
neighbour ASN — the same convention real implementations approximate
with router IDs, and the one ASRank-style inference assumes.

Engines
-------
Two implementations of the identical semantics:

* **vectorized** (default) — :class:`PropagationPlane` compiles the
  :class:`~repro.bgp.policy.AdjacencyIndex` once into CSR adjacency
  arrays (provider/customer/peer neighbour lists plus a partial-transit
  edge mask) and runs the three stages as numpy frontier passes; each
  stage's tie-break is a ``lexsort`` + first-occurrence reduce instead
  of a per-candidate dict race.  The result is a :class:`RouteArrays`
  (flat int32 ``pref``/``dist``/``parent`` plus a ``restricted`` mask)
  that collectors consume directly — no per-origin dict trees.
* **legacy** — the original per-origin dict BFS, retained verbatim as
  the differential baseline.  Select it with
  ``REPRO_PROPAGATION_ENGINE=legacy``; the harness in
  ``tests/bgp/test_propagation_differential.py`` proves the two
  engines agree AS-for-AS on randomized topologies and byte-for-byte
  on full scenario artifacts.

:func:`compute_route_tree` always returns the dict-backed
:class:`RouteTree` compatibility view regardless of engine;
:func:`compute_origin_routes` returns whichever native representation
the active engine produces (both satisfy the same read protocol:
``has_route`` / ``path_from`` / ``pref[asn]`` / ``origin``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.bgp.policy import AdjacencyIndex, RouteClass

#: Sentinel distance for "no route".
_NO_ROUTE = -1

#: Environment variable selecting the propagation engine.
ENGINE_ENV = "REPRO_PROPAGATION_ENGINE"

_ENGINES = ("vectorized", "legacy")

_SELF = np.int32(int(RouteClass.SELF))
_CUSTOMER = np.int32(int(RouteClass.CUSTOMER))
_PEER = np.int32(int(RouteClass.PEER))
_PROVIDER = np.int32(int(RouteClass.PROVIDER))


def propagation_engine() -> str:
    """The active engine name (``vectorized`` unless overridden)."""
    engine = os.environ.get(ENGINE_ENV) or "vectorized"
    if engine not in _ENGINES:
        raise ValueError(
            f"{ENGINE_ENV}={engine!r}: expected one of {_ENGINES}"
        )
    return engine


@dataclass
class RouteTree:
    """Best routes of every AS towards one origin.

    ``parent[asn]`` is the next hop towards the origin (``None`` at the
    origin itself); ``pref``/``dist`` hold the route class and AS-path
    length; ``restricted`` flags customer routes that arrived over a
    partial-transit link and therefore do not propagate to peers or
    providers.
    """

    origin: int
    pref: Dict[int, RouteClass]
    dist: Dict[int, int]
    parent: Dict[int, Optional[int]]
    restricted: Dict[int, bool]

    def has_route(self, asn: int) -> bool:
        return asn in self.pref

    def path_from(self, asn: int) -> Optional[Tuple[int, ...]]:
        """AS path from ``asn`` to the origin (inclusive), or ``None``.

        The first element is ``asn`` itself, the last is the origin —
        the order a collector would record after prepending the VP.
        """
        if asn not in self.pref:
            return None
        path: List[int] = [asn]
        current: Optional[int] = asn
        while True:
            current = self.parent[current]
            if current is None:
                break
            path.append(current)
            if len(path) > len(self.pref) + 1:
                raise RuntimeError("parent-pointer loop in route tree")
        return tuple(path)


# ---------------------------------------------------------------------------
# vectorized engine
# ---------------------------------------------------------------------------

def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """``np.concatenate([np.arange(s, s + c) ...])`` without the Python
    loop (the vectorized range-concatenation trick)."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    base = np.repeat(starts.astype(np.int64), counts)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    return base + np.arange(total, dtype=np.int64) - resets


def _first_occurrence(sorted_keys: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first element of each run of equal keys."""
    first = np.empty(len(sorted_keys), dtype=bool)
    first[0] = True
    first[1:] = sorted_keys[1:] != sorted_keys[:-1]
    return first


class PropagationPlane:
    """CSR compilation of an :class:`AdjacencyIndex` for array passes.

    AS ids are dense int32 indices into ``self.asns`` (ASNs sorted
    ascending), so *minimising over ids minimises over ASNs* — the
    lower-ASN tie-break of the decision process becomes a plain
    ``lexsort``/first-occurrence reduce.  Three CSR tables hold the
    directed neighbour lists (providers of, customers of, peers of);
    ``partial_up[j]`` flags the customer→provider edge
    ``prov_indices[j]`` whose P2C link is partial transit.

    Build once per adjacency (see :func:`plane_of`), propagate per
    origin with :meth:`propagate`.
    """

    def __init__(self, adj: AdjacencyIndex) -> None:
        asns = np.sort(np.asarray(adj.asns, dtype=np.int64))
        self.asns = asns
        self.n = len(asns)
        self.prov_indptr, self.prov_indices = self._csr(adj.providers, asns)
        self.cust_indptr, self.cust_indices = self._csr(adj.customers, asns)
        self.peer_indptr, self.peer_indices = self._csr(adj.peers, asns)
        partial_up = np.zeros(len(self.prov_indices), dtype=bool)
        for provider, customer in sorted(adj.partial):
            ci = self._id(customer)
            pi = self._id(provider)
            lo, hi = int(self.prov_indptr[ci]), int(self.prov_indptr[ci + 1])
            pos = lo + int(np.searchsorted(self.prov_indices[lo:hi], pi))
            if pos >= hi or int(self.prov_indices[pos]) != pi:
                raise ValueError(
                    f"partial-transit link ({provider}, {customer}) not in "
                    "the adjacency index"
                )
            partial_up[pos] = True
        self.partial_up = partial_up

    @staticmethod
    def _csr(
        table: Dict[int, List[int]], asns: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        n = len(asns)
        asn_list = asns.tolist()
        counts = np.fromiter(
            (len(table[a]) for a in asn_list), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        total = int(indptr[-1])
        flat = np.fromiter(
            (x for a in asn_list for x in table[a]),
            dtype=np.int64,
            count=total,
        )
        # Neighbour lists are ASN-sorted, so the id lists stay sorted.
        indices = np.searchsorted(asns, flat).astype(np.int32)
        return indptr, indices

    # ------------------------------------------------------------------
    def _id(self, asn: int) -> int:
        """Dense id of ``asn`` (raises ``KeyError`` when unknown)."""
        pos = int(np.searchsorted(self.asns, asn))
        if pos >= self.n or int(self.asns[pos]) != asn:
            raise KeyError(f"AS{asn} not in plane")
        return pos

    def id_or_none(self, asn: int) -> Optional[int]:
        pos = int(np.searchsorted(self.asns, asn))
        if pos >= self.n or int(self.asns[pos]) != asn:
            return None
        return pos

    @staticmethod
    def _out_edges(
        indptr: np.ndarray, frontier: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(edge positions, repeated senders) for a frontier id array."""
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        positions = _concat_ranges(starts, counts)
        senders = np.repeat(frontier, counts)
        return positions, senders

    # ------------------------------------------------------------------
    def propagate(self, origin: int) -> "RouteArrays":
        """Run the three-stage decision process for one origin.

        Pure array passes; the returned :class:`RouteArrays` holds the
        full per-AS ``pref``/``dist``/``parent``/``restricted`` columns.
        """
        n = self.n
        o = self._id(origin)
        pref = np.full(n, _NO_ROUTE, dtype=np.int32)
        dist = np.zeros(n, dtype=np.int32)
        parent = np.full(n, -1, dtype=np.int32)
        restricted = np.zeros(n, dtype=bool)
        pref[o] = _SELF

        # ---- stage 1: customer routes (frontier BFS upward) ----------
        frontier = np.array([o], dtype=np.int32)
        level = 0
        while frontier.size:
            level += 1
            positions, senders = self._out_edges(self.prov_indptr, frontier)
            targets = self.prov_indices[positions]
            partial = self.partial_up[positions]
            keep = pref[targets] == _NO_ROUTE
            targets, senders, partial = (
                targets[keep], senders[keep], partial[keep],
            )
            if targets.size == 0:
                break
            # Lowest child ASN wins each provider: sort by (target,
            # sender id) and take each target's first row — ids are
            # ASN-ordered, so min id is min ASN.
            order = np.lexsort((senders, targets))
            targets, senders, partial = (
                targets[order], senders[order], partial[order],
            )
            first = _first_occurrence(targets)
            targets, senders, partial = (
                targets[first], senders[first], partial[first],
            )
            pref[targets] = _CUSTOMER
            dist[targets] = level
            parent[targets] = senders
            restricted[targets] = partial
            # Restricted holders keep the route but stop exporting up.
            frontier = targets[~partial]

        # ---- stage 2: peer routes (one offer pass) -------------------
        exporters = np.flatnonzero(
            (pref == _SELF) | ((pref == _CUSTOMER) & ~restricted)
        ).astype(np.int32)
        positions, senders = self._out_edges(self.peer_indptr, exporters)
        receivers = self.peer_indices[positions]
        keep = pref[receivers] == _NO_ROUTE
        receivers, senders = receivers[keep], senders[keep]
        if receivers.size:
            sender_dist = dist[senders]
            # Best offer per receiver: shortest sender path, then lowest
            # sender ASN.
            order = np.lexsort((senders, sender_dist, receivers))
            receivers, senders, sender_dist = (
                receivers[order], senders[order], sender_dist[order],
            )
            first = _first_occurrence(receivers)
            receivers, senders, sender_dist = (
                receivers[first], senders[first], sender_dist[first],
            )
            pref[receivers] = _PEER
            dist[receivers] = sender_dist + 1
            parent[receivers] = senders

        # ---- stage 3: provider routes (bucket-queue descent) ---------
        routed = np.flatnonzero(pref != _NO_ROUTE).astype(np.int32)
        if routed.size:
            order = np.argsort(dist[routed], kind="stable")
            routed = routed[order]
            routed_dist = dist[routed]
            max_level = int(routed_dist[-1])
            added: Dict[int, np.ndarray] = {}
            level = 0
            while level <= max_level:
                lo = int(np.searchsorted(routed_dist, level, side="left"))
                hi = int(np.searchsorted(routed_dist, level, side="right"))
                extra = added.pop(level, None)
                if hi > lo and extra is not None:
                    senders_now = np.concatenate((routed[lo:hi], extra))
                elif hi > lo:
                    senders_now = routed[lo:hi]
                else:
                    senders_now = extra
                if senders_now is not None and senders_now.size:
                    positions, senders = self._out_edges(
                        self.cust_indptr, senders_now
                    )
                    customers = self.cust_indices[positions]
                    keep = pref[customers] == _NO_ROUTE
                    customers, senders = customers[keep], senders[keep]
                    if customers.size:
                        order = np.lexsort((senders, customers))
                        customers, senders = customers[order], senders[order]
                        first = _first_occurrence(customers)
                        customers, senders = customers[first], senders[first]
                        pref[customers] = _PROVIDER
                        dist[customers] = level + 1
                        parent[customers] = senders
                        added[level + 1] = customers
                        if level + 1 > max_level:
                            max_level = level + 1
                level += 1

        return RouteArrays(
            origin=origin,
            plane=self,
            pref_arr=pref,
            dist_arr=dist,
            parent_arr=parent,
            restricted_arr=restricted,
        )


class _ClassView:
    """Read-only ``pref[asn] -> RouteClass`` view over the pref column.

    Mimics the legacy dict's mapping protocol where consumers use it:
    ``[]`` raises ``KeyError`` for unrouted or unknown ASes, ``in``
    tests route existence.
    """

    __slots__ = ("_routes",)

    def __init__(self, routes: "RouteArrays") -> None:
        self._routes = routes

    def __getitem__(self, asn: int) -> RouteClass:
        routes = self._routes
        i = routes.plane.id_or_none(asn)
        if i is None or routes.pref_arr[i] == _NO_ROUTE:
            raise KeyError(asn)
        return RouteClass(int(routes.pref_arr[i]))

    def __contains__(self, asn: int) -> bool:
        return self._routes.has_route(asn)


@dataclass
class RouteArrays:
    """Vectorized best routes of every AS towards one origin.

    The columnar counterpart of :class:`RouteTree`: ``pref_arr`` /
    ``dist_arr`` / ``parent_arr`` are int32 columns indexed by dense
    plane id (``pref_arr == -1`` means no route; ``parent_arr`` holds
    plane ids, ``-1`` at the origin), ``restricted_arr`` is the
    partial-transit mask.  The read protocol the collectors use
    (``has_route`` / ``path_from`` / ``pref[asn]`` / ``origin``) is
    identical to the dict tree, so :func:`routes_for_origin` accepts
    either representation.
    """

    origin: int
    plane: PropagationPlane
    pref_arr: np.ndarray
    dist_arr: np.ndarray
    parent_arr: np.ndarray
    restricted_arr: np.ndarray

    @property
    def pref(self) -> _ClassView:
        return _ClassView(self)

    def has_route(self, asn: int) -> bool:
        i = self.plane.id_or_none(asn)
        return i is not None and self.pref_arr[i] != _NO_ROUTE

    def routed_ids(self) -> np.ndarray:
        """Dense ids of every AS holding a route (ascending)."""
        return np.flatnonzero(self.pref_arr != _NO_ROUTE)

    def path_from(self, asn: int) -> Optional[Tuple[int, ...]]:
        """AS path from ``asn`` to the origin (inclusive), or ``None``."""
        i = self.plane.id_or_none(asn)
        if i is None or self.pref_arr[i] == _NO_ROUTE:
            return None
        asns = self.plane.asns
        parent = self.parent_arr
        path: List[int] = [int(asns[i])]
        current = i
        while True:
            current = int(parent[current])
            if current < 0:
                break
            path.append(int(asns[current]))
            if len(path) > self.plane.n + 1:
                raise RuntimeError("parent-pointer loop in route arrays")
        return tuple(path)

    def to_route_tree(self) -> RouteTree:
        """Materialise the dict-backed compatibility view.

        Routed ASes are emitted in ascending-ASN order (deterministic
        but not the legacy BFS-discovery order; no consumer observes
        the dict order, and the differential tests compare by value).
        """
        routed = self.routed_ids()
        asns = self.plane.asns[routed].tolist()
        prefs = self.pref_arr[routed].tolist()
        dists = self.dist_arr[routed].tolist()
        parents = self.parent_arr[routed].tolist()
        restr = self.restricted_arr[routed].tolist()
        plane_asns = self.plane.asns
        pref: Dict[int, RouteClass] = {}
        dist: Dict[int, int] = {}
        parent: Dict[int, Optional[int]] = {}
        restricted: Dict[int, bool] = {}
        for asn, p, d, par, r in zip(asns, prefs, dists, parents, restr):
            pref[asn] = RouteClass(p)
            dist[asn] = d
            parent[asn] = int(plane_asns[par]) if par >= 0 else None
            restricted[asn] = bool(r)
        return RouteTree(
            origin=self.origin,
            pref=pref,
            dist=dist,
            parent=parent,
            restricted=restricted,
        )


def plane_of(adj: AdjacencyIndex) -> PropagationPlane:
    """The (cached) propagation plane of an adjacency index.

    The plane is derived once and memoised on the adjacency object —
    the same idiom as the index's neighbour-set caches — so per-origin
    sweeps, `RoutingTable.compute`, and the parallel workers all share
    one build per adjacency.
    """
    plane = getattr(adj, "_plane_cache", None)
    if plane is None:
        plane = PropagationPlane(adj)
        adj._plane_cache = plane
    return plane


# ---------------------------------------------------------------------------
# legacy engine (differential baseline)
# ---------------------------------------------------------------------------

def _compute_route_tree_legacy(adj: AdjacencyIndex, origin: int) -> RouteTree:
    """The original per-origin dict BFS, kept as the reference engine."""
    pref: Dict[int, RouteClass] = {origin: RouteClass.SELF}
    dist: Dict[int, int] = {origin: 0}
    parent: Dict[int, Optional[int]] = {origin: None}
    restricted: Dict[int, bool] = {origin: False}

    providers = adj.providers
    customers = adj.customers
    peers = adj.peers
    partial = adj.partial

    # ---- stage 1: customer routes ------------------------------------
    # Level-synchronous BFS upward.  ``frontier`` holds ASes whose route
    # is export-all; restricted holders are recorded but not expanded.
    frontier: List[int] = [origin]
    level = 0
    while frontier:
        level += 1
        candidates: Dict[int, int] = {}
        for asn in frontier:
            for provider in providers[asn]:
                if provider in pref:
                    continue
                best = candidates.get(provider)
                if best is None or asn < best:
                    candidates[provider] = asn
        next_frontier: List[int] = []
        for provider, chosen_child in candidates.items():
            pref[provider] = RouteClass.CUSTOMER
            dist[provider] = level
            parent[provider] = chosen_child
            is_restricted = (provider, chosen_child) in partial
            restricted[provider] = is_restricted
            if not is_restricted:
                next_frontier.append(provider)
        frontier = next_frontier

    # ---- stage 2: peer routes ----------------------------------------
    # Offers come only from export-all holders (SELF or unrestricted
    # CUSTOMER routes).  Each receiver takes the best offer.
    offers: Dict[int, Tuple[int, int]] = {}  # receiver -> (dist, sender)
    for sender, sender_pref in pref.items():
        if sender_pref is RouteClass.CUSTOMER and restricted.get(sender):
            continue
        sender_dist = dist[sender]
        for receiver in peers[sender]:
            if receiver in pref:
                continue
            offer = offers.get(receiver)
            candidate = (sender_dist, sender)
            if offer is None or candidate < offer:
                offers[receiver] = candidate
    for receiver, (sender_dist, sender) in offers.items():
        pref[receiver] = RouteClass.PEER
        dist[receiver] = sender_dist + 1
        parent[receiver] = sender
        restricted[receiver] = False

    # ---- stage 3: provider routes ------------------------------------
    # Everyone with a route exports it to customers.  A bucket queue by
    # path length realises within-class shortest-path tie-breaking.
    buckets: Dict[int, List[int]] = {}
    for asn, asn_dist in dist.items():
        buckets.setdefault(asn_dist, []).append(asn)
    current_level = 0
    max_level = max(buckets) if buckets else 0
    while current_level <= max_level:
        senders = buckets.get(current_level)
        if senders:
            candidates = {}
            for sender in senders:
                for customer in customers[sender]:
                    if customer in pref:
                        continue
                    best = candidates.get(customer)
                    if best is None or sender < best:
                        candidates[customer] = sender
            for customer, sender in candidates.items():
                pref[customer] = RouteClass.PROVIDER
                dist[customer] = current_level + 1
                parent[customer] = sender
                restricted[customer] = False
                buckets.setdefault(current_level + 1, []).append(customer)
                if current_level + 1 > max_level:
                    max_level = current_level + 1
        current_level += 1

    return RouteTree(
        origin=origin, pref=pref, dist=dist, parent=parent, restricted=restricted
    )


# ---------------------------------------------------------------------------
# engine dispatch
# ---------------------------------------------------------------------------

#: Either native representation; both satisfy the collector protocol.
OriginRoutes = Union[RouteTree, RouteArrays]


def compute_origin_routes(adj: AdjacencyIndex, origin: int) -> OriginRoutes:
    """One origin's routes in the active engine's native representation.

    The hot-path entry point: the vectorized engine returns
    :class:`RouteArrays` (no dict materialisation), the legacy engine
    its :class:`RouteTree`.  Use :func:`compute_route_tree` when the
    dict view is required.
    """
    if propagation_engine() == "legacy":
        return _compute_route_tree_legacy(adj, origin)
    return plane_of(adj).propagate(origin)


def compute_route_tree(adj: AdjacencyIndex, origin: int) -> RouteTree:
    """Run the three-stage decision process for one origin.

    Always returns the dict-backed :class:`RouteTree` view; with the
    default vectorized engine the routes are computed as array passes
    and then materialised.
    """
    if propagation_engine() == "legacy":
        return _compute_route_tree_legacy(adj, origin)
    return plane_of(adj).propagate(origin).to_route_tree()


def iter_route_trees(
    adj: AdjacencyIndex,
    origins: Optional[Iterable[int]] = None,
    workers: int = 0,
) -> Iterable[RouteTree]:
    """Yield the route tree of every origin (all ASes by default).

    Trees are produced lazily so callers can extract vantage-point paths
    and drop each tree before the next one is built — the full set of
    trees would be quadratic in memory.  The propagation plane is built
    once for the whole sweep (see :func:`plane_of`).

    ``workers`` shards the per-origin fan-out across that many worker
    processes (see :class:`repro.pipeline.parallel.ParallelPropagator`);
    the yielded sequence is identical to the serial one — same trees,
    same origin order — because every tie-break is explicit and the
    parallel merge preserves submission order.  ``workers=0`` (default)
    stays fully in-process.
    """
    if workers:
        from repro.pipeline.parallel import ParallelPropagator

        propagator = ParallelPropagator(adj, workers=workers)
        yield from propagator.iter_route_trees(origins)
        return
    if origins is None:
        origins = adj.asns
    for origin in origins:
        yield compute_route_tree(adj, origin)
