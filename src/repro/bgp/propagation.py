"""Per-origin best-route computation (the BGP decision process).

For every origin AS the simulator computes the best route of *every*
other AS under Gao-Rexford policies with the classic three-stage
algorithm (customer routes first, then peer routes, then provider
routes).  The result is a shortest-path-within-preference-class tree
whose parent pointers reconstruct the exact AS path any vantage point
would export to a route collector.

Stage structure
---------------
1. **Customer routes** (export-all): breadth-first search from the
   origin along customer-to-provider edges.  Routes crossing a
   partial-transit link stop propagating upwards — the provider keeps a
   customer-*preferred* route but exports it to customers only
   (``restricted`` in the tree), reproducing the Cogent mechanism.
2. **Peer routes**: every AS holding an export-all route offers it
   across each of its peering links; the receiver adopts the best offer
   unless it already holds a customer route.
3. **Provider routes**: every routed AS exports down to its customers;
   a bucket queue by path length keeps the within-class
   shortest-path/lowest-ASN tie-break exact.

All ties are broken deterministically: shorter path first, then lower
neighbour ASN — the same convention real implementations approximate
with router IDs, and the one ASRank-style inference assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bgp.policy import AdjacencyIndex, RouteClass

#: Sentinel distance for "no route".
_NO_ROUTE = -1


@dataclass
class RouteTree:
    """Best routes of every AS towards one origin.

    ``parent[asn]`` is the next hop towards the origin (``None`` at the
    origin itself); ``pref``/``dist`` hold the route class and AS-path
    length; ``restricted`` flags customer routes that arrived over a
    partial-transit link and therefore do not propagate to peers or
    providers.
    """

    origin: int
    pref: Dict[int, RouteClass]
    dist: Dict[int, int]
    parent: Dict[int, Optional[int]]
    restricted: Dict[int, bool]

    def has_route(self, asn: int) -> bool:
        return asn in self.pref

    def path_from(self, asn: int) -> Optional[Tuple[int, ...]]:
        """AS path from ``asn`` to the origin (inclusive), or ``None``.

        The first element is ``asn`` itself, the last is the origin —
        the order a collector would record after prepending the VP.
        """
        if asn not in self.pref:
            return None
        path: List[int] = [asn]
        current: Optional[int] = asn
        while True:
            current = self.parent[current]
            if current is None:
                break
            path.append(current)
            if len(path) > len(self.pref) + 1:
                raise RuntimeError("parent-pointer loop in route tree")
        return tuple(path)


def compute_route_tree(adj: AdjacencyIndex, origin: int) -> RouteTree:
    """Run the three-stage decision process for one origin."""
    pref: Dict[int, RouteClass] = {origin: RouteClass.SELF}
    dist: Dict[int, int] = {origin: 0}
    parent: Dict[int, Optional[int]] = {origin: None}
    restricted: Dict[int, bool] = {origin: False}

    providers = adj.providers
    customers = adj.customers
    peers = adj.peers
    partial = adj.partial

    # ---- stage 1: customer routes ------------------------------------
    # Level-synchronous BFS upward.  ``frontier`` holds ASes whose route
    # is export-all; restricted holders are recorded but not expanded.
    frontier: List[int] = [origin]
    level = 0
    while frontier:
        level += 1
        candidates: Dict[int, int] = {}
        for asn in frontier:
            for provider in providers[asn]:
                if provider in pref:
                    continue
                best = candidates.get(provider)
                if best is None or asn < best:
                    candidates[provider] = asn
        next_frontier: List[int] = []
        for provider, chosen_child in candidates.items():
            pref[provider] = RouteClass.CUSTOMER
            dist[provider] = level
            parent[provider] = chosen_child
            is_restricted = (provider, chosen_child) in partial
            restricted[provider] = is_restricted
            if not is_restricted:
                next_frontier.append(provider)
        frontier = next_frontier

    # ---- stage 2: peer routes ----------------------------------------
    # Offers come only from export-all holders (SELF or unrestricted
    # CUSTOMER routes).  Each receiver takes the best offer.
    offers: Dict[int, Tuple[int, int]] = {}  # receiver -> (dist, sender)
    for sender, sender_pref in pref.items():
        if sender_pref is RouteClass.CUSTOMER and restricted.get(sender):
            continue
        sender_dist = dist[sender]
        for receiver in peers[sender]:
            if receiver in pref:
                continue
            offer = offers.get(receiver)
            candidate = (sender_dist, sender)
            if offer is None or candidate < offer:
                offers[receiver] = candidate
    for receiver, (sender_dist, sender) in offers.items():
        pref[receiver] = RouteClass.PEER
        dist[receiver] = sender_dist + 1
        parent[receiver] = sender
        restricted[receiver] = False

    # ---- stage 3: provider routes ------------------------------------
    # Everyone with a route exports it to customers.  A bucket queue by
    # path length realises within-class shortest-path tie-breaking.
    buckets: Dict[int, List[int]] = {}
    for asn, asn_dist in dist.items():
        buckets.setdefault(asn_dist, []).append(asn)
    current_level = 0
    max_level = max(buckets) if buckets else 0
    while current_level <= max_level:
        senders = buckets.get(current_level)
        if senders:
            candidates = {}
            for sender in senders:
                for customer in customers[sender]:
                    if customer in pref:
                        continue
                    best = candidates.get(customer)
                    if best is None or sender < best:
                        candidates[customer] = sender
            for customer, sender in candidates.items():
                pref[customer] = RouteClass.PROVIDER
                dist[customer] = current_level + 1
                parent[customer] = sender
                restricted[customer] = False
                buckets.setdefault(current_level + 1, []).append(customer)
                if current_level + 1 > max_level:
                    max_level = current_level + 1
        current_level += 1

    return RouteTree(
        origin=origin, pref=pref, dist=dist, parent=parent, restricted=restricted
    )


def iter_route_trees(
    adj: AdjacencyIndex,
    origins: Optional[Iterable[int]] = None,
    workers: int = 0,
) -> Iterable[RouteTree]:
    """Yield the route tree of every origin (all ASes by default).

    Trees are produced lazily so callers can extract vantage-point paths
    and drop each tree before the next one is built — the full set of
    trees would be quadratic in memory.

    ``workers`` shards the per-origin fan-out across that many worker
    processes (see :class:`repro.pipeline.parallel.ParallelPropagator`);
    the yielded sequence is identical to the serial one — same trees,
    same origin order — because every tie-break in
    :func:`compute_route_tree` is explicit and the parallel merge
    preserves submission order.  ``workers=0`` (default) stays fully
    in-process.
    """
    if workers:
        from repro.pipeline.parallel import ParallelPropagator

        propagator = ParallelPropagator(adj, workers=workers)
        yield from propagator.iter_route_trees(origins)
        return
    if origins is None:
        origins = adj.asns
    for origin in origins:
        yield compute_route_tree(adj, origin)
