"""Route collectors and vantage-point placement.

A **vantage point** (VP) is an AS that feeds its routes to a public
route collector.  Real collector ecosystems (RouteViews, RIPE RIS) are
heavily skewed — most feeds come from transit networks in the RIPE and
ARIN regions — and that skew is one of the bias mechanisms the paper
investigates.  Placement here follows configurable region and role
weights, defaulting to the realistic skew.

Feed types follow operational reality:

* a **full feeder** treats the collector like a customer and exports
  its complete best-route table;
* a **partial feeder** treats the collector like a peer and exports
  only its own and customer-learned routes.

Community propagation is modelled at collection time: every AS on the
path tagged the route at ingress with its informational relationship
community; a tag survives to the collector iff no AS between the tagger
and the collector strips foreign communities.  Partial-transit action
communities never reach collectors (the provider strips them towards
customers and never exports the route to peers), matching footnote 11
of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.bgp.communities import (
    Community,
    CommunityRegistry,
    Meaning,
)
from repro.bgp.policy import AdjacencyIndex, RouteClass
from repro.bgp.propagation import compute_origin_routes
from repro.datasets.paths import CollectedRoute, PathCorpus
from repro.topology.generator import Topology
from repro.topology.graph import Role
from repro.utils.rng import child_rng

if TYPE_CHECKING:
    from repro.config import ScenarioConfig

#: RouteClass -> the informational meaning an AS tags at ingress.
_CLASS_TO_MEANING = {
    RouteClass.CUSTOMER: Meaning.LEARNED_FROM_CUSTOMER,
    RouteClass.PEER: Meaning.LEARNED_FROM_PEER,
    RouteClass.PROVIDER: Meaning.LEARNED_FROM_PROVIDER,
}


@dataclass(frozen=True)
class VantagePoint:
    """One collector feed."""

    asn: int
    full_feed: bool


def select_vantage_points(
    topology: Topology, config: "ScenarioConfig"
) -> List[VantagePoint]:
    """Pick the collector feeds with the configured region/role skew."""
    meas = config.measurement
    rng = child_rng(config.seed, "measurement.vps")
    nodes = list(topology.graph.nodes())
    weights = np.array(
        [
            meas.vp_region_weights[n.region] * meas.vp_role_weights[n.role.value]
            for n in nodes
        ],
        dtype=float,
    )
    if weights.sum() <= 0:
        raise ValueError("vantage point weights sum to zero")
    n_vps = min(meas.n_vantage_points, len(nodes))
    chosen = rng.choice(
        len(nodes), size=n_vps, replace=False, p=weights / weights.sum()
    )
    vps = []
    for idx in sorted(int(i) for i in chosen):
        asn = nodes[idx].asn
        full = bool(rng.random() < meas.full_feed_prob)
        vps.append(VantagePoint(asn=asn, full_feed=full))
    return vps


def assign_community_strippers(
    topology: Topology, config: "ScenarioConfig"
) -> Set[int]:
    """The set of ASes that strip foreign communities on export."""
    rng = child_rng(config.seed, "measurement.strippers")
    strip_prob = config.measurement.community_strip_prob
    return {
        node.asn
        for node in topology.graph.nodes()
        if rng.random() < strip_prob
    }


def surviving_communities(
    path: Tuple[int, ...],
    tree,
    communities: CommunityRegistry,
    strippers: Set[int],
) -> Tuple[Community, ...]:
    """Informational tags still on the route when it reaches the
    collector.

    Walking from the collector side: the tag applied by ``path[i]``
    survives iff none of ``path[0..i-1]`` strips foreign communities.
    The VP's own tag (i = 0) always survives.
    """
    surviving: List[Community] = []
    upstream_keeps = True
    for i in range(len(path) - 1):
        tagger = path[i]
        if i > 0:
            upstream_keeps = upstream_keeps and path[i - 1] not in strippers
            if not upstream_keeps:
                break
        tagger_class = tree.pref[tagger]
        meaning = _CLASS_TO_MEANING.get(tagger_class)
        if meaning is None:
            continue
        codebook = communities.codebook(tagger)
        surviving.append(codebook.encode(meaning))
    return tuple(surviving)


def routes_for_origin(
    tree,
    vantage_points: Iterable[VantagePoint],
    communities: CommunityRegistry,
    strippers: Set[int],
) -> List[CollectedRoute]:
    """Reduce one origin's route tree to the routes collectors record.

    The single source of truth for the feed-type filter and community
    survival — the serial collector and the parallel workers both call
    this, so the two paths cannot drift apart.  Vantage points are
    visited in list order, which fixes the route order within an origin.
    """
    routes: List[CollectedRoute] = []
    for vp in vantage_points:
        if not tree.has_route(vp.asn):
            continue
        if not vp.full_feed and tree.pref[vp.asn] not in (
            RouteClass.SELF,
            RouteClass.CUSTOMER,
        ):
            continue
        path = tree.path_from(vp.asn)
        assert path is not None
        routes.append(
            CollectedRoute(
                vp=vp.asn,
                # The AS the collector *believes* originated the route is
                # whoever sits at the path tail.  For honest trees that is
                # tree.origin; under an origin hijack the forged path ends
                # at the attacker instead.
                origin=path[-1],
                path=path,
                communities=surviving_communities(
                    path, tree, communities, strippers
                ),
            )
        )
    return routes


class RouteCollector:
    """Streams the routes of every (vantage point, origin) pair into a
    :class:`PathCorpus`."""

    def __init__(
        self,
        topology: Topology,
        vantage_points: Iterable[VantagePoint],
        communities: CommunityRegistry,
        strippers: Set[int],
        workers: int = 0,
    ) -> None:
        self.topology = topology
        self.vantage_points = list(vantage_points)
        self.communities = communities
        self.strippers = strippers
        self.adjacency = AdjacencyIndex(topology.graph)
        self.workers = workers

    def collect(
        self,
        origins: Optional[Iterable[int]] = None,
        corpus: Optional[PathCorpus] = None,
        adjacency: Optional[AdjacencyIndex] = None,
        workers: Optional[int] = None,
    ) -> PathCorpus:
        """Propagate every origin and record what the collector hears.

        Per-origin routes are computed lazily and discarded, so the
        memory footprint stays linear in the corpus, not quadratic in
        the AS count.  With the default vectorized engine each origin
        yields flat :class:`~repro.bgp.propagation.RouteArrays` columns
        straight off the shared propagation plane — no dict trees are
        materialised anywhere on this path.  Passing an existing
        ``corpus`` merges this round
        into it (duplicate paths are dropped by the corpus); passing an
        ``adjacency`` overrides the topology view, which is how churn
        rounds inject link failures.

        With ``workers`` (falling back to the collector-level setting),
        the per-origin work — route tree *and* its reduction to VP
        paths — runs in worker processes; routes cross the process
        boundary as packed array slabs
        (:class:`~repro.pipeline.columnar.RouteSlab`) and arrive in the
        exact order the serial loop would produce them, so the corpus
        is identical.
        """
        if corpus is None:
            corpus = PathCorpus()
        if adjacency is None:
            adjacency = self.adjacency
        if origins is None:
            origins = adjacency.asns
        if workers is None:
            workers = self.workers
        if workers:
            from repro.pipeline.parallel import ParallelPropagator

            propagator = ParallelPropagator(adjacency, workers=workers)
            corpus.add_routes(
                propagator.collect_routes(
                    self.vantage_points, self.communities, self.strippers,
                    origins,
                )
            )
            return corpus
        for origin in origins:
            routes = compute_origin_routes(adjacency, origin)
            corpus.add_routes(
                routes_for_origin(
                    routes, self.vantage_points, self.communities,
                    self.strippers,
                )
            )
        return corpus


def measurement_setup(
    topology: Topology,
    config: "ScenarioConfig",
    communities: Optional[CommunityRegistry] = None,
) -> Tuple[List[VantagePoint], CommunityRegistry, Set[int]]:
    """The cheap, deterministic measurement artefacts of a scenario.

    Vantage points, community codebooks and the stripper set all come
    from labelled child RNG streams of the seed, so they can be rebuilt
    identically whether or not the (expensive) corpus is served from the
    artifact cache.
    """
    if communities is None:
        communities = CommunityRegistry.build(
            topology.graph.asns(),
            child_rng(config.seed, "measurement.codebooks"),
            # Layout 0 is the classic scheme whose no-export value is
            # 990 — so the Cogent-like AS tags exactly 174:990.
            pinned_layouts={topology.cogent_asn: 0},
        )
    vps = select_vantage_points(topology, config)
    strippers = assign_community_strippers(topology, config)
    return vps, communities, strippers


def collect_rounds(
    topology: Topology,
    config: "ScenarioConfig",
    vps: List[VantagePoint],
    communities: CommunityRegistry,
    strippers: Set[int],
    workers: int = 0,
) -> PathCorpus:
    """The converged collection round plus the configured churn rounds.

    Churn rounds fail a small random subset of links and re-collect.
    The merged corpus then contains paths from several routing states,
    like a real month of table dumps — in particular, backup transit
    links show up with full triplet context.

    When the scenario carries an adversarial layer with attack events,
    a final attack round re-propagates each victim prefix jointly with
    its attacker and merges the polluted routes into the corpus (see
    :mod:`repro.adversarial.attacks`).  Without attack events this
    function is byte-identical to its honest predecessor.
    """
    collector = RouteCollector(
        topology, vps, communities, strippers, workers=workers
    )
    corpus = collector.collect()
    meas = config.measurement
    if meas.n_churn_rounds > 0:
        rng = child_rng(config.seed, "measurement.churn")
        all_links = [link.key for link in topology.graph.links()]
        for _ in range(meas.n_churn_rounds):
            failed = {
                key
                for key in all_links
                if rng.random() < meas.churn_link_failure_prob
            }
            if not failed:
                continue
            churned = AdjacencyIndex(topology.graph, exclude=failed)
            collector.collect(corpus=corpus, adjacency=churned)
    adv = config.adversarial
    if adv is not None and adv.attack.total_events() > 0:
        # Imported lazily: repro.adversarial sits above the BGP layer.
        from repro.adversarial.attacks import inject_attacks

        inject_attacks(
            topology, config, vps, communities, strippers, corpus
        )
    return corpus


def collect_corpus(
    topology: Topology,
    config: "ScenarioConfig",
    communities: Optional[CommunityRegistry] = None,
    workers: int = 0,
) -> Tuple[PathCorpus, List[VantagePoint], CommunityRegistry, Set[int]]:
    """One-call measurement layer: choose VPs, build codebooks, collect.

    Returns the corpus plus the measurement artefacts downstream layers
    need (the VP list, the community registry, and the stripper set).
    """
    vps, communities, strippers = measurement_setup(
        topology, config, communities
    )
    corpus = collect_rounds(
        topology, config, vps, communities, strippers, workers=workers
    )
    return corpus, vps, communities, strippers
