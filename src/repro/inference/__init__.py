"""Relationship-inference algorithms (systems S7-S10 of DESIGN.md)."""

from repro.inference.asrank import ASRank, infer_asrank
from repro.inference.base import (
    InferenceAlgorithm,
    distance_to_clique,
    infer_clique,
    transit_degree_rank,
)
from repro.inference.consensus import (
    ConsensusClassifier,
    disagreement_by_class,
)
from repro.inference.complex_rels import (
    ComplexLink,
    ComplexRelationshipDetector,
    ComplexReport,
    split_validation_for_complex,
)
from repro.inference.features import DiscreteFeatures, LinkFeatureExtractor
from repro.inference.gao import GaoInference, infer_gao
from repro.inference.problink import ProbLink, infer_problink
from repro.inference.toposcope import TopoScope, infer_toposcope

__all__ = [
    "ASRank",
    "infer_asrank",
    "InferenceAlgorithm",
    "distance_to_clique",
    "infer_clique",
    "transit_degree_rank",
    "ConsensusClassifier",
    "disagreement_by_class",
    "ComplexLink",
    "ComplexRelationshipDetector",
    "ComplexReport",
    "split_validation_for_complex",
    "DiscreteFeatures",
    "LinkFeatureExtractor",
    "GaoInference",
    "infer_gao",
    "ProbLink",
    "infer_problink",
    "TopoScope",
    "infer_toposcope",
]
