"""ASRank relationship inference (Luckie et al., IMC 2013).

The implementation follows the published algorithm's load-bearing
structure:

1. **Transit degrees** are computed from path triplets.
2. **Clique inference**: greedy clique growth over the highest
   transit-degree ASes (see :func:`repro.inference.base.infer_clique`).
3. **Descending (P2C) inference**: a route that has crossed its apex
   can only travel provider-to-customer afterwards.  The only apex the
   algorithm can recognise *without* relationship knowledge is a link
   between two clique members, so P2C evidence starts at consecutive
   clique pairs in paths and is propagated through triplets to a
   fixpoint: once ``a -> b`` is known to descend, any observed triplet
   ``(a, b, c)`` makes ``b -> c`` descend too.
4. **Stub fallback**: an unresolved link whose one endpoint never
   appears in transit position (transit degree zero) is inferred P2C
   with the transit side as provider — but only when the link is widely
   visible.  Transit links are seen by vantage points everywhere,
   whereas a stub's peering link is only visible inside the peering
   partner's customer cone, so low visibility indicates peering.
5. Everything still unresolved defaults to **P2P**.

Step 3 is precisely why the §6.1 Cogent links are misinferred: a
partial-transit customer's routes never cross a second clique member,
so no ``clique | Cogent | X`` triplet exists, no descending evidence
reaches ``Cogent -> X``, the transit-degree fallback does not apply
(the customer is itself a transit network), and the link lands in the
default P2P bucket.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.datasets.asrel import RelationshipSet
from repro.datasets.paths import PathCorpus
from repro.inference.base import InferenceAlgorithm, infer_clique
from repro.topology.graph import LinkKey, link_key


class ASRank(InferenceAlgorithm):
    """The ASRank classifier."""

    name = "asrank"

    def __init__(
        self,
        max_clique_candidates: int = 25,
        stub_visibility_threshold: float = 0.05,
        degree_gap_ratio: float = 12.0,
        degree_gap_min: int = 20,
        clique_override: Optional[List[int]] = None,
    ) -> None:
        self.max_clique_candidates = max_clique_candidates
        #: Skip clique inference and use this clique instead.  Useful on
        #: tiny hand-built topologies whose transit degrees are too flat
        #: for the degree-based candidate selection to mean anything.
        self.clique_override = list(clique_override) if clique_override else None
        self.stub_visibility_threshold = stub_visibility_threshold
        #: Unresolved links whose endpoints differ in transit degree by
        #: this factor (and whose larger side is at least
        #: ``degree_gap_min``) are inferred P2C — Luckie et al.'s
        #: folded-in degree-gap heuristics for transit customers whose
        #: announcements never gained clique context.
        self.degree_gap_ratio = degree_gap_ratio
        self.degree_gap_min = degree_gap_min
        #: A first-hop neighbour supplying at least this fraction of a
        #: VP's table is considered the VP's transit provider; sessions
        #: below it seed descending suffixes.  Disabled (0.0) by
        #: default: a backup provider session that carries almost no
        #: best paths gets misclassified as a peer, and every path
        #: through it then cascades into wrong P2C inferences — the
        #: cure is far worse than the missing-evidence disease.
        self.provider_table_fraction = 0.0
        #: Populated by :meth:`infer` for downstream consumers
        #: (ProbLink, TopoScope, the case study).
        self.clique_: List[int] = []
        self.descending_: Set[Tuple[int, int]] = set()

    # ------------------------------------------------------------------
    def infer(self, corpus: PathCorpus) -> RelationshipSet:
        if self.clique_override is not None:
            clique = list(self.clique_override)
        else:
            clique = infer_clique(corpus, max_candidates=self.max_clique_candidates)
        self.clique_ = clique
        descending = self._descending_fixpoint(corpus, set(clique))
        self.descending_ = descending
        return self._assemble(corpus, clique, descending)

    # ------------------------------------------------------------------
    def _descending_fixpoint(
        self, corpus: PathCorpus, clique: Set[int]
    ) -> Set[Tuple[int, int]]:
        """All directed pairs ``(provider, customer)`` with descending
        evidence, computed to a fixpoint over triplets."""
        # Triplets indexed by their leading directed pair — a single
        # vectorized pass on a columnar corpus.
        continuations: Dict[Tuple[int, int], List[int]] = (
            corpus.triplet_continuations()
        )
        descending: Set[Tuple[int, int]] = set()
        worklist: List[Tuple[int, int]] = []

        def mark(pair: Tuple[int, int]) -> None:
            if pair not in descending:
                descending.add(pair)
                worklist.append(pair)

        # Seeds: the suffix of every path after its first consecutive
        # clique pair descends.
        for pair in corpus.descending_seed_pairs(clique):
            mark(pair)
        # Fixpoint: descending evidence flows through triplets.
        def drain() -> None:
            while worklist:
                a, b = worklist.pop()
                for c in continuations.get((a, b), ()):
                    mark((b, c))

        drain()
        # Vantage-point first-hop seeds: for a path [w, x, ...] the
        # collector can classify the w-x session by how much of w's
        # table arrives via x — a provider supplies a large share, a
        # peer or customer supplies only its customer cone.  If x is
        # *not* w's provider, then x exported the rest of the path
        # sideways or upwards, which under Gao-Rexford is only legal for
        # customer routes: the entire suffix from x onwards descends.
        if self.provider_table_fraction > 0:
            non_provider_first_hops = self._non_provider_first_hops(corpus)
            for path in corpus.paths():
                if len(path) < 3:
                    continue
                if (path[0], path[1]) in non_provider_first_hops:
                    for j in range(1, len(path) - 1):
                        mark((path[j], path[j + 1]))
            drain()
        return descending

    def _non_provider_first_hops(
        self, corpus: PathCorpus
    ) -> Set[Tuple[int, int]]:
        """(vp, neighbour) sessions where the neighbour is clearly not
        the VP's transit provider (it supplies only a small fraction of
        the VP's table)."""
        per_vp_totals: Dict[int, int] = {}
        per_hop_counts: Dict[Tuple[int, int], int] = {}
        for path in corpus.paths():
            if len(path) < 2:
                continue
            vp = path[0]
            per_vp_totals[vp] = per_vp_totals.get(vp, 0) + 1
            hop = (vp, path[1])
            per_hop_counts[hop] = per_hop_counts.get(hop, 0) + 1
        return {
            hop
            for hop, count in per_hop_counts.items()
            if count < self.provider_table_fraction * per_vp_totals[hop[0]]
        }

    # ------------------------------------------------------------------
    def _assemble(
        self,
        corpus: PathCorpus,
        clique: List[int],
        descending: Set[Tuple[int, int]],
    ) -> RelationshipSet:
        rels = RelationshipSet()
        clique_set = set(clique)
        degrees = corpus.transit_degrees()
        n_vps = max(1, len(corpus.vantage_points))
        for key in corpus.visible_links():
            a, b = key
            if a in clique_set and b in clique_set:
                rels.set_p2p(a, b)
                continue
            down_ab = (a, b) in descending
            down_ba = (b, a) in descending
            if down_ab and down_ba:
                # Conflicting descending evidence (possible with messy
                # visibility): the larger transit degree wins, matching
                # ASRank's reliance on the degree hierarchy.
                provider = a if degrees.get(a, 0) >= degrees.get(b, 0) else b
                rels.set_p2c(provider, a if provider == b else b)
            elif down_ab:
                rels.set_p2c(provider=a, customer=b)
            elif down_ba:
                rels.set_p2c(provider=b, customer=a)
            else:
                deg_a = degrees.get(a, 0)
                deg_b = degrees.get(b, 0)
                # Wide visibility means several VPs *and* a meaningful
                # share of the feed set: the absolute floor keeps tiny
                # sub-corpora (e.g. TopoScope's VP groups) from treating
                # every link as widely seen.
                needed = max(3.0, self.stub_visibility_threshold * n_vps)
                widely_seen = corpus.link_visibility(key) >= needed
                small_deg, large_deg = sorted((deg_a, deg_b))
                extreme_gap = (
                    large_deg >= self.degree_gap_min
                    and large_deg >= self.degree_gap_ratio * max(1, small_deg)
                )
                if deg_a == 0 and deg_b > 0 and widely_seen:
                    rels.set_p2c(provider=b, customer=a)
                elif deg_b == 0 and deg_a > 0 and widely_seen:
                    rels.set_p2c(provider=a, customer=b)
                elif extreme_gap and min(deg_a, deg_b) > 0:
                    provider = a if deg_a > deg_b else b
                    rels.set_p2c(provider, b if provider == a else a)
                else:
                    rels.set_p2p(a, b)
        return rels


def infer_asrank(corpus: PathCorpus) -> RelationshipSet:
    """Convenience wrapper used by examples and benchmarks."""
    return ASRank().infer(corpus)
