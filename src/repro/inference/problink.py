"""ProbLink relationship inference (Jin et al., NSDI 2019).

ProbLink is a *meta-classifier*: it bootstraps from an existing
classification (ASRank here, as in the paper), assigns every link a
probability of being P2C or P2P from a naive-Bayes model over link
features, relabels each link with the most probable type, and iterates
until convergence.

The conditional feature distributions are re-estimated from the current
labelling each round (self-training).  This is the property the paper's
§6 observations hinge on: probability mass follows the majority, so
links whose feature neighbourhoods are dominated by another class —
e.g. the relatively few T1-TR peering links, which share features with
the many T1-TR partial-transit customer links — get pulled towards the
majority label, degrading exactly the small classes even while the
overall error rate improves or holds.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.datasets.asrel import RelationshipSet
from repro.datasets.paths import PathCorpus
from repro.inference.asrank import ASRank
from repro.inference.base import InferenceAlgorithm
from repro.inference.features import DiscreteFeatures, LinkFeatureExtractor
from repro.topology.graph import LinkKey, RelType
from repro.topology.ixp import IXPRegistry

#: The two classes ProbLink distinguishes (siblings are out of scope,
#: as in the published algorithm).
_CLASSES = (RelType.P2C, RelType.P2P)


class ProbLink(InferenceAlgorithm):
    """Naive-Bayes iterative refinement on top of an initial inference."""

    name = "problink"

    def __init__(
        self,
        initial: Optional[InferenceAlgorithm] = None,
        ixps: Optional[IXPRegistry] = None,
        max_iterations: int = 5,
        convergence_fraction: float = 0.001,
        smoothing: float = 0.5,
    ) -> None:
        self.initial = initial if initial is not None else ASRank()
        self.ixps = ixps
        self.max_iterations = max_iterations
        self.convergence_fraction = convergence_fraction
        self.smoothing = smoothing
        self.clique_: List[int] = []
        self.iterations_run_: int = 0
        #: Posterior P(P2P) per link from the final iteration — the
        #: "measure of certainty" interface UNARI later extended.
        self.posterior_p2p_: Dict[LinkKey, float] = {}

    # ------------------------------------------------------------------
    def infer(self, corpus: PathCorpus) -> RelationshipSet:
        initial_rels = self.initial.infer(corpus)
        clique = list(getattr(self.initial, "clique_", []))
        self.clique_ = clique
        extractor = LinkFeatureExtractor(corpus, clique, ixps=self.ixps)
        features = extractor.discrete_all()
        degrees = corpus.transit_degrees()
        clique_set = set(clique)

        labels: Dict[LinkKey, RelType] = {}
        for key in corpus.visible_links():
            rel = initial_rels.rel_of(*key)
            labels[key] = RelType.P2P if rel is RelType.P2P else RelType.P2C

        n_links = len(labels)
        for iteration in range(self.max_iterations):
            model = self._fit(labels, features)
            changed = 0
            for key, feats in features.items():
                if key[0] in clique_set and key[1] in clique_set:
                    continue  # the clique mesh is pinned to P2P
                best, posterior_p2p = self._classify(model, feats)
                self.posterior_p2p_[key] = posterior_p2p
                if best is not labels[key]:
                    labels[key] = best
                    changed += 1
            self.iterations_run_ = iteration + 1
            if changed <= n_links * self.convergence_fraction:
                break

        return self._assemble(labels, initial_rels, degrees)

    # ------------------------------------------------------------------
    def _fit(
        self,
        labels: Dict[LinkKey, RelType],
        features: Dict[LinkKey, DiscreteFeatures],
    ) -> Dict:
        """Estimate priors and per-feature conditionals with Laplace
        smoothing from the current labelling."""
        priors = {cls: self.smoothing for cls in _CLASSES}
        n_fields = len(DiscreteFeatures.FIELD_NAMES)
        conditionals: List[Dict[Tuple[RelType, int], float]] = [
            {} for _ in range(n_fields)
        ]
        for key, cls in labels.items():
            priors[cls] += 1
            values = features[key].as_tuple()
            for field_index, value in enumerate(values):
                slot = (cls, value)
                table = conditionals[field_index]
                table[slot] = table.get(slot, 0.0) + 1.0
        total = sum(priors.values())
        log_priors = {cls: math.log(priors[cls] / total) for cls in _CLASSES}
        class_totals = {cls: priors[cls] for cls in _CLASSES}
        return {
            "log_priors": log_priors,
            "conditionals": conditionals,
            "class_totals": class_totals,
        }

    def _classify(
        self, model: Dict, feats: DiscreteFeatures
    ) -> Tuple[RelType, float]:
        """Argmax class and the posterior probability of P2P."""
        scores = {}
        values = feats.as_tuple()
        for cls in _CLASSES:
            score = model["log_priors"][cls]
            class_total = model["class_totals"][cls]
            for field_index, value in enumerate(values):
                count = model["conditionals"][field_index].get(
                    (cls, value), 0.0
                )
                score += math.log(
                    (count + self.smoothing) / (class_total + self.smoothing * 16)
                )
            scores[cls] = score
        max_score = max(scores.values())
        weights = {cls: math.exp(s - max_score) for cls, s in scores.items()}
        z = sum(weights.values())
        posterior_p2p = weights[RelType.P2P] / z
        best = RelType.P2P if posterior_p2p >= 0.5 else RelType.P2C
        return best, posterior_p2p

    def _assemble(
        self,
        labels: Dict[LinkKey, RelType],
        initial: RelationshipSet,
        degrees: Dict[int, int],
    ) -> RelationshipSet:
        """Turn class labels into a directed relationship set.

        P2C direction: keep the initial algorithm's orientation when it
        had one; links flipped from P2P take the larger transit degree
        as provider (ProbLink's convention).
        """
        rels = RelationshipSet()
        for key, cls in labels.items():
            a, b = key
            if cls is RelType.P2P:
                rels.set_p2p(a, b)
                continue
            provider = initial.provider_of(a, b)
            if provider is None:
                provider = a if degrees.get(a, 0) >= degrees.get(b, 0) else b
            customer = b if provider == a else a
            rels.set_p2c(provider, customer)
        return rels


def infer_problink(
    corpus: PathCorpus, ixps: Optional[IXPRegistry] = None
) -> RelationshipSet:
    """Convenience wrapper used by examples and benchmarks."""
    return ProbLink(ixps=ixps).infer(corpus)
