"""TopoScope relationship inference (Jin et al., IMC 2020).

TopoScope's headline idea is to fight *observation fragmentation*: no
single vantage point (or small group) sees enough of the topology, and
naive aggregation lets well-placed VPs dominate.  The published system

1. partitions the vantage points into groups,
2. runs a base inference per group (bootstrapping),
3. reconciles the per-group votes per link, and
4. resolves disagreements and low-coverage links with a Bayesian
   classifier over link features,
5. additionally predicts *hidden links* that no VP observed.

This implementation keeps stages 1-4 faithfully at the algorithmic
level (ASRank as the base inferrer, a naive-Bayes arbiter trained on
the confident majority votes).  Stage 5 exists as
:meth:`TopoScope.predict_hidden_links`, a lightweight variant that
proposes unobserved peerings from shared-IXP co-membership — enough to
exercise the paper's note that TopoScope predicts links "that, despite
not being visible, might exist".
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.datasets.asrel import RelationshipSet
from repro.datasets.paths import PathCorpus, filter_by_vps
from repro.inference.asrank import ASRank
from repro.inference.base import InferenceAlgorithm
from repro.inference.features import DiscreteFeatures, LinkFeatureExtractor
from repro.topology.graph import LinkKey, RelType, link_key
from repro.topology.ixp import IXPRegistry
from repro.utils.rng import child_rng

_CLASSES = (RelType.P2C, RelType.P2P)


class TopoScope(InferenceAlgorithm):
    """VP-bootstrapping ensemble with a Bayes arbiter."""

    name = "toposcope"

    def __init__(
        self,
        n_groups: Optional[int] = None,
        agreement_threshold: float = 0.75,
        ixps: Optional[IXPRegistry] = None,
        seed: int = 20,
        smoothing: float = 0.5,
    ) -> None:
        if n_groups is not None and n_groups < 2:
            raise ValueError("TopoScope needs at least two VP groups")
        #: ``None`` sizes groups adaptively (about 20 VPs per group, at
        #: least 2 and at most 8 groups) so each group retains enough
        #: visibility for the base inference to be meaningful.
        self.n_groups = n_groups
        self.agreement_threshold = agreement_threshold
        self.ixps = ixps
        self.seed = seed
        self.smoothing = smoothing
        self.clique_: List[int] = []
        self.vote_share_: Dict[LinkKey, float] = {}

    # ------------------------------------------------------------------
    def infer(self, corpus: PathCorpus) -> RelationshipSet:
        full_asrank = ASRank()
        full_rels = full_asrank.infer(corpus)
        self.clique_ = list(full_asrank.clique_)

        votes = self._group_votes(corpus)
        confident, uncertain = self._reconcile(corpus, votes)

        # Start from the full-view base inference; strong cross-group
        # majorities override it (that is the de-fragmentation payoff),
        # while split votes leave the full-view label in place — a lone
        # disagreeing group is noise, not signal.
        labels: Dict[LinkKey, RelType] = {}
        for key in corpus.visible_links():
            base = full_rels.rel_of(*key)
            labels[key] = RelType.P2P if base is RelType.P2P else RelType.P2C
        labels.update(confident)

        # Arbiter: links no group could judge at all (never visible in a
        # sub-corpus with context) go to a Bayes classifier trained on
        # the confident majority votes.
        no_vote = [key for key in uncertain if not votes.get(key)]
        if no_vote:
            extractor = LinkFeatureExtractor(corpus, self.clique_, ixps=self.ixps)
            features = {key: extractor.discrete(key) for key in labels}
            model = self._fit(confident, features)
            for key in no_vote:
                labels[key] = self._classify(model, features[key])

        return self._assemble(labels, full_rels, corpus)

    # ------------------------------------------------------------------
    def _group_votes(
        self, corpus: PathCorpus
    ) -> Dict[LinkKey, List[RelType]]:
        """Stage 1+2: per-group base inference votes per link."""
        rng = child_rng(self.seed, "toposcope.groups")
        vps = sorted(corpus.vantage_points)
        n_groups = self.n_groups
        if n_groups is None:
            n_groups = max(2, min(8, len(vps) // 20))
        order = list(rng.permutation(len(vps)))
        groups: List[Set[int]] = [set() for _ in range(n_groups)]
        for position, vp_index in enumerate(order):
            groups[position % n_groups].add(vps[int(vp_index)])
        votes: Dict[LinkKey, List[RelType]] = {}
        for group in groups:
            if not group:
                continue
            sub = filter_by_vps(corpus, group)
            if not len(sub):
                continue
            sub_rels = ASRank().infer(sub)
            for key, rel, _provider in sub_rels.items():
                cls = RelType.P2P if rel is RelType.P2P else RelType.P2C
                votes.setdefault(key, []).append(cls)
        return votes

    def _reconcile(
        self, corpus: PathCorpus, votes: Dict[LinkKey, List[RelType]]
    ) -> Tuple[Dict[LinkKey, RelType], List[LinkKey]]:
        """Stage 3: strong majorities become confident labels."""
        confident: Dict[LinkKey, RelType] = {}
        uncertain: List[LinkKey] = []
        for key in corpus.visible_links():
            link_votes = votes.get(key, [])
            if not link_votes:
                uncertain.append(key)
                continue
            n_p2p = sum(1 for v in link_votes if v is RelType.P2P)
            share = max(n_p2p, len(link_votes) - n_p2p) / len(link_votes)
            majority = (
                RelType.P2P if n_p2p * 2 >= len(link_votes) else RelType.P2C
            )
            self.vote_share_[key] = share
            if share >= self.agreement_threshold and len(link_votes) >= 2:
                confident[key] = majority
            else:
                uncertain.append(key)
        return confident, uncertain

    # ------------------------------------------------------------------
    def _fit(
        self,
        confident: Dict[LinkKey, RelType],
        features: Dict[LinkKey, DiscreteFeatures],
    ) -> Dict:
        priors = {cls: self.smoothing for cls in _CLASSES}
        n_fields = len(DiscreteFeatures.FIELD_NAMES)
        conditionals: List[Dict[Tuple[RelType, int], float]] = [
            {} for _ in range(n_fields)
        ]
        for key, cls in confident.items():
            priors[cls] += 1
            for field_index, value in enumerate(features[key].as_tuple()):
                slot = (cls, value)
                table = conditionals[field_index]
                table[slot] = table.get(slot, 0.0) + 1.0
        total = sum(priors.values())
        return {
            "log_priors": {
                cls: math.log(priors[cls] / total) for cls in _CLASSES
            },
            "conditionals": conditionals,
            "class_totals": priors,
        }

    def _classify(self, model: Dict, feats: DiscreteFeatures) -> RelType:
        best_cls = RelType.P2C
        best_score = -math.inf
        for cls in _CLASSES:
            score = model["log_priors"][cls]
            class_total = model["class_totals"][cls]
            for field_index, value in enumerate(feats.as_tuple()):
                count = model["conditionals"][field_index].get((cls, value), 0.0)
                score += math.log(
                    (count + self.smoothing) / (class_total + self.smoothing * 16)
                )
            if score > best_score:
                best_score = score
                best_cls = cls
        return best_cls

    def _assemble(
        self,
        labels: Dict[LinkKey, RelType],
        full_rels: RelationshipSet,
        corpus: PathCorpus,
    ) -> RelationshipSet:
        degrees = corpus.transit_degrees()
        clique_set = set(self.clique_)
        rels = RelationshipSet()
        for key, cls in labels.items():
            a, b = key
            if a in clique_set and b in clique_set:
                rels.set_p2p(a, b)
                continue
            if cls is RelType.P2P:
                rels.set_p2p(a, b)
                continue
            provider = full_rels.provider_of(a, b)
            if provider is None:
                provider = a if degrees.get(a, 0) >= degrees.get(b, 0) else b
            rels.set_p2c(provider, b if provider == a else a)
        return rels

    # ------------------------------------------------------------------
    # stage 5 (extension): hidden-link prediction
    # ------------------------------------------------------------------
    def predict_hidden_links(
        self,
        corpus: PathCorpus,
        max_predictions: int = 500,
    ) -> List[LinkKey]:
        """Propose plausible but unobserved peering links.

        Candidates are pairs of ASes co-located at an IXP where both
        already peer visibly with at least two other members of that
        IXP; ranked by how many IXPs they share.  Requires an IXP
        registry.
        """
        if self.ixps is None:
            return []
        visible = set(corpus.visible_links())
        scored: List[Tuple[int, LinkKey]] = []
        for ixp in self.ixps.ixps():
            members = sorted(m for m in ixp.members if corpus.node_degree(m) > 0)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    key = link_key(a, b)
                    if key in visible:
                        continue
                    common = len(self.ixps.common_ixps(a, b))
                    scored.append((common, key))
        scored.sort(key=lambda item: (-item[0], item[1]))
        seen: Set[LinkKey] = set()
        predictions: List[LinkKey] = []
        for _, key in scored:
            if key in seen:
                continue
            seen.add(key)
            predictions.append(key)
            if len(predictions) >= max_predictions:
                break
        return predictions


def infer_toposcope(
    corpus: PathCorpus, ixps: Optional[IXPRegistry] = None
) -> RelationshipSet:
    """Convenience wrapper used by examples and benchmarks."""
    return TopoScope(ixps=ixps).infer(corpus)
