"""Consensus across classifiers, and disagreement as a hardness signal.

The paper's closing argument (§7) is that chasing a single global
correctness number hides per-class regressions, and that future efforts
should be "evaluated against more diverse goals".  One cheap, useful
instrument in that direction: run several classifiers and look at where
they *disagree* — the §6 problem classes are exactly where the
algorithms split.

:class:`ConsensusClassifier` wraps any set of base algorithms:

* the consensus label is the majority vote (ties break towards the
  first algorithm, conventionally ASRank);
* :attr:`disagreement_` records the minority share per link, a
  zero-cost hardness score;
* :func:`disagreement_by_class` aggregates it per link class, which the
  benchmarks use to show that T1-TR & friends are exactly the splits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.datasets.asrel import RelationshipSet
from repro.datasets.paths import PathCorpus
from repro.inference.base import InferenceAlgorithm
from repro.topology.graph import LinkKey, RelType


class ConsensusClassifier(InferenceAlgorithm):
    """Majority vote over a panel of base algorithms."""

    name = "consensus"

    def __init__(self, algorithms: Sequence[InferenceAlgorithm]) -> None:
        if len(algorithms) < 2:
            raise ValueError("consensus needs at least two base algorithms")
        self.algorithms = list(algorithms)
        #: minority-vote share per link, filled by :meth:`infer`.
        self.disagreement_: Dict[LinkKey, float] = {}
        #: the individual results, for inspection.
        self.member_results_: Dict[str, RelationshipSet] = {}

    def infer(self, corpus: PathCorpus) -> RelationshipSet:
        results: List[RelationshipSet] = []
        for algorithm in self.algorithms:
            rels = algorithm.infer(corpus)
            results.append(rels)
            self.member_results_[algorithm.name] = rels
        consensus = RelationshipSet()
        self.disagreement_ = {}
        for key in corpus.visible_links():
            votes_p2p = 0
            total = 0
            provider_votes: Dict[int, int] = {}
            for rels in results:
                rel = rels.rel_of(*key)
                if rel is None:
                    continue
                total += 1
                if rel is RelType.P2P:
                    votes_p2p += 1
                else:
                    provider = rels.provider_of(*key)
                    if provider is not None:
                        provider_votes[provider] = (
                            provider_votes.get(provider, 0) + 1
                        )
            if total == 0:
                continue
            majority_p2p = votes_p2p * 2 > total or (
                votes_p2p * 2 == total
                and results[0].rel_of(*key) is RelType.P2P
            )
            minority = min(votes_p2p, total - votes_p2p)
            self.disagreement_[key] = minority / total
            if majority_p2p:
                consensus.set_p2p(*key)
            else:
                provider = (
                    max(provider_votes, key=lambda p: (provider_votes[p], -p))
                    if provider_votes
                    else key[0]
                )
                customer = key[1] if provider == key[0] else key[0]
                consensus.set_p2c(provider, customer)
        return consensus

    # ------------------------------------------------------------------
    def contested_links(self, min_disagreement: float = 0.3) -> List[LinkKey]:
        """Links where a substantial minority dissents — candidates for
        manual/looking-glass investigation."""
        return sorted(
            key
            for key, share in self.disagreement_.items()
            if share >= min_disagreement
        )


def disagreement_by_class(
    disagreement: Dict[LinkKey, float],
    classifier: Callable[[LinkKey], Optional[str]],
) -> Dict[str, float]:
    """Mean disagreement per link class (0 = unanimous)."""
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for key, share in disagreement.items():
        label = classifier(key)
        if label is None:
            continue
        sums[label] = sums.get(label, 0.0) + share
        counts[label] = counts.get(label, 0) + 1
    return {label: sums[label] / counts[label] for label in sums}
