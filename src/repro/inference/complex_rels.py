"""Complex-relationship detection (Giotsas et al., IMC 2014).

The paper's §3.1/§4.2 argue that *partial-transit* and *hybrid*
relationships must be handled explicitly during validation — simple
P2C/P2P labels are ambiguous for them.  The paper's own future outlook
(§7) asks classifiers to do exactly that.  This module implements the
observable core of Giotsas et al.'s approach on top of any base
inference:

* **Partial transit**: a customer whose routes the provider exports to
  its own customers but *not* to its peers or providers.  Observable
  signature in a path corpus: the link carries a full customer-style
  route set towards one side, yet is never seen in any path whose
  collector-side context crosses the provider's peers or the clique —
  equivalently, every vantage point that observes the link sits inside
  the provider's (inferred) customer cone.
* **Hybrid relationships**: the link shows *conflicting* direction
  evidence across vantage points — some VPs see it used
  provider-to-customer, others see the same pair peering (the
  PoP-dependent case) — or conflicting validation labels exist.

Detection is deliberately conservative (high precision over recall):
the paper's complaint is validation treating complex links as simple,
so flagged links should really be complex.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datasets.asrel import RelationshipSet
from repro.datasets.customercone import recursive_customer_cones
from repro.datasets.paths import PathCorpus
from repro.topology.graph import LinkKey, RelType
from repro.validation.data import ValidationData


@dataclass(frozen=True)
class ComplexLink:
    """One link flagged as complex."""

    key: LinkKey
    kind: str  # "partial_transit" or "hybrid"
    #: For partial transit: the side inferred to be the provider.
    provider: Optional[int]
    #: Supporting evidence summary for reporting.
    evidence: str


@dataclass
class ComplexReport:
    """All complex links found in one corpus."""

    partial_transit: List[ComplexLink] = field(default_factory=list)
    hybrid: List[ComplexLink] = field(default_factory=list)

    def all_links(self) -> List[ComplexLink]:
        return self.partial_transit + self.hybrid

    def keys(self) -> Set[LinkKey]:
        return {c.key for c in self.all_links()}


class ComplexRelationshipDetector:
    """Flags partial-transit and hybrid candidates over a corpus."""

    def __init__(
        self,
        base_inference: RelationshipSet,
        clique: Sequence[int],
        min_visibility: int = 3,
        min_cone_size: int = 5,
    ) -> None:
        self.base = base_inference
        self.clique = set(clique)
        #: Links seen by fewer VPs than this produce no verdict.
        self.min_visibility = min_visibility
        #: Providers with tiny cones cannot be told apart from peers.
        self.min_cone_size = min_cone_size
        self._cones: Optional[Dict[int, Set[int]]] = None

    # ------------------------------------------------------------------
    def detect(
        self,
        corpus: PathCorpus,
        validation: Optional[ValidationData] = None,
    ) -> ComplexReport:
        """Run both detectors over every visible link."""
        report = ComplexReport()
        self._cones = recursive_customer_cones(self.base)
        direction_votes = self._direction_votes(corpus)
        for key in corpus.visible_links():
            if corpus.link_visibility(key) < self.min_visibility:
                continue
            partial = self._partial_transit_verdict(corpus, key, validation)
            if partial is not None:
                report.partial_transit.append(partial)
                continue
            hybrid = self._hybrid_verdict(key, direction_votes, validation)
            if hybrid is not None:
                report.hybrid.append(hybrid)
        return report

    # ------------------------------------------------------------------
    # partial transit
    # ------------------------------------------------------------------
    def _partial_transit_verdict(
        self,
        corpus: PathCorpus,
        key: LinkKey,
        validation: Optional[ValidationData],
    ) -> Optional[ComplexLink]:
        """Flag links whose observer set sits inside one endpoint's
        customer cone *and* whose community/validation evidence calls
        that endpoint the provider.

        The visibility signature alone (observers confined to one cone)
        is shared by ordinary peering — that ambiguity is exactly why
        ASRank fails on these links.  Giotsas et al. resolved it with
        extra data (BGP communities); we do the same: the cone side's
        tagged routes must claim a *customer* relationship (a P2C
        validation label naming it provider) while the path evidence
        shows peer-style restricted export.
        """
        assert self._cones is not None
        if validation is None or key not in validation:
            return None
        claimed_provider = validation.provider_claim(key)
        if claimed_provider is None:
            return None  # community data calls it peering: not partial
        a, b = key
        observers = corpus.vps_seeing(key)
        cone = self._cones.get(claimed_provider, set())
        if len(cone) < self.min_cone_size:
            return None
        customer = b if claimed_provider == a else a
        # Partial transit confines the link's visibility to the two
        # parties' own customer cones: the provider's customers receive
        # the customer's routes, and the customer's cone sees the full
        # table it buys.  Full transit is additionally observed from
        # *outside* both cones (other Tier-1s' feeds).
        allowed = (
            cone
            | self._cones.get(customer, set())
            | {claimed_provider, customer}
        )
        if not observers <= allowed:
            return None  # full transit: observed from outside the cones
        # The §6.1 signature completes with the base inference calling
        # the link P2P: restricted export starved it of the triplet
        # evidence a full-transit link would have.  (Links the base got
        # right as P2C need no complex handling anyway.)
        if self.base.rel_of(*key) is not RelType.P2P:
            return None
        # Partial transit is sold to networks that re-distribute; a
        # single-homed stub looks identical from path data alone.
        if not self.base.customers_map().get(customer):
            return None
        # And by the sellers at the top of the hierarchy.
        if claimed_provider not in self.clique:
            return None
        return ComplexLink(
            key=key,
            kind="partial_transit",
            provider=claimed_provider,
            evidence=(
                f"validated P2C (provider AS{claimed_provider}) but all "
                f"{len(observers)} observing VPs sit inside its customer "
                f"cone ({len(cone)} ASes)"
            ),
        )

    # ------------------------------------------------------------------
    # hybrid
    # ------------------------------------------------------------------
    def _direction_votes(
        self, corpus: PathCorpus
    ) -> Dict[LinkKey, Tuple[Set[int], Set[int]]]:
        """Per link: VPs whose paths used it left-to-right vs
        right-to-left (canonical key order)."""
        votes: Dict[LinkKey, Tuple[Set[int], Set[int]]] = {}
        for path in corpus.paths():
            vp = path[0]
            for left, right in zip(path, path[1:]):
                key = (left, right) if left < right else (right, left)
                forward = left == key[0]
                slot = votes.setdefault(key, (set(), set()))
                (slot[0] if forward else slot[1]).add(vp)
        return votes

    def _hybrid_verdict(
        self,
        key: LinkKey,
        direction_votes: Dict[LinkKey, Tuple[Set[int], Set[int]]],
        validation: Optional[ValidationData],
    ) -> Optional[ComplexLink]:
        """Flag links with PoP-dependent behaviour.

        Two signals, either suffices:

        * conflicting validation labels (the §4.2 multi-label entries);
        * the link is inferred P2C yet carries substantial best-path
          traffic in *both* directions from disjoint VP populations —
          transit links are overwhelmingly used provider-to-customer,
          so two-sided usage hints at a peering PoP somewhere.
        """
        if validation is not None and key in validation:
            if validation.is_multi_label(key):
                return ComplexLink(
                    key=key,
                    kind="hybrid",
                    provider=validation.provider_claim(key),
                    evidence="conflicting validation labels",
                )
        if self.base.rel_of(*key) is RelType.P2C:
            forward, backward = direction_votes.get(key, (set(), set()))
            smaller = min(len(forward), len(backward))
            larger = max(len(forward), len(backward))
            if smaller >= self.min_visibility and smaller >= 0.35 * larger:
                return ComplexLink(
                    key=key,
                    kind="hybrid",
                    provider=self.base.provider_of(*key),
                    evidence=(
                        f"two-sided usage: {len(forward)} vs "
                        f"{len(backward)} VPs"
                    ),
                )
        return None


def split_validation_for_complex(
    validation: ValidationData, report: ComplexReport
) -> Tuple[List[LinkKey], List[LinkKey]]:
    """Partition validated links into (simple, complex) — the explicit
    handling §4.2 and §7 call for: complex links go to a separate
    evaluation bucket instead of silently polluting the simple one."""
    complex_keys = report.keys()
    simple: List[LinkKey] = []
    complicated: List[LinkKey] = []
    for key in validation.links():
        (complicated if key in complex_keys else simple).append(key)
    return simple, complicated
