"""Gao's degree-based relationship inference (ToN 2001).

The original algorithm that framed the Internet as a customer-provider
hierarchy with valley-free paths.  For every AS path it locates the
*top provider* (the AS with the highest degree), treats every link
before it as customer-to-provider and every link after it as
provider-to-customer, and accumulates votes across all paths; links
with balanced conflicting votes, or whose endpoints have comparable
degrees at the top, become peers.

Included as the historical baseline: it predates clique inference and
transit degrees, so comparing its per-class error profile against
ASRank/ProbLink/TopoScope in the benchmarks shows what two decades of
refinement bought (and where it bought nothing).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.datasets.asrel import RelationshipSet
from repro.datasets.paths import PathCorpus
from repro.inference.base import InferenceAlgorithm
from repro.topology.graph import LinkKey, link_key


class GaoInference(InferenceAlgorithm):
    """The classic valley-free heuristic."""

    name = "gao"

    def __init__(self, peer_degree_ratio: float = 1.6) -> None:
        #: Endpoint degree ratio below which a conflicted top link is
        #: deemed a peering link (Gao's R parameter).
        self.peer_degree_ratio = peer_degree_ratio

    def infer(self, corpus: PathCorpus) -> RelationshipSet:
        degrees = corpus.node_degrees()
        #: (a, b) -> votes that a is the provider of b.
        provider_votes: Dict[Tuple[int, int], int] = {}
        top_link_votes: Dict[LinkKey, int] = {}
        for path in corpus.paths():
            if len(path) < 2:
                continue
            top_index = max(
                range(len(path)), key=lambda i: (degrees.get(path[i], 0), -i)
            )
            for i in range(len(path) - 1):
                left, right = path[i], path[i + 1]
                if i + 1 <= top_index:
                    # ascending: the right-hand AS provides transit.
                    pair = (right, left)
                else:
                    pair = (left, right)
                provider_votes[pair] = provider_votes.get(pair, 0) + 1
            if 0 < top_index < len(path):
                # The link that first touches the top AS is a peering
                # candidate when its endpoints are of comparable size.
                key = link_key(path[top_index - 1], path[top_index])
                top_link_votes[key] = top_link_votes.get(key, 0) + 1
        rels = RelationshipSet()
        for key in corpus.visible_links():
            a, b = key
            votes_ab = provider_votes.get((a, b), 0)
            votes_ba = provider_votes.get((b, a), 0)
            deg_a, deg_b = degrees.get(a, 0), degrees.get(b, 0)
            small, large = sorted((deg_a, deg_b))
            comparable = large <= self.peer_degree_ratio * max(1, small)
            often_top = top_link_votes.get(key, 0) > 0
            if comparable and often_top and min(votes_ab, votes_ba) > 0:
                rels.set_p2p(a, b)
            elif votes_ab > votes_ba:
                rels.set_p2c(provider=a, customer=b)
            elif votes_ba > votes_ab:
                rels.set_p2c(provider=b, customer=a)
            elif comparable:
                rels.set_p2p(a, b)
            else:
                provider = a if deg_a >= deg_b else b
                rels.set_p2c(provider, b if provider == a else a)
        return rels


def infer_gao(corpus: PathCorpus) -> RelationshipSet:
    """Convenience wrapper used by examples and benchmarks."""
    return GaoInference().infer(corpus)
