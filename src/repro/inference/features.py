"""Per-link features.

Two consumers:

* the probabilistic/ensemble classifiers (ProbLink, TopoScope) use the
  discretised features via :class:`LinkFeatureExtractor.discrete`;
* the Appendix C benchmark extracts the paper's twelve candidate
  metrics for identifying further groups of "hard links"
  (:meth:`LinkFeatureExtractor.appendix_c`).

All features derive from public data only: the path corpus, public IXP
membership (PeeringDB-like), public prefix counts, and public behaviour
lists (MANRS, serial-hijacker studies).  Feature #11 (common *peering
facilities*) is approximated by IXP co-membership because the simulator
does not model physical facilities; DESIGN.md records the substitution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

import numpy as np

from repro.datasets.asrel import RelationshipSet
from repro.datasets.customercone import ppdc_sizes
from repro.datasets.paths import PathCorpus
from repro.inference.base import distance_to_clique
from repro.topology.graph import LinkKey, RelType
from repro.topology.ixp import IXPRegistry


def _log_bucket(value: int) -> int:
    """0, 1, 2, ... for value ranges 0, 1, 2-3, 4-7, 8-15, ..."""
    if value <= 0:
        return 0
    return value.bit_length()


def _ratio_bucket(a: int, b: int) -> int:
    """Symmetric log-ratio bucket in [-4, 4] of two degrees."""
    ratio = math.log2((a + 1) / (b + 1))
    return max(-4, min(4, int(round(ratio / 2))))


def _apply_bucket(
    values: np.ndarray, bucket: Callable[[int], int]
) -> np.ndarray:
    """Apply a Python bucket function elementwise via its distinct
    values — the float/rounding semantics stay exactly the scalar
    function's (no numpy reimplementation), but the call count drops
    from one per link to one per distinct value."""
    unique, inverse = np.unique(values, return_inverse=True)
    mapped = np.fromiter(
        (bucket(value) for value in unique.tolist()),
        dtype=np.int64,
        count=len(unique),
    )
    return mapped[inverse]


@dataclass(frozen=True)
class DiscreteFeatures:
    """The categorical feature vector used by the Bayes classifiers."""

    visibility_bucket: int
    degree_ratio_bucket: int
    clique_distance: int
    vp_incident: bool
    stub_incident: bool
    common_ixp_bucket: int

    def as_tuple(self) -> Tuple[int, ...]:
        return (
            self.visibility_bucket,
            self.degree_ratio_bucket,
            self.clique_distance,
            int(self.vp_incident),
            int(self.stub_incident),
            self.common_ixp_bucket,
        )

    #: Names aligned with :meth:`as_tuple`, for reporting.
    FIELD_NAMES = (
        "visibility",
        "degree_ratio",
        "clique_distance",
        "vp_incident",
        "stub_incident",
        "common_ixps",
    )


class LinkFeatureExtractor:
    """Computes per-link features over one corpus."""

    def __init__(
        self,
        corpus: PathCorpus,
        clique: Iterable[int],
        ixps: Optional[IXPRegistry] = None,
        prefix_counts: Optional[Mapping[int, int]] = None,
        address_counts: Optional[Mapping[int, int]] = None,
        manrs: Optional[Set[int]] = None,
        hijackers: Optional[Set[int]] = None,
    ) -> None:
        self.corpus = corpus
        self.clique = sorted(clique)
        self.ixps = ixps
        self.prefix_counts = dict(prefix_counts or {})
        self.address_counts = dict(address_counts or {})
        self.manrs = set(manrs or ())
        self.hijackers = set(hijackers or ())
        self._transit_degrees = corpus.transit_degrees()
        self._clique_distance = distance_to_clique(corpus, self.clique)
        self._vps = corpus.vantage_points

    # ------------------------------------------------------------------
    # classifier features
    # ------------------------------------------------------------------
    def discrete(self, key: LinkKey) -> DiscreteFeatures:
        a, b = key
        deg_a = self._transit_degrees.get(a, 0)
        deg_b = self._transit_degrees.get(b, 0)
        common_ixps = len(self.ixps.common_ixps(a, b)) if self.ixps else 0
        return DiscreteFeatures(
            visibility_bucket=_log_bucket(self.corpus.link_visibility(key)),
            degree_ratio_bucket=abs(_ratio_bucket(deg_a, deg_b)),
            clique_distance=min(
                4,
                min(
                    self._clique_distance.get(a, 5),
                    self._clique_distance.get(b, 5),
                ),
            ),
            vp_incident=a in self._vps or b in self._vps,
            stub_incident=min(deg_a, deg_b) == 0,
            common_ixp_bucket=min(2, common_ixps),
        )

    def discrete_all(self) -> Dict[LinkKey, DiscreteFeatures]:
        """Discretised features for every visible link.

        On a columnar corpus the numeric columns are computed as array
        passes; the exact Python bucket functions are then applied to
        the (few) distinct values, so the result is byte-identical to
        calling :meth:`discrete` per link — which remains the fallback
        for legacy-layout corpora.
        """
        index = self.corpus.columnar_index()
        if index is None:
            return {
                key: self.discrete(key)
                for key in self.corpus.visible_links()
            }
        links = self.corpus.visible_links()
        if not links:
            return {}
        lo, hi = index.link_endpoint_arrays()
        transit = index.transit_degree_array()
        deg_a = transit[index.as_index_of(lo)]
        deg_b = transit[index.as_index_of(hi)]
        visibility = _apply_bucket(
            index.link_visibility_counts(), _log_bucket
        )
        ratio = _apply_bucket(
            (deg_a.astype(np.int64) << 32) | deg_b.astype(np.int64),
            lambda packed: abs(
                _ratio_bucket(packed >> 32, packed & 0xFFFFFFFF)
            ),
        )
        distance = np.full(index.n_ases, 5, dtype=np.int64)
        if self._clique_distance:
            known = np.fromiter(
                self._clique_distance.keys(),
                dtype=np.uint32,
                count=len(self._clique_distance),
            )
            distance[index.as_index_of(known)] = np.fromiter(
                self._clique_distance.values(),
                dtype=np.int64,
                count=len(self._clique_distance),
            )
        clique_distance = np.minimum(
            4,
            np.minimum(
                distance[index.as_index_of(lo)],
                distance[index.as_index_of(hi)],
            ),
        )
        vp_list = sorted(self._vps)
        vp_arr = np.fromiter(vp_list, dtype=np.uint32, count=len(vp_list))
        vp_incident = np.isin(lo, vp_arr) | np.isin(hi, vp_arr)
        stub_incident = np.minimum(deg_a, deg_b) == 0
        if self.ixps is not None:
            common = self.ixps.common_ixps
            # Per-link set intersection through the IxpTable API; links
            # here is the deduplicated link set, not the route corpus.
            ixp_buckets = [  # repro: noqa[PERF001]
                min(2, len(common(a, b))) for a, b in links
            ]
        else:
            ixp_buckets = [0] * len(links)
        rows = zip(
            links,
            visibility.tolist(),
            ratio.tolist(),
            clique_distance.tolist(),
            vp_incident.tolist(),
            stub_incident.tolist(),
            ixp_buckets,
        )
        return {
            key: DiscreteFeatures(
                visibility_bucket=vis,
                degree_ratio_bucket=rat,
                clique_distance=dist,
                vp_incident=vp,
                stub_incident=stub,
                common_ixp_bucket=ixp,
            )
            for key, vis, rat, dist, vp, stub, ixp in rows
        }

    # ------------------------------------------------------------------
    # Appendix C candidate features
    # ------------------------------------------------------------------
    def appendix_c(
        self, key: LinkKey, rels: Optional[RelationshipSet] = None
    ) -> Dict[str, float]:
        """The twelve candidate metrics of the paper's Appendix C.

        ``rels`` enables the PPDC-based feature (#9); without it the
        feature is reported as 0.
        """
        a, b = key
        corpus = self.corpus
        origins = corpus.origins_via(key)
        n_prefixes_via = sum(self.prefix_counts.get(o, 1) for o in origins)
        n_addresses_via = sum(self.address_counts.get(o, 256) for o in origins)
        originated = {o for o in origins if o in key}
        n_prefixes_originated = sum(self.prefix_counts.get(o, 1) for o in originated)
        n_addresses_originated = sum(
            self.address_counts.get(o, 256) for o in originated
        )
        deg_a = self._transit_degrees.get(a, 0)
        deg_b = self._transit_degrees.get(b, 0)
        if rels is not None:
            ppdc = ppdc_sizes(corpus, rels)
            ppdc_a, ppdc_b = ppdc.get(a, 0), ppdc.get(b, 0)
            rel_ppdc_diff = abs(ppdc_a - ppdc_b) / max(1, max(ppdc_a, ppdc_b))
        else:
            rel_ppdc_diff = 0.0
        common_ixps = len(self.ixps.common_ixps(a, b)) if self.ixps else 0
        behaviour = 0
        if a in self.manrs or b in self.manrs:
            behaviour += 1
        if a in self.hijackers or b in self.hijackers:
            behaviour -= 1
        return {
            # (1) visibility over time: one-snapshot proxy — the share
            # of vantage points observing the link.
            "visibility_share": corpus.link_visibility(key)
            / max(1, len(self._vps)),
            # (2)/(3) prefixes and addresses redistributed via the link.
            "prefixes_via": float(n_prefixes_via),
            "addresses_via": float(n_addresses_via),
            # (4)/(5) prefixes and addresses originated through it.
            "prefixes_originated": float(n_prefixes_originated),
            "addresses_originated": float(n_addresses_originated),
            # (6) ASes that can observe the link.
            "observers": float(len(corpus.ases_left_of(key))),
            # (7) ASes that may receive traffic via the link.
            "receivers": float(len(corpus.ases_right_of(key))),
            # (8) relative transit-degree difference.
            "rel_transit_degree_diff": abs(deg_a - deg_b)
            / max(1, max(deg_a, deg_b)),
            # (9) relative PPDC-size difference.
            "rel_ppdc_diff": rel_ppdc_diff,
            # (10) common IXPs.
            "common_ixps": float(common_ixps),
            # (11) common peering facilities — approximated by IXPs.
            "common_facilities": float(common_ixps),
            # (12) behaviour score (MANRS participation vs hijacking).
            "behaviour_score": float(behaviour),
        }

    def appendix_c_all(
        self, rels: Optional[RelationshipSet] = None
    ) -> Dict[LinkKey, Dict[str, float]]:
        """Appendix C features for every visible link (PPDC computed
        once and reused)."""
        ppdc: Dict[int, int] = {}
        if rels is not None:
            ppdc = ppdc_sizes(self.corpus, rels)
        out: Dict[LinkKey, Dict[str, float]] = {}
        for key in self.corpus.visible_links():
            features = self.appendix_c(key, rels=None)
            if rels is not None:
                a, b = key
                ppdc_a, ppdc_b = ppdc.get(a, 0), ppdc.get(b, 0)
                features["rel_ppdc_diff"] = abs(ppdc_a - ppdc_b) / max(
                    1, max(ppdc_a, ppdc_b)
                )
            out[key] = features
        return out
