"""Shared infrastructure for the relationship-inference algorithms.

Every algorithm consumes **only public measurement data** — the
collected :class:`~repro.datasets.paths.PathCorpus` (plus, where the
original used it, public registries such as IXP membership) — and emits
a :class:`~repro.datasets.asrel.RelationshipSet`.  Nothing in this
package may touch the ground-truth graph; that separation is what makes
the downstream bias analysis meaningful.

The module also hosts the clique-detection step that ASRank introduced
and the follow-up algorithms reuse: pick the AS with the highest
transit degree, then greedily extend with the next-largest ASes that
are (visibly) interconnected with every member so far.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datasets.asrel import RelationshipSet
from repro.datasets.paths import PathCorpus
from repro.topology.graph import link_key


class InferenceAlgorithm(abc.ABC):
    """Interface implemented by ASRank, ProbLink, TopoScope, and Gao."""

    #: Human-readable algorithm name used in reports and tables.
    name: str = "abstract"

    @abc.abstractmethod
    def infer(self, corpus: PathCorpus) -> RelationshipSet:
        """Infer a relationship for every link visible in ``corpus``."""


def infer_clique(
    corpus: PathCorpus,
    max_candidates: int = 25,
    min_transit_degree: int = 1,
) -> List[int]:
    """ASRank-style clique inference.

    Candidates are the ``max_candidates`` ASes with the largest transit
    degree.  Among them the algorithm searches the maximum clique of the
    *visible* interconnection graph (Bron-Kerbosch — the candidate set
    is small, so this is cheap), weighting ties by summed transit
    degree.  Candidates that visibly have a provider — some AS appears
    immediately before them in a path *after* that path crossed a link
    between two clique members — are then pruned, and the clique is
    re-derived, mirroring Luckie et al.'s transit-free refinement.
    """
    degrees = corpus.transit_degrees()
    ranked = sorted(
        (asn for asn, deg in degrees.items() if deg >= min_transit_degree),
        key=lambda asn: (-degrees[asn], asn),
    )[:max_candidates]
    if not ranked:
        return []
    visible = set(corpus.visible_links())
    clique = _max_visible_clique(ranked, visible, degrees)
    # Transit-free refinement: drop members that demonstrably sit below
    # another clique member (a descending path segment enters them).
    providers_seen = _apparent_providers(corpus, set(clique))
    refined = [asn for asn in clique if not providers_seen.get(asn)]
    if refined and len(refined) < len(clique):
        clique = _max_visible_clique(
            [asn for asn in ranked if asn not in providers_seen or not providers_seen[asn]],
            visible,
            degrees,
        ) or refined
    return sorted(clique)


def _max_visible_clique(
    candidates: Sequence[int],
    visible: Set[Tuple[int, int]],
    degrees: Dict[int, int],
) -> List[int]:
    """Maximum clique among ``candidates`` over visible links, breaking
    size ties by summed transit degree (Bron-Kerbosch with pivoting)."""
    candidate_set = set(candidates)
    adjacency: Dict[int, Set[int]] = {asn: set() for asn in candidates}
    for asn in candidates:
        for other in candidates:
            if asn < other and link_key(asn, other) in visible:
                adjacency[asn].add(other)
                adjacency[other].add(asn)
    best: List[int] = []
    best_score = (-1, -1)

    def bron_kerbosch(r: Set[int], p: Set[int], x: Set[int]) -> None:
        nonlocal best, best_score
        if not p and not x:
            score = (len(r), sum(degrees.get(a, 0) for a in r))
            if score > best_score:
                best_score = score
                best = sorted(r)
            return
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda a: len(adjacency[a] & p))
        for v in sorted(p - adjacency[pivot]):
            bron_kerbosch(r | {v}, p & adjacency[v], x & adjacency[v])
            p = p - {v}
            x = x | {v}

    bron_kerbosch(set(), set(candidate_set), set())
    return best


def _apparent_providers(
    corpus: PathCorpus, clique: Set[int]
) -> Dict[int, Set[int]]:
    """For each tentative clique member: ASes observed as its provider.

    Evidence: a path crosses a link between two *other* tentative clique
    members (an apex) and later enters the member — the AS immediately
    before it then provides transit to it.  Thin wrapper over
    :meth:`~repro.datasets.paths.PathCorpus.apparent_providers`, which
    runs as one vectorized scan on a columnar corpus.
    """
    return corpus.apparent_providers(clique)


def transit_degree_rank(corpus: PathCorpus) -> Dict[int, int]:
    """Dense rank of every visible AS by transit degree (0 = largest)."""
    degrees = corpus.transit_degrees()
    ordered = sorted(degrees, key=lambda asn: (-degrees[asn], asn))
    return {asn: rank for rank, asn in enumerate(ordered)}


def distance_to_clique(corpus: PathCorpus, clique: Sequence[int]) -> Dict[int, int]:
    """Hop distance from every visible AS to the nearest clique member,
    measured over the *visible* adjacency (a ProbLink feature)."""
    adjacency: Dict[int, Set[int]] = {}
    for a, b in corpus.visible_links():
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)
    distances: Dict[int, int] = {}
    frontier: List[int] = []
    for member in clique:
        if member in adjacency:
            distances[member] = 0
            frontier.append(member)
    depth = 0
    while frontier:
        depth += 1
        next_frontier: List[int] = []
        for asn in frontier:
            for neighbor in adjacency.get(asn, ()):
                if neighbor not in distances:
                    distances[neighbor] = depth
                    next_frontier.append(neighbor)
        frontier = next_frontier
    # Unreachable ASes get a sentinel one past the maximum depth.
    sentinel = depth + 1
    for asn in adjacency:
        distances.setdefault(asn, sentinel)
    return distances
