"""The validation-data compiler: merge sources, inject database dirt.

Mirrors the compilation pipeline of Luckie et al. (2013), which the
recent algorithms re-ran to get their "best-effort" validation sets:

1. **direct operator reports** — a small number of accurately reported
   relationships;
2. **RPSL/WHOIS policies** — partially stale;
3. **BGP community encodings** — the dominant source, with all the
   biases the extraction pipeline inherits from documentation culture
   and community propagation.

On top of the merged labels the compiler reproduces the dirt the
paper's §4.2 measured in the real data:

* relationships claimed with **AS_TRANS** (23456) and with **reserved
  ASNs** — IRR databases genuinely contain such junk;
* **multi-label entries** for hybrid (PoP-dependent) relationships: the
  documenting AS tags the same link differently at different PoPs, so
  several snapshots disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.bgp.communities import CommunityRegistry
from repro.datasets.paths import PathCorpus
from repro.topology.asn import AS_TRANS, RESERVED_RANGES
from repro.topology.generator import Topology
from repro.topology.graph import RelType
from repro.utils.rng import child_rng
from repro.validation.data import LabelSource, ValidationData, ValidationLabel
from repro.validation.documentation import DocumentationRegistry, build_documentation
from repro.validation.extractor import extract_community_labels
from repro.validation.rpsl import extract_rpsl_labels, generate_rpsl_records

if TYPE_CHECKING:
    from repro.config import ScenarioConfig


@dataclass
class CompiledValidation:
    """The raw (pre-cleaning) validation data plus its provenance."""

    data: ValidationData
    documentation: DocumentationRegistry
    n_direct_reports: int
    n_rpsl_records: int


def _merge(into: ValidationData, source: ValidationData) -> None:
    for key in source.links():
        for label in source.labels_of(key):
            into.add(key[0], key[1], label)


def _add_direct_reports(
    data: ValidationData, topology: Topology, config: "ScenarioConfig"
) -> int:
    """Source (i): operators accurately reporting some of their links."""
    rng = child_rng(config.seed, "validation.reports")
    links = [l for l in topology.graph.links() if l.rel is not RelType.S2S]
    n_reports = min(config.validation.n_direct_reports, len(links))
    if n_reports == 0:
        return 0
    chosen = rng.choice(len(links), size=n_reports, replace=False)
    for idx in chosen:
        link = links[int(idx)]
        if link.rel is RelType.P2C:
            label = ValidationLabel(
                rel=RelType.P2C,
                provider=link.provider,
                source=LabelSource.DIRECT_REPORT,
            )
        else:
            label = ValidationLabel(
                rel=RelType.P2P, provider=None, source=LabelSource.DIRECT_REPORT
            )
        data.add(link.provider, link.customer, label)
    return n_reports


def _inject_spurious_entries(
    data: ValidationData, topology: Topology, config: "ScenarioConfig"
) -> None:
    """Add the AS_TRANS / reserved-ASN junk §4.2 counts and removes."""
    rng = child_rng(config.seed, "validation.spurious")
    cfg = config.validation
    asns = topology.graph.asns()
    for _ in range(cfg.n_as_trans_entries):
        partner = asns[int(rng.integers(0, len(asns)))]
        rel = RelType.P2C if rng.random() < 0.7 else RelType.P2P
        provider = partner if rel is RelType.P2C else None
        data.add(
            partner,
            AS_TRANS,
            ValidationLabel(rel=rel, provider=provider, source=LabelSource.RPSL),
        )
    reserved_pool: List[int] = []
    for low, high in RESERVED_RANGES:
        if low == 0:
            continue
        reserved_pool.extend(range(low, min(low + 40, high + 1)))
    for _ in range(cfg.n_reserved_asn_entries):
        partner = asns[int(rng.integers(0, len(asns)))]
        reserved = reserved_pool[int(rng.integers(0, len(reserved_pool)))]
        if partner == reserved:
            continue
        rel = RelType.P2C if rng.random() < 0.7 else RelType.P2P
        provider = partner if rel is RelType.P2C else None
        data.add(
            partner,
            reserved,
            ValidationLabel(rel=rel, provider=provider, source=LabelSource.RPSL),
        )


def _add_hybrid_conflicts(data: ValidationData, topology: Topology) -> None:
    """Multi-label entries for hybrid links already in the data.

    If a hybrid link was validated at all, snapshots taken at different
    PoPs disagree, so the secondary relationship also shows up.
    """
    for link in topology.graph.links():
        if not link.is_hybrid:
            continue
        key = link.key
        if key not in data:
            continue
        secondary = link.hybrid_secondary
        assert secondary is not None
        if secondary is RelType.P2C:
            label = ValidationLabel(
                rel=RelType.P2C, provider=link.provider, source=LabelSource.COMMUNITY
            )
        else:
            label = ValidationLabel(
                rel=RelType.P2P, provider=None, source=LabelSource.COMMUNITY
            )
        data.add(key[0], key[1], label)


def compile_validation(
    topology: Topology,
    corpus: PathCorpus,
    communities: CommunityRegistry,
    config: "ScenarioConfig",
    documentation: Optional[DocumentationRegistry] = None,
) -> CompiledValidation:
    """Run the full compilation pipeline and return the raw data set."""
    if documentation is None:
        documentation = build_documentation(topology, communities, config)
    data = ValidationData()
    n_reports = _add_direct_reports(data, topology, config)
    rpsl_records = generate_rpsl_records(topology, config)
    _merge(data, extract_rpsl_labels(rpsl_records))
    _merge(data, extract_community_labels(corpus, documentation))
    _add_hybrid_conflicts(data, topology)
    _inject_spurious_entries(data, topology, config)
    return CompiledValidation(
        data=data,
        documentation=documentation,
        n_direct_reports=n_reports,
        n_rpsl_records=len(rpsl_records),
    )
