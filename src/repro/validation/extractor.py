"""Community-based validation extraction (Luckie et al.'s source (iii)).

The scraper walks every collected route that still carries communities.
For each community it

1. identifies the owner AS and checks that the owner **publicly
   documents** its encodings — otherwise the value is opaque;
2. decodes the value against the *published* codebook (which may be
   stale and therefore wrong);
3. locates the owner on the AS path; the tag describes the session the
   route was learned over, i.e. the link between the owner and the next
   AS towards the origin;
4. records the implied relationship label for that link.

This is deliberately the same procedure used to compile the real
"best-effort" data, including its failure modes: undocumented regions
produce nothing, stripped communities hide remote links, stale pages
produce wrong labels, and sibling links produce labels that must later
be filtered with AS2Org.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bgp.communities import Meaning
from repro.datasets.paths import PathCorpus
from repro.validation.data import LabelSource, ValidationData, ValidationLabel
from repro.validation.documentation import DocumentationRegistry
from repro.topology.graph import RelType


def _label_for_meaning(
    meaning: Meaning, tagger: int, learned_from: int
) -> Optional[ValidationLabel]:
    """Translate a decoded ingress tag into a relationship claim."""
    if meaning is Meaning.LEARNED_FROM_CUSTOMER:
        return ValidationLabel(
            rel=RelType.P2C, provider=tagger, source=LabelSource.COMMUNITY
        )
    if meaning is Meaning.LEARNED_FROM_PEER:
        return ValidationLabel(
            rel=RelType.P2P, provider=None, source=LabelSource.COMMUNITY
        )
    if meaning is Meaning.LEARNED_FROM_PROVIDER:
        return ValidationLabel(
            rel=RelType.P2C, provider=learned_from, source=LabelSource.COMMUNITY
        )
    return None  # action communities say nothing about relationships


def extract_community_labels(
    corpus: PathCorpus, documentation: DocumentationRegistry
) -> ValidationData:
    """Scrape relationship labels from the corpus's communities."""
    data = ValidationData()
    for route in corpus.routes_with_communities():
        position: Dict[int, int] = {asn: i for i, asn in enumerate(route.path)}
        for community in route.communities:
            owner = community[0]
            owner_pos = position.get(owner)
            if owner_pos is None or owner_pos >= len(route.path) - 1:
                # Owner not on the path (e.g. a community that leaked
                # further than its setter) or owner is the origin: the
                # tag cannot be attributed to a link.
                continue
            meaning = documentation.decode(community)
            if meaning is None:
                continue
            learned_from = route.path[owner_pos + 1]
            label = _label_for_meaning(meaning, owner, learned_from)
            if label is not None:
                data.add(owner, learned_from, label)
    return data
