"""Label quality & treatment (§4.2 of the paper).

The raw compiled validation data contains entries that must be removed
or handled with care before any evaluation:

* **spurious labels**: relationships with AS_TRANS (23456), which is a
  protocol placeholder rather than a network, and with reserved ASNs;
* **ambiguous (multi-label) entries**: links carrying conflicting
  relationship claims.  The paper shows that how these are treated
  silently changed published numbers, and distinguishes three policies
  (:class:`MultiLabelPolicy`);
* **sibling relationships**: links between ASes of the same
  organisation (per AS2Org), which validation should ignore unless the
  classifier handles siblings explicitly.

:func:`clean_validation` applies the full treatment and returns both
the cleaned data and a :class:`CleaningReport` whose counters map
one-to-one onto the numbers §4.2 reports for the real data (15 AS_TRANS
relationships, 112 reserved-ASN relationships, 246 multi-label entries,
210 sibling relationships).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.topology.asn import AS_TRANS, is_reserved
from repro.topology.graph import LinkKey, RelType
from repro.topology.orgs import OrgMap
from repro.validation.data import ValidationData, ValidationLabel


class MultiLabelPolicy(enum.Enum):
    """How to treat links with conflicting labels (§4.2).

    ``IGNORE``
        Drop the link from validation entirely — the paper's
        recommendation unless the classifier handles complex
        relationships explicitly.
    ``FIRST_P2P_ELSE_P2C``
        Treat the entry as P2P if its label list starts with P2P,
        otherwise as P2C.  With this policy the paper exactly matched
        the link counts published for TopoScope (2017/2018).
    ``ALWAYS_P2C``
        Treat every multi-label entry as P2C.  With this policy the
        paper matched the counts of the ProbLink publication (2017).
    """

    IGNORE = "ignore"
    FIRST_P2P_ELSE_P2C = "first_p2p"
    ALWAYS_P2C = "always_p2c"


@dataclass
class CleaningReport:
    """Counters of everything the cleaning pass touched."""

    n_as_trans_links: int = 0
    n_reserved_links: int = 0
    n_multi_label_links: int = 0
    n_multi_label_ases: int = 0
    n_sibling_links: int = 0
    n_kept_links: int = 0
    multi_label_policy: MultiLabelPolicy = MultiLabelPolicy.IGNORE

    def as_dict(self) -> Dict[str, int]:
        return {
            "as_trans_links": self.n_as_trans_links,
            "reserved_links": self.n_reserved_links,
            "multi_label_links": self.n_multi_label_links,
            "multi_label_ases": self.n_multi_label_ases,
            "sibling_links": self.n_sibling_links,
            "kept_links": self.n_kept_links,
        }


@dataclass
class CleanedValidation:
    """Per-link relationship ground truth usable for evaluation.

    ``rel_of`` / ``provider_of`` expose the final, unambiguous labels.
    """

    rels: Dict[LinkKey, Tuple[RelType, Optional[int]]]
    report: CleaningReport

    def __len__(self) -> int:
        return len(self.rels)

    def __contains__(self, key: LinkKey) -> bool:
        return key in self.rels

    def links(self) -> List[LinkKey]:
        return list(self.rels.keys())

    def rel_of(self, key: LinkKey) -> Optional[RelType]:
        entry = self.rels.get(key)
        return entry[0] if entry else None

    def provider_of(self, key: LinkKey) -> Optional[int]:
        entry = self.rels.get(key)
        return entry[1] if entry else None

    def counts(self) -> Dict[RelType, int]:
        out = {rel: 0 for rel in RelType}
        for rel, _ in self.rels.values():
            out[rel] += 1
        return out


def _resolve_multi_label(
    labels: List[ValidationLabel], policy: MultiLabelPolicy
) -> Optional[Tuple[RelType, Optional[int]]]:
    """Resolve a conflicting label list per the chosen policy."""
    if policy is MultiLabelPolicy.IGNORE:
        return None
    if policy is MultiLabelPolicy.FIRST_P2P_ELSE_P2C:
        if labels[0].rel is RelType.P2P:
            return (RelType.P2P, None)
        for label in labels:
            if label.rel is RelType.P2C:
                return (RelType.P2C, label.provider)
        return (labels[0].rel, labels[0].provider)
    # ALWAYS_P2C
    for label in labels:
        if label.rel is RelType.P2C:
            return (RelType.P2C, label.provider)
    return (RelType.P2C, labels[0].provider)


def clean_validation(
    raw: ValidationData,
    orgs: OrgMap,
    policy: MultiLabelPolicy = MultiLabelPolicy.IGNORE,
) -> CleanedValidation:
    """Apply the §4.2 treatment to raw validation data."""
    report = CleaningReport(multi_label_policy=policy)
    rels: Dict[LinkKey, Tuple[RelType, Optional[int]]] = {}
    multi_label_ases: Set[int] = set()
    for key in raw.links():
        a, b = key
        if a == AS_TRANS or b == AS_TRANS:
            report.n_as_trans_links += 1
            continue
        if is_reserved(a) or is_reserved(b):
            report.n_reserved_links += 1
            continue
        labels = raw.labels_of(key)
        distinct = {label.rel for label in labels}
        if len(distinct) > 1:
            report.n_multi_label_links += 1
            multi_label_ases.update(key)
            resolved = _resolve_multi_label(labels, policy)
            if resolved is None:
                continue
            rel, provider = resolved
        else:
            rel = labels[0].rel
            provider = next(
                (l.provider for l in labels if l.provider is not None), None
            )
        if orgs.are_siblings(a, b):
            report.n_sibling_links += 1
            continue
        rels[key] = (rel, provider)
    report.n_multi_label_ases = len(multi_label_ases)
    report.n_kept_links = len(rels)
    return CleanedValidation(rels=rels, report=report)


def count_sibling_links(links: List[LinkKey], orgs: OrgMap) -> int:
    """How many of ``links`` are sibling links per AS2Org — used for
    the paper's "2800 of the inferred relationships are siblings"."""
    return sum(1 for a, b in links if orgs.are_siblings(a, b))
