"""RPSL / WHOIS ``aut-num`` records (Luckie et al.'s source (ii)).

Operators can encode routing policy in RPSL inside their WHOIS
``aut-num`` object::

    aut-num: AS64500
    import:  from AS64496 accept ANY            # a provider
    export:  to AS64496 announce AS-64500-CONE
    import:  from AS64499 accept AS64499        # a peer

``import ... accept ANY`` towards a neighbour marks that neighbour as a
provider; symmetric customer-cone filters mark peers.  The databases
are voluntarily maintained and notoriously **stale**: a record written
years ago may describe a relationship that has since changed.  The
simulator generates records for a subset of (documenting-culture)
ASes, rots a configurable share of them, and extracts labels the way a
scraper would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.topology.generator import Topology
from repro.topology.graph import RelType
from repro.utils.rng import child_rng
from repro.validation.data import LabelSource, ValidationData, ValidationLabel

if TYPE_CHECKING:
    from repro.config import ScenarioConfig


@dataclass
class AutNumRecord:
    """One WHOIS aut-num object (only the policy lines we model)."""

    asn: int
    #: neighbour -> claimed relationship from this AS's point of view:
    #: "provider", "customer", or "peer".
    policy: Dict[int, str] = field(default_factory=dict)

    def to_rpsl(self) -> str:
        """Render the object in RPSL-ish text."""
        lines = [f"aut-num: AS{self.asn}"]
        for neighbor, kind in sorted(self.policy.items()):
            if kind == "provider":
                lines.append(f"import: from AS{neighbor} accept ANY")
                lines.append(f"export: to AS{neighbor} announce AS-{self.asn}-CONE")
            elif kind == "customer":
                lines.append(f"import: from AS{neighbor} accept AS-{neighbor}-CONE")
                lines.append(f"export: to AS{neighbor} announce ANY")
            else:  # peer
                lines.append(f"import: from AS{neighbor} accept AS-{neighbor}-CONE")
                lines.append(f"export: to AS{neighbor} announce AS-{self.asn}-CONE")
        return "\n".join(lines)


def parse_autnum(text: str) -> AutNumRecord:
    """Parse an RPSL aut-num object back into a record.

    The relationship is reconstructed from the import/export pattern:
    ``accept ANY`` -> that neighbour is a provider; ``announce ANY`` ->
    a customer; symmetric cone filters -> a peer.
    """
    asn: Optional[int] = None
    imports: Dict[int, str] = {}
    exports: Dict[int, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.lower().startswith("aut-num:"):
            asn = int(line.split(":", 1)[1].strip().lstrip("AS"))
        elif line.lower().startswith("import:"):
            parts = line.split()
            neighbor = int(parts[2].lstrip("AS"))
            imports[neighbor] = parts[4]
        elif line.lower().startswith("export:"):
            parts = line.split()
            neighbor = int(parts[2].lstrip("AS"))
            exports[neighbor] = parts[4]
    if asn is None:
        raise ValueError("aut-num object without aut-num attribute")
    record = AutNumRecord(asn=asn)
    for neighbor in imports:
        accepted = imports[neighbor]
        announced = exports.get(neighbor, "")
        if accepted == "ANY":
            record.policy[neighbor] = "provider"
        elif announced == "ANY":
            record.policy[neighbor] = "customer"
        else:
            record.policy[neighbor] = "peer"
    return record


def generate_rpsl_records(
    topology: Topology, config: "ScenarioConfig"
) -> List[AutNumRecord]:
    """Create aut-num objects, some fraction of them stale.

    A stale record describes a neighbour relationship that has since
    changed (here: a peer recorded as provider or vice versa).
    """
    rng = child_rng(config.seed, "validation.rpsl")
    cfg = config.validation
    records: List[AutNumRecord] = []
    graph = topology.graph
    for node in graph.nodes():
        # IRR maintenance follows the same documentation culture as
        # community encodings: region-skewed (RIPE DB vs the sparsely
        # populated LACNIC IRR) and transit-heavy.
        region_multiplier = (
            cfg.doc_region_multiplier[node.region] if node.region else 0.0
        )
        role_multiplier = 1.0 if node.role.is_transit else 0.3
        prob = cfg.rpsl_record_prob * region_multiplier * role_multiplier
        if rng.random() >= prob:
            continue
        record = AutNumRecord(asn=node.asn)
        for neighbor in sorted(graph.neighbors_of(node.asn)):
            link = graph.link(node.asn, neighbor)
            if link.rel is RelType.P2C:
                kind = "customer" if link.provider == node.asn else "provider"
            elif link.rel is RelType.P2P:
                kind = "peer"
            else:
                continue  # siblings share policy; no aut-num lines
            if rng.random() < cfg.rpsl_stale_prob:
                kind = {"customer": "peer", "provider": "peer", "peer": "provider"}[
                    kind
                ]
            record.policy[neighbor] = kind
        if record.policy:
            records.append(record)
    return records


def extract_rpsl_labels(records: List[AutNumRecord]) -> ValidationData:
    """Turn aut-num policies into validation labels."""
    data = ValidationData()
    for record in records:
        for neighbor, kind in record.policy.items():
            if kind == "provider":
                label = ValidationLabel(
                    rel=RelType.P2C, provider=neighbor, source=LabelSource.RPSL
                )
            elif kind == "customer":
                label = ValidationLabel(
                    rel=RelType.P2C, provider=record.asn, source=LabelSource.RPSL
                )
            else:
                label = ValidationLabel(
                    rel=RelType.P2P, provider=None, source=LabelSource.RPSL
                )
            data.add(record.asn, neighbor, label)
    return data
