"""The community-documentation publication model.

The "best-effort" validation data the paper scrutinises is scraped from
*publicly documented* BGP community encodings (IRR remarks, operator
websites).  Whether an AS documents its encodings is therefore the
gatekeeper of validation coverage — and documentation culture is wildly
uneven across regions and network sizes, which is the mechanism behind
the paper's Figure 1/2 coverage rows.

:class:`DocumentationRegistry` records, per documenting AS, the
**published** codebook.  Publication can be *stale*: the operator's page
may no longer match what the routers actually tag (the paper's §6.1
found one such case).  Staleness is modelled by swapping the published
customer/peer values, which makes every label extracted from that AS's
communities wrong in the most confusable way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Optional

from repro.bgp.communities import (
    Community,
    CommunityCodebook,
    CommunityRegistry,
    Meaning,
)
from repro.topology.generator import Topology
from repro.utils.rng import child_rng

if TYPE_CHECKING:
    from repro.config import ScenarioConfig


@dataclass(frozen=True)
class PublishedCodebook:
    """What the world believes an AS's communities mean."""

    asn: int
    values: Dict[Meaning, int]
    stale: bool

    def decode(self, community: Community) -> Optional[Meaning]:
        asn, value = community
        if asn != self.asn:
            return None
        for meaning, known in self.values.items():
            if known == value:
                return meaning
        return None


class DocumentationRegistry:
    """Which ASes publicly document their encodings, and what they say."""

    def __init__(self) -> None:
        self._published: Dict[int, PublishedCodebook] = {}

    def publish(self, codebook: PublishedCodebook) -> None:
        if codebook.asn in self._published:
            raise ValueError(f"AS{codebook.asn} already documented")
        self._published[codebook.asn] = codebook

    def documents(self, asn: int) -> bool:
        return asn in self._published

    def documenting_ases(self) -> Iterable[int]:
        return self._published.keys()

    def __len__(self) -> int:
        return len(self._published)

    def decode(self, community: Community) -> Optional[Meaning]:
        """Decode a community using only *published* knowledge.

        Communities of undocumented ASes are opaque to the scraper, no
        matter what they would have meant.
        """
        owner = community[0]
        published = self._published.get(owner)
        if published is None:
            return None
        return published.decode(community)

    def is_stale(self, asn: int) -> bool:
        published = self._published.get(asn)
        return bool(published and published.stale)


def build_documentation(
    topology: Topology,
    communities: CommunityRegistry,
    config: "ScenarioConfig",
) -> DocumentationRegistry:
    """Decide who documents, honouring the role/region probabilities."""
    rng = child_rng(config.seed, "validation.documentation")
    val_cfg = config.validation
    registry = DocumentationRegistry()
    for node in topology.graph.nodes():
        base = val_cfg.doc_prob_by_role[node.role.value]
        multiplier = (
            val_cfg.doc_region_multiplier[node.region] if node.region else 0.0
        )
        prob = min(1.0, base * multiplier)
        if rng.random() >= prob:
            continue
        actual = communities.codebook(node.asn)
        values = dict(actual.values)
        stale = bool(rng.random() < val_cfg.stale_encoding_prob)
        if stale:
            # The published page swaps the customer/peer tags relative
            # to what the routers really do.
            values[Meaning.LEARNED_FROM_CUSTOMER], values[Meaning.LEARNED_FROM_PEER] = (
                values[Meaning.LEARNED_FROM_PEER],
                values[Meaning.LEARNED_FROM_CUSTOMER],
            )
        registry.publish(
            PublishedCodebook(asn=node.asn, values=values, stale=stale)
        )
    return registry
