"""Validation-data compilation and cleaning (system S6 of DESIGN.md)."""

from repro.validation.cleaning import (
    CleanedValidation,
    CleaningReport,
    MultiLabelPolicy,
    clean_validation,
    count_sibling_links,
)
from repro.validation.compiler import CompiledValidation, compile_validation
from repro.validation.data import LabelSource, ValidationData, ValidationLabel
from repro.validation.documentation import (
    DocumentationRegistry,
    PublishedCodebook,
    build_documentation,
)
from repro.validation.extractor import extract_community_labels
from repro.validation.rpsl import (
    AutNumRecord,
    extract_rpsl_labels,
    generate_rpsl_records,
    parse_autnum,
)

__all__ = [
    "CleanedValidation",
    "CleaningReport",
    "MultiLabelPolicy",
    "clean_validation",
    "count_sibling_links",
    "CompiledValidation",
    "compile_validation",
    "LabelSource",
    "ValidationData",
    "ValidationLabel",
    "DocumentationRegistry",
    "PublishedCodebook",
    "build_documentation",
    "extract_community_labels",
    "AutNumRecord",
    "extract_rpsl_labels",
    "generate_rpsl_records",
    "parse_autnum",
]
