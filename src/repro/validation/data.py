"""Validation-data containers.

A :class:`ValidationData` maps AS links to the (possibly multiple)
relationship labels compiled for them.  Multiple *distinct* labels for
one link are exactly the "ambiguous label" entries of §4.2 — the
community data genuinely contains them (PoP-dependent hybrid
relationships, conflicting sources), and how they are treated changes
the validation numbers, so the container keeps every label with its
provenance instead of collapsing early.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.topology.graph import LinkKey, RelType, link_key


class LabelSource(enum.Enum):
    """Where a validation label came from (Luckie et al.'s sources)."""

    DIRECT_REPORT = "direct"
    RPSL = "rpsl"
    COMMUNITY = "community"


@dataclass(frozen=True)
class ValidationLabel:
    """One relationship claim about one link.

    ``provider`` carries the claimed provider for P2C labels and is
    ``None`` for P2P/S2S claims.
    """

    rel: RelType
    provider: Optional[int]
    source: LabelSource

    def __post_init__(self) -> None:
        if self.rel is RelType.P2C and self.provider is None:
            raise ValueError("P2C label requires a provider side")
        if self.rel is not RelType.P2C and self.provider is not None:
            raise ValueError("only P2C labels carry a provider side")


class ValidationData:
    """Link -> labels, in insertion order per link."""

    def __init__(self) -> None:
        self._labels: Dict[LinkKey, List[ValidationLabel]] = {}

    def add(self, a: int, b: int, label: ValidationLabel) -> None:
        """Attach a label to the (a, b) link; duplicates collapse."""
        key = link_key(a, b)
        existing = self._labels.setdefault(key, [])
        if label not in existing:
            existing.append(label)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, key: LinkKey) -> bool:
        return key in self._labels

    def links(self) -> Iterator[LinkKey]:
        return iter(self._labels.keys())

    def labels_of(self, key: LinkKey) -> List[ValidationLabel]:
        return list(self._labels.get(key, ()))

    def remove_link(self, key: LinkKey) -> None:
        self._labels.pop(key, None)

    def distinct_rels(self, key: LinkKey) -> Set[RelType]:
        return {label.rel for label in self._labels.get(key, ())}

    def is_multi_label(self, key: LinkKey) -> bool:
        """True when the link carries conflicting relationship claims."""
        return len(self.distinct_rels(key)) > 1

    def multi_label_links(self) -> List[LinkKey]:
        return [key for key in self._labels if self.is_multi_label(key)]

    def single_rel(self, key: LinkKey) -> Optional[RelType]:
        """The link's relationship if unambiguous, else ``None``."""
        rels = self.distinct_rels(key)
        if len(rels) == 1:
            return next(iter(rels))
        return None

    def provider_claim(self, key: LinkKey) -> Optional[int]:
        """The provider side claimed by the first P2C label, if any."""
        for label in self._labels.get(key, ()):
            if label.rel is RelType.P2C:
                return label.provider
        return None

    def first_label(self, key: LinkKey) -> Optional[ValidationLabel]:
        labels = self._labels.get(key)
        return labels[0] if labels else None

    def copy(self) -> "ValidationData":
        clone = ValidationData()
        clone._labels = {key: list(labels) for key, labels in self._labels.items()}
        return clone

    def counts_by_rel(self) -> Dict[RelType, int]:
        """Single-label links per relationship (multi-label excluded)."""
        out = {rel: 0 for rel in RelType}
        for key in self._labels:
            rel = self.single_rel(key)
            if rel is not None:
                out[rel] += 1
        return out

    def stats(self) -> Dict[str, int]:
        return {
            "n_links": len(self._labels),
            "n_labels": sum(len(v) for v in self._labels.values()),
            "n_multi_label": len(self.multi_label_links()),
        }
