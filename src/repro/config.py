"""Scenario configuration.

A :class:`ScenarioConfig` fully determines a synthetic Internet: the
topology (how many ASes per region and role, how they interconnect),
the measurement layer (route collectors and their vantage points), and
the validation layer (who documents their BGP community encodings, how
dirty the scraped databases are).  Build one with
:func:`ScenarioConfig.default` for the paper-scale scenario or
:func:`ScenarioConfig.small` for fast unit tests, then hand it to
:func:`repro.scenario.build_scenario`.

Everything is an explicit field so that the ablation benchmarks
(DESIGN.md §5) can vary one mechanism at a time.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import typing
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.topology.regions import Region


class ConfigError(ValueError):
    """A config dict failed schema validation.

    Raised with a precise message — the offending key, the expected
    type/range, and the accepted alternatives — so a bad scenario or
    attack spec fails at load time instead of deep inside a generator.
    """


def _canonical(value: Any) -> Any:
    """Recursively convert a config value into plain JSON-able data.

    Enum keys/values become their names, dataclasses become field
    dicts, tuples become lists.  Dict keys are stringified and sorted
    so the resulting JSON is independent of insertion order — the
    property the artifact cache's content addressing rests on.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, dict):
        converted = {str(_canonical(k)): _canonical(v) for k, v in value.items()}
        return dict(sorted(converted.items()))
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def _region_dict(af: float, ap: float, ar: float, l: float, r: float) -> Dict[Region, float]:
    """Shorthand for building per-region value tables."""
    return {
        Region.AFRINIC: af,
        Region.APNIC: ap,
        Region.ARIN: ar,
        Region.LACNIC: l,
        Region.RIPE: r,
    }


@dataclass
class TopologyConfig:
    """Knobs of the synthetic AS-level topology generator."""

    #: Total number of ASes (all regions, all roles).
    n_ases: int = 2500

    #: Fraction of ASes registered in each region.  Calibrated so the
    #: link-class shares come out close to Figure 1 of the paper
    #: (region-internal links dominate, RIPE largest).
    region_shares: Dict[Region, float] = field(
        default_factory=lambda: _region_dict(af=0.045, ap=0.125, ar=0.175, l=0.17, r=0.485)
    )

    #: Number of provider-free Tier-1 (clique) ASes per region.  Real
    #: Tier-1s cluster in the ARIN and RIPE regions.
    clique_per_region: Dict[Region, int] = field(
        default_factory=lambda: {
            Region.ARIN: 8,
            Region.RIPE: 6,
            Region.APNIC: 2,
        }
    )

    #: Number of hypergiants (large content providers) per region.
    hypergiants_per_region: Dict[Region, int] = field(
        default_factory=lambda: {
            Region.ARIN: 9,
            Region.RIPE: 4,
            Region.APNIC: 2,
        }
    )

    #: Fraction of (non-clique, non-hypergiant) ASes per transit tier;
    #: the remainder become stubs.
    large_transit_share: float = 0.02
    mid_transit_share: float = 0.07
    small_transit_share: float = 0.13

    #: Provider-count distribution: probability of an AS having 1, 2, or
    #: 3 providers (multi-homing).
    provider_count_probs: Tuple[float, float, float] = (0.45, 0.4, 0.15)

    #: Probability that a provider is chosen from region Y given the
    #: customer sits in region X.  Rows must sum to 1.
    provider_region_matrix: Dict[Region, Dict[Region, float]] = field(
        default_factory=lambda: {
            Region.AFRINIC: _region_dict(af=0.52, ap=0.03, ar=0.08, l=0.0, r=0.37),
            Region.APNIC: _region_dict(af=0.0, ap=0.62, ar=0.16, l=0.0, r=0.22),
            Region.ARIN: _region_dict(af=0.0, ap=0.03, ar=0.80, l=0.01, r=0.16),
            Region.LACNIC: _region_dict(af=0.0, ap=0.01, ar=0.18, l=0.74, r=0.07),
            Region.RIPE: _region_dict(af=0.01, ap=0.03, ar=0.07, l=0.005, r=0.885),
        }
    )

    #: Probability that a bilateral/IXP peering partner is chosen within
    #: the AS's own region ("keep local traffic local").
    peer_same_region_prob: float = 0.82

    #: Mean number of peers established per transit tier (Poisson).
    peers_mean_small: float = 5.0
    peers_mean_mid: float = 10.0
    peers_mean_large: float = 16.0
    peers_mean_hypergiant: float = 45.0
    peers_mean_stub: float = 0.45

    #: Fraction of large-transit ASes that obtain settlement-free
    #: peering with individual clique members (T1-TR peering links).
    t1_peering_prob_large: float = 0.22
    t1_peering_prob_mid: float = 0.04

    #: Number of special-business stubs (research networks, anycast DNS,
    #: CDNs, cloud on-ramps) that peer directly with clique members —
    #: the ground truth behind the paper's S-T1 discussion.
    special_stub_count: int = 24
    special_stub_t1_peers: Tuple[int, int] = (2, 5)

    #: Number of IXPs per region (scaled by region share).
    ixps_per_1000_ases: float = 4.0

    #: Fraction of multi-AS organisations; extra sibling ASes per org.
    multi_as_org_share: float = 0.045
    max_siblings_per_org: int = 4

    #: Probability that a sibling pair is directly interconnected (S2S
    #: link); such links contaminate inference and validation data.
    sibling_link_prob: float = 0.75

    #: One clique member is designated the "Cogent-like" AS: a large
    #: share of its transit-AS customers buy *partial transit* (routes
    #: exported only to customers, never to peers — community 174:990
    #: in the real world).  Other clique members show the behaviour too,
    #: but rarely.
    cogent_partial_transit_prob: float = 0.45
    clique_partial_transit_prob: float = 0.04

    #: Probability that a transit-to-transit peering link is "hybrid"
    #: (different relationship at different PoPs — Giotsas et al. 2014).
    hybrid_link_prob: float = 0.012

    #: Fraction of ASes whose ASN is 32-bit only (affects AS_TRANS
    #: plumbing realism and the delegation files).
    asn_32bit_share: float = 0.35

    #: Fraction of ASNs transferred between regions after the initial
    #: IANA block assignment (exercises the delegation refinement).
    inter_rir_transfer_share: float = 0.015


@dataclass
class MeasurementConfig:
    """Route collectors and vantage-point placement."""

    #: Number of ASes peering with the route collectors.
    n_vantage_points: int = 160

    #: Relative weight of picking a VP from each region; real collector
    #: ecosystems (RouteViews, RIPE RIS) are RIPE/ARIN-heavy.
    vp_region_weights: Dict[Region, float] = field(
        default_factory=lambda: _region_dict(af=0.02, ap=0.10, ar=0.30, l=0.03, r=0.55)
    )

    #: Relative weight of picking a VP from each role class.  Collector
    #: feeds come overwhelmingly from transit networks.
    vp_role_weights: Dict[str, float] = field(
        default_factory=lambda: {
            # Essentially every Tier-1 feeds RouteViews/RIS, hence the
            # overwhelming clique weight.
            "clique": 200.0,
            "large_transit": 8.0,
            "mid_transit": 4.0,
            "small_transit": 1.5,
            "stub": 0.15,
            "hypergiant": 0.5,
        }
    )

    #: Probability that a VP is a full feeder (exports its whole best
    #: path table); otherwise it exports customer routes only.
    full_feed_prob: float = 0.72

    #: Probability that an AS strips (does not propagate) informational
    #: communities it receives before re-exporting a route.
    community_strip_prob: float = 0.3

    #: Number of additional collection rounds with simulated routing
    #: churn (random link failures) merged into the corpus.  A real
    #: monthly corpus contains paths from many routing states, which is
    #: what gives backup transit links their triplet evidence; a single
    #: converged snapshot systematically lacks it.
    n_churn_rounds: int = 6

    #: Per-link failure probability in each churn round.
    churn_link_failure_prob: float = 0.05


@dataclass
class ValidationConfig:
    """The community-documentation publication model and database dirt."""

    #: Probability that an AS of a given role publicly documents its BGP
    #: community encodings (in IRR remarks / on its website).
    doc_prob_by_role: Dict[str, float] = field(
        default_factory=lambda: {
            "clique": 0.92,
            "large_transit": 0.20,
            "mid_transit": 0.055,
            "small_transit": 0.022,
            "stub": 0.0035,
            "hypergiant": 0.08,
        }
    )

    #: Regional multiplier on the documentation probability.  This is
    #: the mechanism behind Figure 1's coverage row: community
    #: documentation culture is strong around ARIN/RIPE operator
    #: communities and essentially absent in the LACNIC region's data.
    doc_region_multiplier: Dict[Region, float] = field(
        default_factory=lambda: _region_dict(af=0.15, ap=0.35, ar=1.3, l=0.008, r=0.7)
    )

    #: Probability that a documented encoding is stale/wrong, yielding
    #: an incorrect validation label (§6.1 found one such case).
    stale_encoding_prob: float = 0.004

    #: Raw-database dirt injected before cleaning (§4.2 counts these):
    #: relationships claimed with AS_TRANS and with reserved ASNs.
    n_as_trans_entries: int = 15
    n_reserved_asn_entries: int = 112

    #: Extra stale RPSL/WHOIS-derived labels (import/export lines that
    #: no longer match reality).
    rpsl_record_prob: float = 0.06
    rpsl_stale_prob: float = 0.08

    #: Number of relationships reported directly by operators (the
    #: paper's source (i)); sampled uniformly from true links.
    n_direct_reports: int = 60


# ---------------------------------------------------------------------------
# adversarial layer (policy deployments + attack events)
# ---------------------------------------------------------------------------

#: Security policies the registry in :mod:`repro.adversarial.policies`
#: implements.  Kept here (not imported from the registry) so config
#: validation has no dependency on the adversarial package.
SECURITY_POLICY_NAMES: Tuple[str, ...] = (
    "gao_rexford", "rpki", "aspa", "leak_prone",
)

#: How a policy's partial-deployment mask is drawn.
DEPLOYMENT_STRATEGIES: Tuple[str, ...] = ("top_cone", "random", "explicit")


def _check_keys(
    data: Dict[str, Any], allowed: Tuple[str, ...], context: str
) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ConfigError(
            f"{context}: unknown key(s) {', '.join(repr(k) for k in unknown)}"
            f" (accepted: {', '.join(allowed)})"
        )


def _check_int(data: Dict[str, Any], key: str, context: str,
               default: int = 0, minimum: int = 0) -> int:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(
            f"{context}: {key!r} must be an integer, "
            f"got {type(value).__name__} ({value!r})"
        )
    if value < minimum:
        raise ConfigError(
            f"{context}: {key!r} must be >= {minimum}, got {value}"
        )
    return value


def _check_fraction(data: Dict[str, Any], key: str, context: str,
                    default: float = 0.0) -> float:
    value = data.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigError(
            f"{context}: {key!r} must be a number in [0, 1], "
            f"got {type(value).__name__} ({value!r})"
        )
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigError(
            f"{context}: {key!r} must be within [0, 1], got {value}"
        )
    return value


@dataclass
class PolicyDeployment:
    """One security policy and the ASes that deploy it.

    ``strategy`` picks the deployment mask: ``top_cone`` deploys at the
    ``top_n`` ASes by customer-cone size (the "big networks adopt
    first" model), ``random`` at a seeded ``fraction`` of all ASes, and
    ``explicit`` at exactly ``ases``.  Masks are drawn from labelled
    child RNG streams of the scenario seed, so a deployment is as
    reproducible and cache-keyed as everything else in a config.
    """

    policy: str = "rpki"
    strategy: str = "random"
    top_n: int = 0
    fraction: float = 0.0
    ases: Tuple[int, ...] = ()

    @classmethod
    def from_dict(cls, data: Any, context: str = "deployment") -> "PolicyDeployment":
        if not isinstance(data, dict):
            raise ConfigError(
                f"{context}: expected an object, got {type(data).__name__}"
            )
        _check_keys(
            data, ("policy", "strategy", "top_n", "fraction", "ases"), context
        )
        if "policy" not in data:
            raise ConfigError(f"{context}: missing required key 'policy'")
        policy = data["policy"]
        if not isinstance(policy, str):
            raise ConfigError(
                f"{context}: 'policy' must be a string, "
                f"got {type(policy).__name__}"
            )
        strategy = data.get("strategy", "random")
        if not isinstance(strategy, str):
            raise ConfigError(
                f"{context}: 'strategy' must be a string, "
                f"got {type(strategy).__name__}"
            )
        raw_ases = data.get("ases", [])
        if not isinstance(raw_ases, (list, tuple)) or any(
            isinstance(a, bool) or not isinstance(a, int) for a in raw_ases
        ):
            raise ConfigError(
                f"{context}: 'ases' must be a list of integer ASNs"
            )
        deployment = cls(
            policy=policy,
            strategy=strategy,
            top_n=_check_int(data, "top_n", context),
            fraction=_check_fraction(data, "fraction", context),
            ases=tuple(raw_ases),
        )
        deployment.validate(context)
        return deployment

    def validate(self, context: str = "deployment") -> None:
        if self.policy not in SECURITY_POLICY_NAMES:
            raise ConfigError(
                f"{context}: unknown policy {self.policy!r} "
                f"(accepted: {', '.join(SECURITY_POLICY_NAMES)})"
            )
        if self.strategy not in DEPLOYMENT_STRATEGIES:
            raise ConfigError(
                f"{context}: unknown strategy {self.strategy!r} "
                f"(accepted: {', '.join(DEPLOYMENT_STRATEGIES)})"
            )
        if self.strategy == "top_cone" and self.top_n < 1:
            raise ConfigError(
                f"{context}: strategy 'top_cone' needs top_n >= 1, "
                f"got {self.top_n}"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigError(
                f"{context}: 'fraction' must be within [0, 1], "
                f"got {self.fraction}"
            )
        if self.strategy == "explicit" and not self.ases:
            raise ConfigError(
                f"{context}: strategy 'explicit' needs a non-empty 'ases' list"
            )


@dataclass
class AttackConfig:
    """How many adversarial events pollute the collected corpus.

    * **origin hijacks** — the attacker announces the victim's prefix
      as its own (forged path of length 1);
    * **forged-origin hijacks** — the attacker prepends the victim's
      ASN, evading RPKI origin validation (path ``attacker, victim``);
    * **route leaks** — a leak-prone AS re-exports a peer/provider
      route to all neighbours as if customer-learned (RFC 7908 type 1).
    """

    n_origin_hijacks: int = 0
    n_forged_origin_hijacks: int = 0
    n_route_leaks: int = 0

    @classmethod
    def from_dict(cls, data: Any, context: str = "attack") -> "AttackConfig":
        if not isinstance(data, dict):
            raise ConfigError(
                f"{context}: expected an object, got {type(data).__name__}"
            )
        _check_keys(
            data,
            ("n_origin_hijacks", "n_forged_origin_hijacks", "n_route_leaks"),
            context,
        )
        return cls(
            n_origin_hijacks=_check_int(data, "n_origin_hijacks", context),
            n_forged_origin_hijacks=_check_int(
                data, "n_forged_origin_hijacks", context
            ),
            n_route_leaks=_check_int(data, "n_route_leaks", context),
        )

    def total_events(self) -> int:
        return (
            self.n_origin_hijacks
            + self.n_forged_origin_hijacks
            + self.n_route_leaks
        )

    def validate(self, context: str = "attack") -> None:
        for name in (
            "n_origin_hijacks", "n_forged_origin_hijacks", "n_route_leaks"
        ):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigError(f"{context}: {name!r} must be an integer")
            if value < 0:
                raise ConfigError(
                    f"{context}: {name!r} must be >= 0, got {value}"
                )


@dataclass
class AdversarialConfig:
    """The adversarial scenario layer: policy deployments + attacks.

    Attached to :class:`ScenarioConfig` as the optional ``adversarial``
    field.  ``None`` (the default) means the honest baseline — and is
    canonicalised *away*, so every pre-existing scenario fingerprint,
    cache key, and golden snapshot is untouched by this layer existing.
    """

    deployments: Tuple[PolicyDeployment, ...] = ()
    attack: AttackConfig = field(default_factory=AttackConfig)

    @classmethod
    def from_dict(cls, data: Any, context: str = "adversarial") -> "AdversarialConfig":
        if not isinstance(data, dict):
            raise ConfigError(
                f"{context}: expected an object, got {type(data).__name__}"
            )
        _check_keys(data, ("deployments", "attack"), context)
        raw_deployments = data.get("deployments", [])
        if not isinstance(raw_deployments, (list, tuple)):
            raise ConfigError(
                f"{context}: 'deployments' must be a list of objects"
            )
        deployments = tuple(
            PolicyDeployment.from_dict(d, f"{context}.deployments[{i}]")
            for i, d in enumerate(raw_deployments)
        )
        attack = AttackConfig.from_dict(
            data.get("attack", {}), f"{context}.attack"
        )
        config = cls(deployments=deployments, attack=attack)
        config.validate(context)
        return config

    def validate(self, context: str = "adversarial") -> None:
        seen = set()
        for i, deployment in enumerate(self.deployments):
            deployment.validate(f"{context}.deployments[{i}]")
            if deployment.policy in seen:
                raise ConfigError(
                    f"{context}: duplicate deployment for policy "
                    f"{deployment.policy!r}"
                )
            seen.add(deployment.policy)
        self.attack.validate(f"{context}.attack")


@dataclass
class ScenarioConfig:
    """Top-level configuration: one object describes one experiment."""

    seed: int = 2018
    topology: TopologyConfig = field(default_factory=TopologyConfig)
    measurement: MeasurementConfig = field(default_factory=MeasurementConfig)
    validation: ValidationConfig = field(default_factory=ValidationConfig)

    #: Optional adversarial layer (security-policy deployments and
    #: hijack/leak events polluting the corpus).  ``None`` = honest
    #: baseline; see :meth:`canonical_dict` for the fingerprint rule.
    adversarial: Optional[AdversarialConfig] = None

    #: Snapshot date stamped into generated dataset files; the paper
    #: works on the April 2018 snapshot throughout.
    snapshot: str = "20180401"

    @classmethod
    def default(cls) -> "ScenarioConfig":
        """The paper-scale scenario (April 2018, seed 2018)."""
        return cls()

    @classmethod
    def small(cls, seed: int = 7) -> "ScenarioConfig":
        """A fast, few-hundred-AS scenario for unit tests."""
        topology = TopologyConfig(
            n_ases=320,
            clique_per_region={Region.ARIN: 3, Region.RIPE: 3, Region.APNIC: 1},
            hypergiants_per_region={Region.ARIN: 2, Region.RIPE: 1},
            special_stub_count=6,
            ixps_per_1000_ases=6.0,
        )
        measurement = MeasurementConfig(n_vantage_points=40)
        validation = ValidationConfig(
            n_as_trans_entries=3,
            n_reserved_asn_entries=8,
            n_direct_reports=10,
        )
        return cls(
            seed=seed,
            topology=topology,
            measurement=measurement,
            validation=validation,
        )

    def replace(self, **kwargs) -> "ScenarioConfig":
        """Functional update (e.g. ``cfg.replace(seed=1)``)."""
        return dataclasses.replace(self, **kwargs)

    def canonical_dict(self) -> Dict[str, Any]:
        """A nested plain-data view with deterministic ordering.

        Two configs with equal fields produce byte-identical canonical
        JSON regardless of how their dicts were built; the artifact
        cache derives its content address from this.

        The optional ``adversarial`` layer is omitted entirely when it
        is ``None``: an honest scenario canonicalises exactly as it did
        before the layer existed, so fingerprints, cache keys, and the
        golden snapshots are all unchanged.  A present adversarial
        layer *is* canonicalised, which gives every distinct policy
        deployment and attack mix its own content address.
        """
        data = _canonical(self)
        if self.adversarial is None:
            data.pop("adversarial", None)
        return data

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON of this config."""
        blob = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def validate(self) -> None:
        """Raise ``ValueError`` on inconsistent settings."""
        topo = self.topology
        if topo.n_ases < 50:
            raise ValueError("scenario needs at least 50 ASes")
        share_sum = sum(topo.region_shares.values())
        if abs(share_sum - 1.0) > 1e-6:
            raise ValueError(f"region shares sum to {share_sum}, expected 1.0")
        for region, row in topo.provider_region_matrix.items():
            row_sum = sum(row.values())
            if abs(row_sum - 1.0) > 1e-6:
                raise ValueError(
                    f"provider region row for {region} sums to {row_sum}"
                )
        tier_sum = (
            topo.large_transit_share
            + topo.mid_transit_share
            + topo.small_transit_share
        )
        if tier_sum >= 1.0:
            raise ValueError("transit tier shares must leave room for stubs")
        if not 0 <= self.measurement.full_feed_prob <= 1:
            raise ValueError("full_feed_prob must be a probability")
        if self.measurement.n_vantage_points < 1:
            raise ValueError("need at least one vantage point")
        if self.adversarial is not None:
            self.adversarial.validate()


# ---------------------------------------------------------------------------
# canonical-dict reconstruction (the inverse of _canonical)
# ---------------------------------------------------------------------------

def _rebuild_value(tp: Any, value: Any) -> Any:
    """Reverse :func:`_canonical` for one typed value.

    Driven by the dataclass field annotations, so every value shape the
    canonical form emits — enum names, stringified enum dict keys,
    tuples-as-lists, nested dataclasses — maps back to the constructor
    type without per-field special cases.
    """
    origin = typing.get_origin(tp)
    if origin is None:
        if dataclasses.is_dataclass(tp) and isinstance(tp, type):
            return _rebuild_dataclass(tp, value)
        if isinstance(tp, type) and issubclass(tp, enum.Enum):
            return tp[value]
        return value
    args = typing.get_args(tp)
    if origin is typing.Union:
        if value is None:
            return None
        inner = [arg for arg in args if arg is not type(None)]
        return _rebuild_value(inner[0], value)
    if origin is dict:
        key_tp, value_tp = args
        return {
            _rebuild_value(key_tp, key): _rebuild_value(value_tp, item)
            for key, item in value.items()
        }
    if origin is tuple:
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_rebuild_value(args[0], item) for item in value)
        return tuple(
            _rebuild_value(arg, item) for arg, item in zip(args, value)
        )
    if origin is list:
        return [_rebuild_value(args[0], item) for item in value]
    return value


def _rebuild_dataclass(cls: type, data: Any) -> Any:
    if not isinstance(data, dict):
        raise ConfigError(
            f"canonical {cls.__name__}: expected an object, "
            f"got {type(data).__name__}"
        )
    hints = typing.get_type_hints(cls)
    kwargs = {
        f.name: _rebuild_value(hints[f.name], data[f.name])
        for f in dataclasses.fields(cls)
        if f.name in data
    }
    return cls(**kwargs)


def config_from_canonical(data: Dict[str, Any]) -> "ScenarioConfig":
    """Rebuild a :class:`ScenarioConfig` from its :meth:`canonical_dict`.

    The exact inverse of canonicalisation: for any valid config,
    ``config_from_canonical(c.canonical_dict()).fingerprint()`` equals
    ``c.fingerprint()``.  The artifact cache uses this to resolve a
    scenario fingerprint recorded in ``meta.json`` back into a buildable
    config — the mechanism by which a multi-worker service process
    warm-admits scenarios that a sibling process built.

    Raises :class:`ConfigError` on malformed data and runs the full
    :meth:`ScenarioConfig.validate` on the result.
    """
    try:
        config = _rebuild_dataclass(ScenarioConfig, data)
    except ConfigError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ConfigError(f"canonical config: {exc!r}") from exc
    try:
        config.validate()
    except ValueError as exc:
        raise ConfigError(f"canonical config: {exc}") from exc
    return config
