"""Temporal evolution and validation over-sampling (§7 of the paper).

The paper's outlook proposes exploiting "the heterogeneity and
intrinsic, continuous change of the routing ecosystem": if we know how
long a given relationship stays unchanged, the same AS can be
*re-sampled* after that period and still contribute a unique-enough new
validation data point — growing the validation set without new
reporters.

:class:`EvolutionSimulator` makes that idea executable:

* the ground-truth topology evolves month over month — customers switch
  providers, peerings form and dissolve, a few relationships flip type
  (the churn rates are configurable);
* each month the measurement and validation pipeline runs, producing a
  monthly label set;
* :class:`TemporalValidation` accumulates the monthly labels and
  implements the paper's re-sampling rule: a (link, label) pair counts
  as a **new sample** when at least ``min_gap_months`` have passed
  since the link was last sampled *or* its label changed in between.

The headline quantity is :meth:`TemporalValidation.unique_samples`
versus the single-snapshot label count — the over-sampling gain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bgp.collectors import collect_corpus
from repro.config import ScenarioConfig
from repro.topology.generator import Topology, generate_topology
from repro.topology.graph import Link, LinkKey, RelType, Role, link_key
from repro.utils.rng import child_rng
from repro.validation.cleaning import MultiLabelPolicy, clean_validation
from repro.validation.compiler import compile_validation


@dataclass
class EvolutionConfig:
    """Monthly change rates of the routing ecosystem."""

    months: int = 6
    #: probability per month that a multi-homed customer drops one of
    #: its provider links and picks a new provider.
    provider_switch_prob: float = 0.02
    #: probability per month that an existing peering dissolves.
    peering_churn_prob: float = 0.015
    #: number of new peerings formed per month per 1000 ASes.
    new_peerings_per_1000: float = 6.0
    #: probability per month that a P2P link turns into P2C (a peer is
    #: "promoted" to customer — the relationship flips the paper's
    #: §6.1 target links went through).
    relationship_flip_prob: float = 0.004


@dataclass(frozen=True)
class MonthlySample:
    """One label observation of one link."""

    month: int
    rel: RelType


class TemporalValidation:
    """Validation labels accumulated over evolving months."""

    def __init__(self) -> None:
        self._samples: Dict[LinkKey, List[MonthlySample]] = {}

    def add_month(self, month: int, labels: Dict[LinkKey, RelType]) -> None:
        for key, rel in labels.items():
            self._samples.setdefault(key, []).append(
                MonthlySample(month=month, rel=rel)
            )

    def __len__(self) -> int:
        return len(self._samples)

    def links(self) -> List[LinkKey]:
        return list(self._samples.keys())

    def history(self, key: LinkKey) -> List[MonthlySample]:
        return list(self._samples.get(key, ()))

    def single_snapshot_count(self, month: int) -> int:
        """Labels a single month contributes (the status-quo baseline)."""
        return sum(
            1
            for samples in self._samples.values()
            if any(s.month == month for s in samples)
        )

    def unique_samples(self, min_gap_months: int = 3) -> int:
        """The paper's re-sampling rule: count every observation that is
        the link's first, follows a label change, or arrives at least
        ``min_gap_months`` after the previously *counted* sample."""
        total = 0
        for samples in self._samples.values():
            last_counted: Optional[MonthlySample] = None
            for sample in sorted(samples, key=lambda s: s.month):
                if last_counted is None:
                    counted = True
                elif sample.rel is not last_counted.rel:
                    counted = True
                else:
                    counted = sample.month - last_counted.month >= min_gap_months
                if counted:
                    total += 1
                    last_counted = sample
        return total

    def changed_links(self) -> List[LinkKey]:
        """Links whose validated relationship changed across months."""
        changed = []
        for key, samples in self._samples.items():
            rels = {s.rel for s in samples}
            if len(rels) > 1:
                changed.append(key)
        return changed


@dataclass
class EvolutionResult:
    """Everything the simulation produces."""

    temporal: TemporalValidation
    monthly_label_counts: List[int] = field(default_factory=list)
    monthly_visible_links: List[int] = field(default_factory=list)

    def oversampling_gain(self, min_gap_months: int = 3) -> float:
        """Unique samples relative to the best single snapshot."""
        if not self.monthly_label_counts:
            return 0.0
        best_single = max(self.monthly_label_counts)
        if best_single == 0:
            return 0.0
        return self.temporal.unique_samples(min_gap_months) / best_single


class EvolutionSimulator:
    """Evolves one scenario's ground truth month over month."""

    def __init__(
        self,
        scenario_config: ScenarioConfig,
        evolution: Optional[EvolutionConfig] = None,
    ) -> None:
        self.scenario_config = scenario_config
        self.evolution = evolution or EvolutionConfig()
        self._rng = child_rng(scenario_config.seed, "evolution")

    # ------------------------------------------------------------------
    def run(self) -> EvolutionResult:
        """Generate month 0, then evolve + re-measure every month."""
        topology = generate_topology(self.scenario_config)
        result = EvolutionResult(temporal=TemporalValidation())
        communities = None
        for month in range(self.evolution.months):
            if month > 0:
                self._evolve_one_month(topology)
            corpus, _vps, communities, _str = collect_corpus(
                topology, self.scenario_config, communities=communities
            )
            compiled = compile_validation(
                topology, corpus, communities, self.scenario_config
            )
            cleaned = clean_validation(
                compiled.data, topology.orgs, MultiLabelPolicy.IGNORE
            )
            labels = {
                key: rel
                for key, (rel, _provider) in cleaned.rels.items()
            }
            result.temporal.add_month(month, labels)
            result.monthly_label_counts.append(len(labels))
            result.monthly_visible_links.append(len(corpus.visible_links()))
        return result

    # ------------------------------------------------------------------
    def _evolve_one_month(self, topology: Topology) -> None:
        graph = topology.graph
        cfg = self.evolution
        rng = self._rng
        self._switch_providers(topology)
        # peering churn
        p2p_links = [l for l in graph.links() if l.rel is RelType.P2P]
        clique = set(graph.clique())
        for link in p2p_links:
            if link.provider in clique and link.customer in clique:
                continue  # the clique mesh is stable
            roll = rng.random()
            if roll < cfg.peering_churn_prob:
                graph.remove_link(link.provider, link.customer)
            elif roll < cfg.peering_churn_prob + cfg.relationship_flip_prob:
                # peer promoted to customer: the larger side (by cone)
                # becomes the provider.
                graph.remove_link(link.provider, link.customer)
                sizes = graph.customer_cone_sizes()
                a, b = link.provider, link.customer
                provider = a if sizes.get(a, 0) >= sizes.get(b, 0) else b
                customer = b if provider == a else a
                graph.add_link(
                    Link(provider=provider, customer=customer, rel=RelType.P2C)
                )
        # new peerings among transit ASes of the same region
        n_new = int(round(len(graph) * cfg.new_peerings_per_1000 / 1000))
        transits = [n for n in graph.nodes() if n.role.is_transit]
        for _ in range(n_new):
            if len(transits) < 2:
                break
            a = transits[int(rng.integers(0, len(transits)))]
            b = transits[int(rng.integers(0, len(transits)))]
            if a.asn == b.asn or graph.has_link(a.asn, b.asn):
                continue
            lo, hi = link_key(a.asn, b.asn)
            graph.add_link(Link(provider=lo, customer=hi, rel=RelType.P2P))

    def _switch_providers(self, topology: Topology) -> None:
        """Multi-homed customers drop one upstream and pick another."""
        graph = topology.graph
        rng = self._rng
        cfg = self.evolution
        switchers = [
            node
            for node in graph.nodes()
            if len(graph.providers_of(node.asn)) >= 2
            and rng.random() < cfg.provider_switch_prob
        ]
        transits = [n.asn for n in graph.nodes() if n.role.is_transit]
        for node in switchers:
            providers = sorted(graph.providers_of(node.asn))
            dropped = providers[int(rng.integers(0, len(providers)))]
            graph.remove_link(dropped, node.asn)
            for _ in range(8):
                candidate = transits[int(rng.integers(0, len(transits)))]
                if candidate != node.asn and not graph.has_link(
                    candidate, node.asn
                ):
                    # no cycles: the new provider must not sit in the
                    # customer's own cone.
                    if candidate in graph.customer_cone(node.asn):
                        continue
                    graph.add_link(
                        Link(provider=candidate, customer=node.asn, rel=RelType.P2C)
                    )
                    break
