"""Deterministic filesystem fault injection for the artifact cache.

The cache documents a hard invariant: *every fault degrades to a
recorded miss plus a recompute, never a crash or a wrong artifact* —
for corruption, for crashed writers, and for concurrent
readers/writers/deleters sharing one root.  This module makes that
invariant executable.  A :class:`FaultyFilesystem` is a drop-in
:class:`~repro.pipeline.fsops.CacheFilesystem` whose primitives fire a
declarative, fully deterministic schedule of :class:`Fault` objects:

    cache = ArtifactCache(root=root, fs=FaultyFilesystem([
        Fault(op="replace", kind="crash"),      # die just before rename
    ]))

Fault kinds (each one-shot, armed per operation and call ordinal):

``crash``
    Die immediately *before* the operation (``kill -9`` at the call
    site): nothing written, :class:`InjectedCrash` raised.
``partial``
    Die *mid*-operation: half the bytes land in the temp file, then
    :class:`InjectedCrash`.  Because publication is
    write-tmp-then-rename, a torn write can only ever strand a temp
    straggler, never a half-written published artifact.
``enospc``
    The filesystem refuses: half the bytes land, then
    ``OSError(ENOSPC)``.  Unlike a crash the process survives, so the
    cache must swallow this and degrade to an uncached build.
``vanish``
    A concurrent deleter (``repro cache clear``) removes the target
    just before a read/stat reaches it — the file is really unlinked,
    then the operation proceeds (and fails naturally).
``flicker``
    A transient vanish: the read raises ``FileNotFoundError`` once but
    the file is untouched, so the cache's retry-once path must recover
    and still return the artifact.

:class:`InjectedCrash` deliberately does **not** subclass ``OSError``:
the cache's graceful-degradation paths swallow ``OSError`` (a full
disk is an operational condition), while a crash must abort the caller
mid-operation exactly like process death would, leaving residue behind
for the *next* process to cope with.

Schedules are data, so they are trivially deterministic; for
randomised stress, :func:`seeded_fault_plan` derives a schedule from an
integer seed through the library's standard
:func:`repro.utils.rng.make_rng` plumbing — the same seed always
yields the same faults on every platform.
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.pipeline.fsops import CacheFilesystem
from repro.utils.rng import make_rng


class InjectedCrash(Exception):
    """Simulated process death at a filesystem injection point."""


#: Every fault kind the layer can inject.
FAULT_KINDS: Tuple[str, ...] = (
    "crash", "partial", "enospc", "vanish", "flicker",
)

#: Which kinds are meaningful on which cache filesystem operation.
#: ``replace`` has no ``partial`` — rename is atomic on POSIX, which is
#: precisely what the cache's publication scheme relies on.
INJECTION_MATRIX: Dict[str, Tuple[str, ...]] = {
    "write_text": ("crash", "partial", "enospc"),
    "run_writer": ("crash", "partial", "enospc"),
    "replace": ("crash", "enospc"),
    "read_text": ("vanish", "flicker"),
    "run_reader": ("vanish", "flicker"),
    "stat_size": ("vanish",),
}


@dataclass
class Fault:
    """One armed fault: fire ``kind`` on the ``at``-th matching call.

    ``path_substring`` narrows the trigger to paths containing it (an
    artifact filename, a key); matching is counted per fault, so two
    faults on the same operation fire independently.  Faults are
    one-shot: after firing they are spent.
    """

    op: str
    kind: str
    at: int = 1
    path_substring: str = ""
    fired: bool = False
    _seen: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        allowed = INJECTION_MATRIX.get(self.op)
        if allowed is None:
            raise ValueError(
                f"unknown injection point {self.op!r} "
                f"(one of {sorted(INJECTION_MATRIX)})"
            )
        if self.kind not in allowed:
            raise ValueError(
                f"fault kind {self.kind!r} is not injectable on "
                f"{self.op!r} (allowed: {allowed})"
            )
        if self.at < 1:
            raise ValueError("`at` is a 1-based call ordinal")

    def triggers(self, op: str, path: Path) -> bool:
        if self.fired or op != self.op:
            return False
        if self.path_substring and self.path_substring not in str(path):
            return False
        self._seen += 1
        return self._seen == self.at


def full_fault_matrix() -> List[Fault]:
    """One fault per (operation, kind) pair — the acceptance matrix."""
    return [
        Fault(op=op, kind=kind)
        for op in sorted(INJECTION_MATRIX)
        for kind in INJECTION_MATRIX[op]
    ]


def seeded_fault_plan(seed: int, n_faults: int = 3) -> List[Fault]:
    """A deterministic pseudo-random fault schedule.

    Draws operations, kinds, and call ordinals from the library's
    seeded generator plumbing, so a failing stress run is reproduced by
    re-running with the same seed.
    """
    rng = make_rng(seed)
    ops = sorted(INJECTION_MATRIX)
    plan: List[Fault] = []
    for _ in range(n_faults):
        op = ops[int(rng.integers(len(ops)))]
        kinds = INJECTION_MATRIX[op]
        plan.append(Fault(
            op=op,
            kind=kinds[int(rng.integers(len(kinds)))],
            at=int(rng.integers(1, 4)),
        ))
    return plan


class FaultyFilesystem(CacheFilesystem):
    """A :class:`CacheFilesystem` that executes a fault schedule.

    Operations not matched by any armed fault pass straight through to
    the real filesystem.  ``calls`` counts every operation (fired or
    not) and ``injected`` logs ``(op, kind, path)`` per fired fault,
    so tests can assert a schedule actually ran.
    """

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        self.faults: List[Fault] = list(faults)
        self.calls: Dict[str, int] = {}
        self.injected: List[Tuple[str, str, str]] = []

    # -- scheduling ----------------------------------------------------
    def _armed(self, op: str, path: Path) -> Any:
        self.calls[op] = self.calls.get(op, 0) + 1
        for fault in self.faults:
            if fault.triggers(op, path):
                fault.fired = True
                self.injected.append((op, fault.kind, path.name))
                return fault
        return None

    @staticmethod
    def _truncate_to_half(path: Path) -> None:
        try:
            data = path.read_bytes()
        except OSError:
            return
        path.write_bytes(data[: len(data) // 2])

    @staticmethod
    def _half_of(text: str) -> str:
        return text[: len(text) // 2]

    @staticmethod
    def _enospc(path: Path) -> "OSError":
        return OSError(errno.ENOSPC, "No space left on device (injected)", str(path))

    def _unlink_quietly(self, path: Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # -- injected primitives -------------------------------------------
    def write_text(self, path: Path, text: str) -> None:
        fault = self._armed("write_text", path)
        if fault is None:
            return super().write_text(path, text)
        if fault.kind == "crash":
            raise InjectedCrash(f"crash before write of {path.name}")
        super().write_text(path, self._half_of(text))
        if fault.kind == "partial":
            raise InjectedCrash(f"crash mid-write of {path.name}")
        raise self._enospc(path)

    def run_writer(self, writer: Callable[[Path], Any], path: Path) -> None:
        fault = self._armed("run_writer", path)
        if fault is None:
            return super().run_writer(writer, path)
        if fault.kind == "crash":
            raise InjectedCrash(f"crash before serialising {path.name}")
        super().run_writer(writer, path)
        self._truncate_to_half(path)
        if fault.kind == "partial":
            raise InjectedCrash(f"crash mid-serialisation of {path.name}")
        raise self._enospc(path)

    def replace(self, src: Path, dst: Path) -> None:
        fault = self._armed("replace", dst)
        if fault is None:
            return super().replace(src, dst)
        if fault.kind == "crash":
            raise InjectedCrash(f"crash before rename onto {dst.name}")
        raise self._enospc(dst)

    def read_text(self, path: Path) -> str:
        fault = self._armed("read_text", path)
        if fault is not None:
            if fault.kind == "vanish":
                self._unlink_quietly(path)
            else:  # flicker: transient NFS-style ghost, file untouched
                raise FileNotFoundError(
                    errno.ENOENT, "vanished (injected flicker)", str(path)
                )
        return super().read_text(path)

    def run_reader(self, reader: Callable[[Path], Any], path: Path) -> Any:
        fault = self._armed("run_reader", path)
        if fault is not None:
            if fault.kind == "vanish":
                self._unlink_quietly(path)
            else:
                raise FileNotFoundError(
                    errno.ENOENT, "vanished (injected flicker)", str(path)
                )
        return super().run_reader(reader, path)

    def stat_size(self, path: Path) -> int:
        fault = self._armed("stat_size", path)
        if fault is not None:
            self._unlink_quietly(path)
        return super().stat_size(path)
