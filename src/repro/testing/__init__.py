"""Test-support subsystems shipped with the library.

The modules here are production code held to the same contracts as the
rest of ``repro`` (stdlib + numpy only, deterministic, lint-clean) but
exist to *exercise* the library rather than to run the paper's
pipeline.  Today that is :mod:`repro.testing.faults`, the deterministic
filesystem fault-injection layer that proves the artifact cache's
crash/concurrency guarantees.
"""

from repro.testing.faults import (
    FAULT_KINDS,
    INJECTION_MATRIX,
    Fault,
    FaultyFilesystem,
    InjectedCrash,
    full_fault_matrix,
    seeded_fault_plan,
)

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultyFilesystem",
    "INJECTION_MATRIX",
    "InjectedCrash",
    "full_fault_matrix",
    "seeded_fault_plan",
]
