"""Downstream applications of relationship data (the paper's §7).

The paper's outlook argues operators will only contribute accurate
relationship data if they get something back.  Two of the incentives it
names are implemented here:

* :mod:`repro.applications.peerlock` — Peerlock-style router
  configuration snippets that prevent route leaks, generated from
  relationship data (McDaniel et al., "Peerlock: Flexsealing BGP");
* :mod:`repro.applications.recommender` — a peering recommendation
  system: rankings of beneficial IXPs to join and ASes to peer with for
  a given network.

Both consume only a :class:`~repro.datasets.asrel.RelationshipSet` (and
public registries), so they run equally on inferred, validated, or
ground-truth data — which is exactly how the paper frames the risk:
downstream systems inherit whatever errors the relationships carry.
"""

from repro.applications.peerlock import PeerlockConfig, generate_peerlock
from repro.applications.recommender import (
    IXPRecommendation,
    PeerRecommendation,
    recommend_ixps,
    recommend_peers,
)

__all__ = [
    "PeerlockConfig",
    "generate_peerlock",
    "IXPRecommendation",
    "PeerRecommendation",
    "recommend_ixps",
    "recommend_peers",
]
