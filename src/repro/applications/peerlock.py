"""Peerlock configuration generation (§7 of the paper).

Peerlock (McDaniel, Smith & Schuchard) prevents *route leaks* among
high-tier networks: if AS A and AS B are peers (or B is A's customer),
A should never learn a route to B's prefixes through a *third* AS that
is not B's upstream — seeing ``... C ... B`` with C below B signals a
leak.  Operationally, participants install filters that drop routes
containing protected peers in the middle of the AS path when received
from sessions that should never carry them.

The paper proposes Peerlock configuration generation as an *incentive*
for operators to share accurate relationship data: the better the
relationship feed, the tighter the generated filters.  This module
implements that generator:

* for a given AS, derive its protected set (peers that are Tier-1/clique
  members plus explicitly listed partners);
* emit per-session filter rules — drop routes whose AS path contains a
  protected AS when the session partner is *not* that AS or one of its
  (known) upstreams;
* render the rules as router-ish configuration text.

Because filters derive from relationship data, misclassified
relationships produce either missing protection (P2C mistaken for P2P)
or over-filtering — the quantitative face of the paper's warning about
downstream consequences.  :func:`evaluate_protection` measures both
against a reference relationship set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datasets.asrel import RelationshipSet
from repro.topology.graph import RelType


@dataclass(frozen=True)
class FilterRule:
    """One Peerlock filter: on sessions with ``session_partner`` (or on
    all sessions when ``None``), drop routes whose path contains
    ``protected`` unless received from an allowed neighbour."""

    protected: int
    allowed_neighbors: Tuple[int, ...]

    def blocks(self, received_from: int, path: Sequence[int]) -> bool:
        """Would this rule drop a route with ``path`` received over the
        session with ``received_from``?"""
        if self.protected not in path:
            return False
        if received_from == self.protected:
            return False
        return received_from not in self.allowed_neighbors


@dataclass
class PeerlockConfig:
    """The generated configuration for one AS."""

    asn: int
    rules: List[FilterRule] = field(default_factory=list)

    @property
    def protected_set(self) -> Set[int]:
        return {rule.protected for rule in self.rules}

    def filters_route(self, received_from: int, path: Sequence[int]) -> bool:
        """True when any rule drops the route."""
        return any(rule.blocks(received_from, path) for rule in self.rules)

    def render(self) -> str:
        """Router-ish configuration text (one as-path filter per rule)."""
        lines = [f"! peerlock filters for AS{self.asn}", "!"]
        for index, rule in enumerate(self.rules, 1):
            allowed = " ".join(f"AS{n}" for n in rule.allowed_neighbors) or "-"
            lines.append(
                f"as-path access-list PEERLOCK-{index} deny _({rule.protected})_"
            )
            lines.append(f"! exempt sessions: AS{rule.protected} {allowed}")
        lines.append("!")
        return "\n".join(lines)


def generate_peerlock(
    asn: int,
    rels: RelationshipSet,
    protected: Optional[Iterable[int]] = None,
) -> PeerlockConfig:
    """Build the Peerlock configuration for ``asn`` from relationships.

    Parameters
    ----------
    asn:
        The operator deploying the filters.
    rels:
        Relationship data (inferred or reported).  Peers of ``asn`` are
        protected by default; the allowed receive-sessions for each
        protected AS P are P itself and P's known upstreams (providers),
        because those may legitimately announce paths containing P.
    protected:
        Override the protected set (e.g. the Tier-1 clique, Peerlock's
        original deployment).
    """
    neighbors: Dict[int, RelType] = {}
    for key, rel, provider in rels.items():
        if asn in key:
            other = key[0] if key[1] == asn else key[1]
            neighbors[other] = rel
    if protected is None:
        protected = [
            other for other, rel in neighbors.items() if rel is RelType.P2P
        ]
    config = PeerlockConfig(asn=asn)
    providers_of: Dict[int, Set[int]] = {}
    for key, rel, provider in rels.items():
        if rel is RelType.P2C:
            customer = key[0] if key[1] == provider else key[1]
            providers_of.setdefault(customer, set()).add(provider)
    for target in sorted(set(protected)):
        if target == asn:
            continue
        allowed = tuple(sorted(providers_of.get(target, set()) - {asn}))
        config.rules.append(FilterRule(protected=target, allowed_neighbors=allowed))
    return config


@dataclass(frozen=True)
class ProtectionScore:
    """How well a config generated from one relationship view performs
    against the reference view."""

    n_rules: int
    #: protected ASes missing because the data misclassified the
    #: peering (P2P seen as P2C): leaks through these stay possible.
    missing_protection: int
    #: rules protecting ASes that are not actually peers: legitimate
    #: routes may be dropped (the IXP spoofed-packet example of §2 is
    #: the same failure shape).
    spurious_protection: int

    @property
    def exact(self) -> bool:
        return self.missing_protection == 0 and self.spurious_protection == 0


def evaluate_protection(
    asn: int,
    config: PeerlockConfig,
    reference: RelationshipSet,
) -> ProtectionScore:
    """Compare a generated config against reference relationships."""
    true_peers = set()
    for key, rel, _provider in reference.items():
        if asn in key and rel is RelType.P2P:
            true_peers.add(key[0] if key[1] == asn else key[1])
    protected = config.protected_set
    return ProtectionScore(
        n_rules=len(config.rules),
        missing_protection=len(true_peers - protected),
        spurious_protection=len(protected - true_peers),
    )
