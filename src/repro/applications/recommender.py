"""Peering recommendation system (§7 of the paper).

The paper suggests relationship data could power "recommendation
systems for peering opportunities, i.e., rankings of beneficial IXPs
(to peer at) and ASes (to peer with) for a given network" — another
do-ut-des incentive for operators to report accurate relationships.

The scoring model follows standard peering economics:

* peering with AS P lets the requester reach P's **customer cone**
  settlement-free, so the benefit of a candidate is the amount of
  *new* address space / AS count moved off paid transit;
* a candidate is *reachable* for peering when both parties are (or
  could be) present at a common IXP;
* existing providers and customers are excluded (peering with your own
  customer cannibalises revenue; peering with your provider is just a
  renegotiation).

Both rankings are pure functions of a relationship set plus public IXP
membership, so — like everything in :mod:`repro.applications` — their
quality is bounded by the relationship data's correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.datasets.asrel import RelationshipSet
from repro.datasets.customercone import recursive_customer_cones
from repro.topology.graph import RelType
from repro.topology.ixp import IXPRegistry


@dataclass(frozen=True)
class PeerRecommendation:
    """One candidate peering partner."""

    asn: int
    #: ASes newly reachable settlement-free through this peer.
    new_cone_ases: int
    #: Addresses those ASes originate (when address counts are known).
    new_addresses: int
    #: IXPs where both parties are already present.
    common_ixps: Tuple[int, ...]


@dataclass(frozen=True)
class IXPRecommendation:
    """One candidate IXP to join."""

    ixp_id: int
    name: str
    #: members that would be scored peering candidates there.
    n_candidates: int
    #: summed new-cone benefit over those candidates.
    total_new_cone: int


def _relationship_neighbors(rels: RelationshipSet, asn: int) -> Dict[int, RelType]:
    neighbors: Dict[int, RelType] = {}
    for key, rel, _provider in rels.items():
        if asn in key:
            neighbors[key[0] if key[1] == asn else key[1]] = rel
    return neighbors


def recommend_peers(
    asn: int,
    rels: RelationshipSet,
    ixps: Optional[IXPRegistry] = None,
    address_counts: Optional[Mapping[int, int]] = None,
    top_n: int = 10,
    require_colocation: bool = True,
) -> List[PeerRecommendation]:
    """Rank peering candidates for ``asn`` by new settlement-free reach."""
    cones = recursive_customer_cones(rels)
    own_reach = set(cones.get(asn, set())) | {asn}
    neighbors = _relationship_neighbors(rels, asn)
    candidates: List[PeerRecommendation] = []
    universe: Set[int] = set()
    for key, _rel, _provider in rels.items():
        universe.update(key)
    for candidate in sorted(universe):
        if candidate == asn or candidate in neighbors:
            continue
        common: Tuple[int, ...] = ()
        if ixps is not None:
            common = tuple(sorted(ixps.common_ixps(asn, candidate)))
            if require_colocation and not common:
                continue
        new_ases = (cones.get(candidate, set()) | {candidate}) - own_reach
        if not new_ases:
            continue
        new_addresses = sum(
            (address_counts or {}).get(a, 0) for a in new_ases
        )
        candidates.append(
            PeerRecommendation(
                asn=candidate,
                new_cone_ases=len(new_ases),
                new_addresses=new_addresses,
                common_ixps=common,
            )
        )
    candidates.sort(
        key=lambda c: (-c.new_cone_ases, -c.new_addresses, c.asn)
    )
    return candidates[:top_n]


def recommend_ixps(
    asn: int,
    rels: RelationshipSet,
    ixps: IXPRegistry,
    top_n: int = 5,
) -> List[IXPRecommendation]:
    """Rank IXPs for ``asn`` by the peering benefit available there.

    Only IXPs the AS has *not* joined yet are candidates; the benefit
    is the summed new-cone reach over members that would accept peering
    (everyone who is not already a relationship neighbour).
    """
    cones = recursive_customer_cones(rels)
    own_reach = set(cones.get(asn, set())) | {asn}
    neighbors = _relationship_neighbors(rels, asn)
    already_joined = ixps.memberships_of(asn)
    recommendations: List[IXPRecommendation] = []
    for ixp in ixps.ixps():
        if ixp.ixp_id in already_joined:
            continue
        n_candidates = 0
        total_new = 0
        for member in ixp.members:
            if member == asn or member in neighbors:
                continue
            new_ases = (cones.get(member, set()) | {member}) - own_reach
            if not new_ases:
                continue
            n_candidates += 1
            total_new += len(new_ases)
        if n_candidates:
            recommendations.append(
                IXPRecommendation(
                    ixp_id=ixp.ixp_id,
                    name=ixp.name,
                    n_candidates=n_candidates,
                    total_new_cone=total_new,
                )
            )
    recommendations.sort(key=lambda r: (-r.total_new_cone, r.ixp_id))
    return recommendations[:top_n]
