"""repro — a reproduction of Prehn & Feldmann, "How biased is our
Validation (Data) for AS Relationships?" (IMC 2021).

The library builds a synthetic Internet with ground-truth AS business
relationships, measures it through biased route collectors, compiles
"best-effort" validation data from BGP community documentation the way
the community does, reimplements the ASRank / ProbLink / TopoScope
inference algorithms (plus Gao's baseline), and reproduces the paper's
entire bias and implication analysis.

Quick start::

    from repro import ScenarioConfig, build_scenario

    scenario = build_scenario(ScenarioConfig.default())
    print(scenario.regional_bias().classes[:5])          # Figure 1
    print(scenario.validation_table("asrank").total)     # Table 1

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.config import (
    AdversarialConfig,
    AttackConfig,
    MeasurementConfig,
    PolicyDeployment,
    ScenarioConfig,
    TopologyConfig,
    ValidationConfig,
)
from repro.scenario import (
    ALGORITHM_NAMES,
    Scenario,
    build_scenario,
    default_scenario,
    small_scenario,
)

# Imported after repro.scenario: the pipeline package reaches into the
# dataset serialisers, whose package init must not be triggered before
# repro.datasets.paths has finished loading (repro.bgp's package init
# imports it back).
from repro.pipeline import ArtifactCache, ParallelPropagator

__version__ = "1.0.0"

__all__ = [
    "AdversarialConfig",
    "AttackConfig",
    "MeasurementConfig",
    "PolicyDeployment",
    "ScenarioConfig",
    "TopologyConfig",
    "ValidationConfig",
    "ALGORITHM_NAMES",
    "ArtifactCache",
    "ParallelPropagator",
    "Scenario",
    "build_scenario",
    "default_scenario",
    "small_scenario",
    "__version__",
]
