"""RIR ``delegated-<rir>-extended`` file format (ASN records).

Each RIR publishes a daily delegation file whose ASN lines look like::

    arin|US|asn|394000|1|20160301|assigned|<opaque>

The paper refines the IANA bootstrap mapping with these files to catch
inter-RIR transfers.  This module writes one file per region from a
scenario's graph/region map and parses files back into per-ASN
assignments; :func:`region_map_from_files` rebuilds the two-layer
:class:`~repro.topology.regions.RegionMap` exactly the way the paper's
pipeline does (IANA blocks first, delegations override).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.topology.regions import Region, RegionMap

#: A representative country per region for the synthetic records.
_REGION_COUNTRY = {
    Region.AFRINIC: "ZA",
    Region.APNIC: "JP",
    Region.ARIN: "US",
    Region.LACNIC: "BR",
    Region.RIPE: "DE",
}


@dataclass(frozen=True)
class DelegationRecord:
    """One ASN line of a delegation file."""

    registry: Region
    country: str
    asn: int
    count: int
    date: str
    status: str

    def to_line(self) -> str:
        return (
            f"{self.registry.registry_name}|{self.country}|asn|{self.asn}"
            f"|{self.count}|{self.date}|{self.status}|sim"
        )


def write_delegation_files(
    assignments: Dict[int, Region],
    directory: Union[str, Path],
    snapshot: str = "20180405",
) -> Dict[Region, Path]:
    """Write one ``delegated-<rir>-extended-<date>`` file per region.

    ``assignments`` maps every ASN to its (post-transfer) region, i.e.
    what the RIRs would currently publish.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    by_region: Dict[Region, List[int]] = {r: [] for r in Region}
    for asn, region in assignments.items():
        by_region[region].append(asn)
    files: Dict[Region, Path] = {}
    for region, asns in by_region.items():
        lines = [
            f"2|{region.registry_name}|{snapshot}|{len(asns)}|19700101|{snapshot}|+00:00",
        ]
        for asn in sorted(asns):
            record = DelegationRecord(
                registry=region,
                country=_REGION_COUNTRY[region],
                asn=asn,
                count=1,
                date=snapshot,
                status="assigned",
            )
            lines.append(record.to_line())
        path = directory / f"delegated-{region.registry_name}-extended-{snapshot}"
        path.write_text("\n".join(lines) + "\n", encoding="ascii")
        files[region] = path
    return files


def read_delegation_file(path: Union[str, Path]) -> List[DelegationRecord]:
    """Parse the ASN records of one delegation file.

    Non-ASN records (ipv4/ipv6), the version header, and summary lines
    are skipped, as in real parsers.
    """
    records: List[DelegationRecord] = []
    for line_no, raw in enumerate(
        Path(path).read_text(encoding="ascii").splitlines(), 1
    ):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) >= 2 and parts[0] == "2":
            continue  # version header
        if len(parts) >= 6 and parts[5] == "summary":
            continue
        if len(parts) < 7:
            raise ValueError(f"{path}:{line_no}: malformed delegation line: {raw!r}")
        registry_name, country, rtype, value, count, date, status = parts[:7]
        if rtype != "asn":
            continue
        records.append(
            DelegationRecord(
                registry=Region.from_name(registry_name),
                country=country,
                asn=int(value),
                count=int(count),
                date=date,
                status=status,
            )
        )
    return records


def region_map_from_files(
    iana_blocks: Iterable[Tuple[int, int, Region]],
    delegation_paths: Iterable[Union[str, Path]],
) -> RegionMap:
    """Rebuild the two-layer mapping from dataset files (the paper's
    §5 methodology: IANA bootstrap, delegation refinement)."""
    region_map = RegionMap()
    for low, high, region in iana_blocks:
        region_map.add_iana_block(low, high, region)
    for path in delegation_paths:
        for record in read_delegation_file(path):
            for offset in range(record.count):
                region_map.add_delegation(record.asn + offset, record.registry)
    return region_map
