"""Dataset formats and derived data products (system S5 of DESIGN.md).

These modules read and write the textual formats of the real-world data
sources the paper uses, so the pipeline round-trips through the same
artefacts a study on real data would touch:

* :mod:`repro.datasets.paths` — the collected AS-path corpus;
* :mod:`repro.datasets.asrel` — CAIDA serial-1 ``as-rel`` files;
* :mod:`repro.datasets.as2org` — CAIDA AS-to-Organization files;
* :mod:`repro.datasets.delegation` — RIR ``delegated-extended`` files;
* :mod:`repro.datasets.iana` — the IANA AS-number registry;
* :mod:`repro.datasets.customercone` — customer cones and PPDC;
* :mod:`repro.datasets.validationset` — cleaned validation sets (the
  artifact cache's on-disk form of the §4.2 output).
"""

from repro.datasets.paths import CollectedRoute, Path, PathCorpus

__all__ = ["CollectedRoute", "Path", "PathCorpus"]
