"""Text serialisation of collected routes ("bgpdump-style").

Real pipelines exchange RIB snapshots as line-oriented text (bgpdump
``-m`` output, CAIDA's AS-path files).  This module defines an
equivalent, lossless format for :class:`~repro.datasets.paths.PathCorpus`
so corpora can be written to disk, shipped, and re-read without keeping
the simulator around::

    # repro path corpus v1
    1299 2098 64500|1299:200 2098:100
    174 3356|

Each line is the AS path (vantage point first, origin last), a ``|``,
and the surviving communities as space-separated ``asn:value`` pairs.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from repro.bgp.communities import Community
from repro.datasets.paths import CollectedRoute, PathCorpus

_HEADER = "# repro path corpus v1"


def write_path_corpus(corpus: PathCorpus, path: Union[str, Path]) -> int:
    """Serialise every route; returns the number of lines written."""
    lines: List[str] = [_HEADER]
    for route in corpus.routes():
        path_part = " ".join(str(asn) for asn in route.path)
        community_part = " ".join(
            f"{asn}:{value}" for asn, value in route.communities
        )
        lines.append(f"{path_part}|{community_part}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")
    return len(lines) - 1


def read_path_corpus(path: Union[str, Path]) -> PathCorpus:
    """Parse a corpus file back into a fully-indexed :class:`PathCorpus`."""
    corpus = PathCorpus()
    for line_no, raw in enumerate(
        Path(path).read_text(encoding="ascii").splitlines(), 1
    ):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if "|" not in line:
            raise ValueError(f"{path}:{line_no}: missing '|' separator: {raw!r}")
        path_part, community_part = line.split("|", 1)
        as_path = tuple(int(token) for token in path_part.split())
        if not as_path:
            raise ValueError(f"{path}:{line_no}: empty AS path")
        communities: List[Community] = []
        for token in community_part.split():
            owner_s, value_s = token.split(":", 1)
            communities.append((int(owner_s), int(value_s)))
        corpus.add_route(
            CollectedRoute(
                vp=as_path[0],
                origin=as_path[-1],
                path=as_path,
                communities=tuple(communities),
            )
        )
    return corpus
