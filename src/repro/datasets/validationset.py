"""Serialisation of cleaned validation sets.

The artifact cache stores the §4.2-cleaned validation data alongside
the path corpus so a warm scenario build re-reads its ground-truth
labels instead of recompiling them.  The format follows the repo's
line-oriented house style::

    # repro validation set v1
    # policy: ignore
    # report: {"n_as_trans_links": 3, ...}
    <asn>|<asn>|<rel-code>|<provider-asn or ->

One line per kept link, sorted by canonical link key; the cleaning
report (whose counters the paper's §4.2 numbers map onto) rides along
as a JSON header comment so the round trip is lossless.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.topology.graph import RelType, link_key
from repro.validation.cleaning import (
    CleanedValidation,
    CleaningReport,
    MultiLabelPolicy,
)

_HEADER = "# repro validation set v1"

#: CleaningReport counter fields serialised into the header (the policy
#: is stored separately because it is an enum).
_REPORT_FIELDS = (
    "n_as_trans_links",
    "n_reserved_links",
    "n_multi_label_links",
    "n_multi_label_ases",
    "n_sibling_links",
    "n_kept_links",
)


def write_validation_set(
    cleaned: CleanedValidation, path: Union[str, Path]
) -> int:
    """Write a cleaned validation set; returns the number of links."""
    report = cleaned.report
    counters = {name: getattr(report, name) for name in _REPORT_FIELDS}
    lines: List[str] = [
        _HEADER,
        f"# policy: {report.multi_label_policy.value}",
        f"# report: {json.dumps(counters, sort_keys=True)}",
    ]
    for key in sorted(cleaned.rels):
        rel, provider = cleaned.rels[key]
        if rel is RelType.P2C and provider is not None:
            # Preserve direction: provider first, like the as-rel format.
            customer = key[0] if key[1] == provider else key[1]
            lines.append(f"{provider}|{customer}|{rel.code}|{provider}")
        else:
            provider_part = "-" if provider is None else str(provider)
            lines.append(f"{key[0]}|{key[1]}|{rel.code}|{provider_part}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")
    return len(cleaned.rels)


def read_validation_set(path: Union[str, Path]) -> CleanedValidation:
    """Parse a validation-set file back into :class:`CleanedValidation`."""
    policy = MultiLabelPolicy.IGNORE
    counters = {}
    rels = {}
    for line_no, raw in enumerate(
        Path(path).read_text(encoding="ascii").splitlines(), 1
    ):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line.lstrip("#").strip()
            if body.startswith("policy:"):
                policy = MultiLabelPolicy(body[len("policy:"):].strip())
            elif body.startswith("report:"):
                counters = json.loads(body[len("report:"):].strip())
            continue
        parts = line.split("|")
        if len(parts) != 4:
            raise ValueError(
                f"{path}:{line_no}: malformed validation line: {raw!r}"
            )
        a, b, code = int(parts[0]), int(parts[1]), int(parts[2])
        provider = None if parts[3] == "-" else int(parts[3])
        rel = RelType.from_code(code)
        rels[link_key(a, b)] = (rel, provider)
    unknown = set(counters) - set(_REPORT_FIELDS)
    if unknown:
        raise ValueError(f"{path}: unknown report counters {sorted(unknown)}")
    report = CleaningReport(multi_label_policy=policy, **counters)
    return CleanedValidation(rels=rels, report=report)
