"""CAIDA serial-1 ``as-rel`` file format.

The inference algorithms' outputs (and CAIDA's published inferences the
paper consumes) use a line-oriented format::

    # comment lines start with '#'
    <provider-asn>|<customer-asn>|-1
    <peer-asn>|<peer-asn>|0

A sibling extension (``|1``) is accepted on read for completeness.  The
module converts between files and :class:`RelationshipSet`, the in-memory
mapping used everywhere downstream.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.topology.graph import LinkKey, RelType, link_key


class RelationshipSet:
    """A set of inferred or published AS relationships.

    Internally a dict from the canonical link key to ``(rel, provider)``
    where ``provider`` is meaningful only for P2C entries.  The class
    preserves P2C direction while exposing undirected lookups, which is
    what the evaluation layer needs.
    """

    def __init__(self) -> None:
        self._rels: Dict[LinkKey, Tuple[RelType, int]] = {}

    def __len__(self) -> int:
        return len(self._rels)

    def __contains__(self, key: LinkKey) -> bool:
        return key in self._rels

    def set_p2c(self, provider: int, customer: int) -> None:
        """Record a provider-to-customer relationship."""
        self._rels[link_key(provider, customer)] = (RelType.P2C, provider)

    def set_p2p(self, a: int, b: int) -> None:
        """Record a settlement-free peering relationship."""
        self._rels[link_key(a, b)] = (RelType.P2P, min(a, b))

    def set_s2s(self, a: int, b: int) -> None:
        """Record a sibling relationship."""
        self._rels[link_key(a, b)] = (RelType.S2S, min(a, b))

    def remove(self, a: int, b: int) -> None:
        del self._rels[link_key(a, b)]

    def rel_of(self, a: int, b: int) -> Optional[RelType]:
        entry = self._rels.get(link_key(a, b))
        return entry[0] if entry else None

    def provider_of(self, a: int, b: int) -> Optional[int]:
        """For a P2C link, the provider side; ``None`` otherwise."""
        entry = self._rels.get(link_key(a, b))
        if entry and entry[0] is RelType.P2C:
            return entry[1]
        return None

    def links(self) -> Iterator[LinkKey]:
        """Link keys in sorted order.

        Iteration is deliberately *not* insertion-ordered: a set read
        back from disk or assembled by a different (but equivalent)
        code path must drive every consumer identically, so the
        canonical key order is the only one ever exposed.
        """
        return iter(sorted(self._rels))

    def items(self) -> Iterator[Tuple[LinkKey, RelType, int]]:
        """Yield (link key, relationship, provider-or-smaller-asn) in
        sorted key order (see :meth:`links`)."""
        for key in sorted(self._rels):
            rel, provider = self._rels[key]
            yield key, rel, provider

    def counts(self) -> Dict[RelType, int]:
        out = {rel: 0 for rel in RelType}
        for rel, _ in self._rels.values():
            out[rel] += 1
        return out

    def customers_map(self) -> Dict[int, List[int]]:
        """provider -> customers, derived from the P2C entries.

        Built over the sorted key order, so the customer lists come out
        identical no matter how (or from where) the set was populated.
        """
        result: Dict[int, List[int]] = {}
        for key, rel, provider in self.items():
            if rel is not RelType.P2C:
                continue
            customer = key[0] if key[1] == provider else key[1]
            result.setdefault(provider, []).append(customer)
        return result

    def copy(self) -> "RelationshipSet":
        clone = RelationshipSet()
        clone._rels = dict(self._rels)
        return clone


def write_asrel(
    rels: RelationshipSet,
    path: Union[str, Path],
    header_lines: Iterable[str] = (),
) -> None:
    """Write a serial-1 as-rel file (siblings included with code 1)."""
    lines: List[str] = [f"# {line}" for line in header_lines]
    for key, rel, provider in sorted(rels.items()):
        if rel is RelType.P2C:
            customer = key[0] if key[1] == provider else key[1]
            lines.append(f"{provider}|{customer}|{rel.code}")
        else:
            lines.append(f"{key[0]}|{key[1]}|{rel.code}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_asrel(path: Union[str, Path]) -> RelationshipSet:
    """Parse a serial-1 as-rel file."""
    rels = RelationshipSet()
    for line_no, raw in enumerate(Path(path).read_text(encoding="ascii").splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split("|")
        if len(parts) != 3:
            raise ValueError(f"{path}:{line_no}: malformed as-rel line: {raw!r}")
        a, b, code = int(parts[0]), int(parts[1]), int(parts[2])
        rel = RelType.from_code(code)
        if rel is RelType.P2C:
            rels.set_p2c(provider=a, customer=b)
        elif rel is RelType.P2P:
            rels.set_p2p(a, b)
        else:
            rels.set_s2s(a, b)
    return rels
