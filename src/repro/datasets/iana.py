"""The IANA "Autonomous System (AS) Numbers" registry.

IANA hands out ASN *blocks* to the RIRs; the paper bootstraps its
ASN-to-region mapping from this table before refining it with the RIR
delegation files.  The module serialises a scenario's block table in a
CSV layout mirroring the registry
(https://www.iana.org/assignments/as-numbers/) and parses it back.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from repro.topology.regions import Region, RegionMap

_HEADER = "Number,Description,WHOIS,Reference,Registration Date"

_REGION_DESCRIPTION = {
    Region.AFRINIC: "Assigned by AFRINIC",
    Region.APNIC: "Assigned by APNIC",
    Region.ARIN: "Assigned by ARIN",
    Region.LACNIC: "Assigned by LACNIC",
    Region.RIPE: "Assigned by RIPE NCC",
}

_DESCRIPTION_REGION = {v: k for k, v in _REGION_DESCRIPTION.items()}


def write_iana_registry(
    blocks: List[Tuple[int, int, Region]], path: Union[str, Path]
) -> None:
    """Write the block table as a registry-style CSV."""
    lines = [_HEADER]
    for low, high, region in sorted(blocks):
        number = str(low) if low == high else f"{low}-{high}"
        description = _REGION_DESCRIPTION[region]
        whois = f"whois.{region.registry_name}.net"
        lines.append(f"{number},{description},{whois},,")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_iana_registry(path: Union[str, Path]) -> List[Tuple[int, int, Region]]:
    """Parse a registry CSV back into ``(low, high, region)`` blocks.

    Rows whose description does not name an RIR (reserved blocks,
    AS_TRANS, unallocated space) are skipped, exactly as a mapping
    pipeline would.
    """
    blocks: List[Tuple[int, int, Region]] = []
    for line_no, raw in enumerate(
        Path(path).read_text(encoding="ascii").splitlines(), 1
    ):
        line = raw.strip()
        if not line or line == _HEADER:
            continue
        parts = line.split(",")
        if len(parts) < 2:
            raise ValueError(f"{path}:{line_no}: malformed registry row: {raw!r}")
        number, description = parts[0], parts[1]
        region = _DESCRIPTION_REGION.get(description)
        if region is None:
            continue
        if "-" in number:
            low_s, high_s = number.split("-", 1)
            low, high = int(low_s), int(high_s)
        else:
            low = high = int(number)
        blocks.append((low, high, region))
    return blocks


def region_map_from_registry(path: Union[str, Path]) -> RegionMap:
    """Build a (delegation-free) :class:`RegionMap` from a registry CSV."""
    region_map = RegionMap()
    for low, high, region in read_iana_registry(path):
        region_map.add_iana_block(low, high, region)
    return region_map
