"""Customer cones: recursive and provider/peer observed (PPDC).

Two cone flavours appear in the paper:

* the **recursive customer cone** over a set of inferred P2C links —
  used to split ASes into Stub vs Transit (Figure 2's classification is
  "at least one other AS in its customer cone");
* the **provider/peer observed customer cone (PPDC)** of Luckie et al.:
  the ASes observed *behind* an AS on paths that enter it through a
  provider or peer link.  The Appendix B heatmaps (Figures 7 and 8) bin
  transit links by PPDC size, optionally ignoring links incident to
  vantage points.

Both are computed from inferred relationships (plus the path corpus for
PPDC) — never from ground truth — because the paper itself warns that
PPDC "relies on the correctness of the inferred business relationships
and might hence be biased".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.datasets.asrel import RelationshipSet
from repro.datasets.paths import PathCorpus
from repro.topology.graph import RelType


def recursive_customer_cones(rels: RelationshipSet) -> Dict[int, Set[int]]:
    """Customer cone of every AS appearing in ``rels``.

    Provider cycles (possible in *inferred* data even though ground
    truth is acyclic) are handled by falling back to per-AS BFS for the
    ASes on cycles.
    """
    customers: Dict[int, List[int]] = rels.customers_map()
    all_ases: Set[int] = set()
    for key, rel, _ in rels.items():
        all_ases.update(key)
    cones: Dict[int, Set[int]] = {}

    def bfs(start: int) -> Set[int]:
        cone: Set[int] = set()
        frontier = list(customers.get(start, ()))
        while frontier:
            asn = frontier.pop()
            if asn in cone or asn == start:
                continue
            cone.add(asn)
            frontier.extend(customers.get(asn, ()))
        return cone

    for asn in all_ases:
        cones[asn] = bfs(asn)
    return cones


def customer_cone_sizes(rels: RelationshipSet) -> Dict[int, int]:
    """Cone cardinalities, the quantity CAIDA publishes."""
    return {asn: len(cone) for asn, cone in recursive_customer_cones(rels).items()}


def ppdc_cones(
    corpus: PathCorpus,
    rels: RelationshipSet,
    ignore_vp_incident: bool = False,
) -> Dict[int, Set[int]]:
    """Provider/peer observed customer cones from the path corpus.

    For every collected path ``p0 .. pk`` (collector side first) and
    every transit position ``i``: if the link ``(p[i-1], p[i])`` is
    inferred such that ``p[i-1]`` is a provider or peer of ``p[i]``,
    then everything after ``p[i]`` is observed inside ``p[i]``'s
    customer cone.

    With ``ignore_vp_incident`` the first link of each path (the one
    incident to the vantage point) contributes no observation — the
    Figure 8 variant that removes the collector-peer bias.
    """
    vps = corpus.vantage_points
    cones: Dict[int, Set[int]] = {}
    for path in corpus.paths():
        for i in range(1, len(path) - 1):
            upstream, asn = path[i - 1], path[i]
            if ignore_vp_incident and i == 1 and upstream in vps:
                continue
            rel = rels.rel_of(upstream, asn)
            if rel is None or rel is RelType.S2S:
                continue
            if rel is RelType.P2P or (
                rel is RelType.P2C and rels.provider_of(upstream, asn) == upstream
            ):
                cones.setdefault(asn, set()).update(path[i + 1 :])
    return cones


def ppdc_sizes(
    corpus: PathCorpus,
    rels: RelationshipSet,
    ignore_vp_incident: bool = False,
) -> Dict[int, int]:
    """PPDC cardinality per AS (0 for ASes never observed in transit)."""
    cones = ppdc_cones(corpus, rels, ignore_vp_incident=ignore_vp_incident)
    sizes = {asn: 0 for asn in corpus.visible_ases()}
    for asn, cone in cones.items():
        sizes[asn] = len(cone)
    return sizes


def stub_transit_split(
    rels: RelationshipSet, universe: Optional[Iterable[int]] = None
) -> Dict[int, bool]:
    """``asn -> is_transit`` per the paper's customer-cone criterion.

    ASes in ``universe`` that never appear as a provider are stubs.
    """
    providers_with_customers = set(rels.customers_map().keys())
    if universe is None:
        universe_set: Set[int] = set()
        for key, _, _ in rels.items():
            universe_set.update(key)
    else:
        universe_set = set(universe)
    return {asn: asn in providers_with_customers for asn in universe_set}
