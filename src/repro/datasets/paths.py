"""The collected AS-path corpus and its derived indices.

A :class:`PathCorpus` is the simulator's analogue of "a month of
RouteViews/RIS table dumps": every AS path exported by a vantage point
to a route collector, with whatever BGP communities survived
propagation.  All downstream consumers work from this corpus only:

* the inference algorithms (visible links, triplets, transit degrees);
* the validation compiler (decodable relationship communities);
* the feature extractor (Appendix C metrics).

Two storage layouts implement one API:

* ``columnar`` (the default) keeps the routes in numpy CSR columns
  (:mod:`repro.pipeline.columnar`) and derives every index lazily with
  vectorized array passes — this is what paper-scale runs use, and what
  the artifact cache memory-maps on warm reads;
* ``legacy`` rebuilds the original incremental dict/set indices route
  by route — retained as the differential baseline (the byte-equality
  matrix in ``tests/pipeline/test_columnar_equivalence.py`` runs every
  algorithm against both layouts) and selectable for debugging via
  ``PathCorpus(layout="legacy")`` or ``REPRO_CORPUS_LAYOUT=legacy``.

Both layouts produce byte-identical derived views, including dict
iteration orders where observable (see the contract notes in
:mod:`repro.pipeline.columnar`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

import numpy as np

from repro.bgp.communities import Community
from repro.topology.graph import LinkKey, link_key

if TYPE_CHECKING:
    from repro.pipeline.columnar import ColumnarIndices, CorpusColumns

#: An AS path as collected: vantage point first, origin last.
Path = Tuple[int, ...]

#: Recognised corpus storage layouts.
_LAYOUTS = ("columnar", "legacy")


@dataclass(frozen=True)
class CollectedRoute:
    """One route as recorded by a collector."""

    vp: int
    origin: int
    path: Path
    communities: Tuple[Community, ...] = ()

    def links(self) -> Iterator[LinkKey]:
        """Undirected link keys along the path."""
        for a, b in zip(self.path, self.path[1:]):
            yield link_key(a, b)


class _LegacyIndex:
    """The original eager per-route dict/set indices.

    Kept verbatim as the differential baseline for the columnar engine:
    every derived view of a ``layout="legacy"`` corpus is computed from
    these structures exactly as the pre-columnar code did.
    """

    def __init__(self) -> None:
        #: link -> set of VPs that saw it (ProbLink's "observed by k VPs").
        self.link_vps: Dict[LinkKey, Set[int]] = {}
        #: x -> set of neighbours seen adjacent to x while x was in the
        #: middle of a path (the CAIDA transit-degree definition).
        self.transit_neighbors: Dict[int, Set[int]] = {}
        #: x -> all neighbours of x seen in any path (visible node degree).
        self.neighbors: Dict[int, Set[int]] = {}
        #: directed triplets (a, x, b) as observed left-to-right, i.e.
        #: the collector-side AS first.
        self.triplets: Set[Tuple[int, int, int]] = set()
        #: link -> ASes observed to the left (collector side) of it.
        self.left_of_link: Dict[LinkKey, Set[int]] = {}
        #: link -> ASes observed to the right (origin side) of it.
        self.right_of_link: Dict[LinkKey, Set[int]] = {}
        #: origins observed announcing through each link.
        self.link_origins: Dict[LinkKey, Set[int]] = {}

    def index(self, path: Path, vp: int, origin: int) -> None:
        for position in range(len(path) - 1):
            a, b = path[position], path[position + 1]
            key = link_key(a, b)
            self.link_vps.setdefault(key, set()).add(vp)
            self.neighbors.setdefault(a, set()).add(b)
            self.neighbors.setdefault(b, set()).add(a)
            if position > 0:
                left = path[:position]
                self.left_of_link.setdefault(key, set()).update(left)
            if position + 2 < len(path):
                right = path[position + 2 :]
                self.right_of_link.setdefault(key, set()).update(right)
            self.link_origins.setdefault(key, set()).add(origin)
        for position in range(1, len(path) - 1):
            a, x, b = path[position - 1], path[position], path[position + 1]
            self.triplets.add((a, x, b))
            transit = self.transit_neighbors.setdefault(x, set())
            transit.add(a)
            transit.add(b)


class PathCorpus:
    """All collected routes plus the indices the paper's pipeline needs."""

    def __init__(self, layout: Optional[str] = None) -> None:
        if layout is None:
            layout = os.environ.get("REPRO_CORPUS_LAYOUT") or "columnar"
        if layout not in _LAYOUTS:
            raise ValueError(
                f"unknown corpus layout {layout!r}; expected one of {_LAYOUTS}"
            )
        self.layout = layout
        self._paths: Optional[List[Path]] = []
        self._seen_paths: Optional[Set[Path]] = set()
        self._communities: Optional[Dict[int, Tuple[Community, ...]]] = {}
        self._vp_set: Optional[Set[int]] = set()
        self._legacy = _LegacyIndex() if layout == "legacy" else None
        #: Columnar backing (set when loaded from a cache artifact, or
        #: built lazily from the accumulated paths).
        self._columns: Optional["CorpusColumns"] = None
        self._index: Optional["ColumnarIndices"] = None
        self._memo: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_columns(cls, columns: "CorpusColumns") -> "PathCorpus":
        """Wrap pre-built (possibly memory-mapped) corpus columns.

        Paths, communities and the dedup set materialise lazily, only
        when a consumer actually iterates routes — the inference hot
        path never does, so a warm cache load stays near-zero-copy.
        """
        corpus = cls(layout="columnar")
        corpus._columns = columns
        corpus._paths = None
        corpus._seen_paths = None
        corpus._communities = None
        corpus._vp_set = None
        return corpus

    def add_route(self, route: CollectedRoute) -> bool:
        """Index one collected route.

        Identical paths (same VP, origin, and hops — and therefore the
        same communities, which are deterministic per path) are stored
        once; re-adding returns ``False``.  This keeps multi-round
        (churn) collection linear in the number of *distinct* routes.
        """
        path = route.path
        if len(path) < 1:
            raise ValueError("empty AS path")
        if path[0] != route.vp or path[-1] != route.origin:
            raise ValueError("path endpoints disagree with vp/origin")
        self._materialise()
        if path in self._seen_paths:
            return False
        self._seen_paths.add(path)
        index = len(self._paths)
        self._paths.append(path)
        if route.communities:
            self._communities[index] = route.communities
        self._vp_set.add(route.vp)
        if self._legacy is not None:
            self._legacy.index(path, route.vp, route.origin)
        self._invalidate()
        return True

    def add_routes(self, routes: Iterable[CollectedRoute]) -> int:
        """Bulk :meth:`add_route`; returns the number actually added."""
        added = 0
        for route in routes:
            if self.add_route(route):
                added += 1
        return added

    def _invalidate(self) -> None:
        self._columns = None
        self._index = None
        if self._memo:
            self._memo = {}

    def _materialise(self) -> None:
        """Rebuild the Python-side route storage from the columns."""
        if self._paths is not None:
            return
        cols = self._columns
        hops = cols.hops.tolist()
        offsets = cols.offsets.tolist()
        self._paths = [
            tuple(hops[offsets[i] : offsets[i + 1]])
            for i in range(len(offsets) - 1)
        ]
        self._seen_paths = set(self._paths)
        if self._communities is None:
            self._communities = cols.communities_dict()
        if self._vp_set is None:
            self._vp_set = {path[0] for path in self._paths}

    def _ensure_communities(self) -> Dict[int, Tuple[Community, ...]]:
        if self._communities is None:
            self._communities = self._columns.communities_dict()
        return self._communities

    # ------------------------------------------------------------------
    # columnar machinery
    # ------------------------------------------------------------------
    def columns(self) -> "CorpusColumns":
        """The corpus as CSR columns (built once, reused by the cache)."""
        if self._columns is None:
            from repro.pipeline.columnar import CorpusColumns

            self._columns = CorpusColumns.from_paths(
                self._paths, self._communities
            )
        return self._columns

    def columnar_index(self) -> Optional["ColumnarIndices"]:
        """The vectorized index, or ``None`` on a legacy-layout corpus."""
        if self._legacy is not None:
            return None
        return self._indices()

    def _indices(self) -> "ColumnarIndices":
        if self._index is None:
            from repro.pipeline.columnar import ColumnarIndices

            self._index = ColumnarIndices(self.columns())
        return self._index

    def _memoised(self, name: str, builder: Callable[[], Any]) -> Any:
        try:
            return self._memo[name]
        except KeyError:
            value = builder()
            self._memo[name] = value
            return value

    def _degree_maps(self) -> Tuple[Dict[int, int], Dict[int, int]]:
        """(transit degrees, node degrees) in legacy first-seen order."""
        if "transit" not in self._memo:
            ases, transit, node = self._indices().degrees_first_seen()
            self._memo["transit"] = dict(zip(ases, transit))
            self._memo["node"] = dict(zip(ases, node))
        return self._memo["transit"], self._memo["node"]

    def memory_report(self) -> Dict[str, Any]:
        """Column and index byte counts (``repro corpus stats``)."""
        if self._legacy is not None:
            return {
                "columns_bytes": {},
                "index_bytes": {},
                "total_bytes": 0,
                "layout": "legacy",
            }
        report = self._indices().memory_report()
        report["layout"] = "columnar"
        report["backing"] = self.columns().backing()
        return report

    # ------------------------------------------------------------------
    # raw access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._paths is not None:
            return len(self._paths)
        return self._columns.n_routes

    def paths(self) -> Iterator[Path]:
        self._materialise()
        return iter(self._paths)

    def routes(self) -> Iterator[CollectedRoute]:
        """Re-materialise :class:`CollectedRoute` objects."""
        self._materialise()
        for index, path in enumerate(self._paths):
            yield CollectedRoute(
                vp=path[0],
                origin=path[-1],
                path=path,
                communities=self._communities.get(index, ()),
            )

    @property
    def vantage_points(self) -> FrozenSet[int]:
        if self._vp_set is None:
            self._vp_set = set(self._columns.vp_column().tolist())
        return frozenset(self._vp_set)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def visible_links(self) -> List[LinkKey]:
        """Every link that appears in at least one collected path —
        the paper's "inferred links" universe."""
        if self._legacy is not None:
            return sorted(self._legacy.link_vps.keys())
        return list(
            self._memoised("links", lambda: self._indices().link_keys_list())
        )

    def link_visibility(self, key: LinkKey) -> int:
        """Number of distinct VPs that observed the link."""
        if self._legacy is not None:
            return len(self._legacy.link_vps.get(key, ()))

        def build() -> Dict[LinkKey, int]:
            index = self._indices()
            return dict(
                zip(
                    index.link_keys_list(),
                    index.link_visibility_counts().tolist(),
                )
            )

        return self._memoised("link_visibility", build).get(key, 0)

    def vps_seeing(self, key: LinkKey) -> FrozenSet[int]:
        if self._legacy is not None:
            return frozenset(self._legacy.link_vps.get(key, ()))
        return frozenset(self._indices().link_vps(key))

    def triplets(self) -> FrozenSet[Tuple[int, int, int]]:
        """All directed (left, middle, right) triplets."""
        if self._legacy is not None:
            return frozenset(self._legacy.triplets)
        return self._memoised(
            "triplets", lambda: frozenset(self._indices().triplet_tuples())
        )

    def has_triplet(self, left: int, middle: int, right: int) -> bool:
        if self._legacy is not None:
            return (left, middle, right) in self._legacy.triplets
        return self._indices().has_triplet(left, middle, right)

    def transit_degree(self, asn: int) -> int:
        """CAIDA transit degree: unique neighbours adjacent to ``asn``
        in paths where ``asn`` appears in transit position."""
        if self._legacy is not None:
            return len(self._legacy.transit_neighbors.get(asn, ()))
        return self._degree_maps()[0].get(asn, 0)

    def transit_degrees(self) -> Dict[int, int]:
        if self._legacy is not None:
            degrees = {asn: 0 for asn in self._legacy.neighbors}
            for asn, neighbors in self._legacy.transit_neighbors.items():
                degrees[asn] = len(neighbors)
            return degrees
        return dict(self._degree_maps()[0])

    def node_degree(self, asn: int) -> int:
        """Visible node degree (distinct neighbours in any path)."""
        if self._legacy is not None:
            return len(self._legacy.neighbors.get(asn, ()))
        return self._degree_maps()[1].get(asn, 0)

    def node_degrees(self) -> Dict[int, int]:
        if self._legacy is not None:
            return {
                asn: len(neigh)
                for asn, neigh in self._legacy.neighbors.items()
            }
        return dict(self._degree_maps()[1])

    def visible_ases(self) -> List[int]:
        if self._legacy is not None:
            return sorted(self._legacy.neighbors.keys())
        return list(
            self._memoised(
                "ases", lambda: self._indices().visible_ases_sorted()
            )
        )

    def ases_left_of(self, key: LinkKey) -> FrozenSet[int]:
        """ASes that can observe the link (occur left of it) —
        Appendix C feature #6."""
        if self._legacy is not None:
            return frozenset(self._legacy.left_of_link.get(key, ()))
        return frozenset(self._indices().left_of(key))

    def ases_right_of(self, key: LinkKey) -> FrozenSet[int]:
        """ASes that may receive traffic via the link (occur right of
        it) — Appendix C feature #7."""
        if self._legacy is not None:
            return frozenset(self._legacy.right_of_link.get(key, ()))
        return frozenset(self._indices().right_of(key))

    def origins_via(self, key: LinkKey) -> FrozenSet[int]:
        """Origins whose routes were seen crossing the link —
        Appendix C features #4/#5 build on this."""
        if self._legacy is not None:
            return frozenset(self._legacy.link_origins.get(key, ()))
        return frozenset(self._indices().origins_via(key))

    def communities_of_route(self, index: int) -> Tuple[Community, ...]:
        return self._ensure_communities().get(index, ())

    def routes_with_communities(self) -> Iterator[CollectedRoute]:
        """Only the routes that still carry at least one community."""
        self._materialise()
        for index in sorted(self._communities):
            path = self._paths[index]
            yield CollectedRoute(
                vp=path[0],
                origin=path[-1],
                path=path,
                communities=self._communities[index],
            )

    def stats(self) -> Dict[str, int]:
        if self._legacy is not None:
            return {
                "n_routes": len(self._paths),
                "n_vps": len(self._vp_set),
                "n_visible_links": len(self._legacy.link_vps),
                "n_visible_ases": len(self._legacy.neighbors),
                "n_triplets": len(self._legacy.triplets),
                "n_routes_with_communities": len(self._communities),
            }
        index = self._indices()
        if self._communities is not None:
            n_with_communities = len(self._communities)
        else:
            n_with_communities = self._columns.n_community_routes()
        return {
            "n_routes": len(self),
            "n_vps": len(self.vantage_points),
            "n_visible_links": index.n_links,
            "n_visible_ases": index.n_ases,
            "n_triplets": index.n_triplets,
            "n_routes_with_communities": n_with_communities,
        }

    # ------------------------------------------------------------------
    # inference hot-loop accessors
    # ------------------------------------------------------------------
    def triplet_continuations(self) -> Dict[Tuple[int, int], List[int]]:
        """Triplets grouped by their leading directed pair:
        ``(a, x) -> [b, ...]`` with each continuation list ascending."""
        if self._legacy is not None:
            continuations: Dict[Tuple[int, int], List[int]] = {}
            for a, x, b in sorted(self._legacy.triplets):
                continuations.setdefault((a, x), []).append(b)
            return continuations
        return self._indices().triplet_continuations()

    def descending_seed_pairs(
        self, clique: Iterable[int]
    ) -> List[Tuple[int, int]]:
        """Distinct directed pairs on the suffix of every path after its
        first consecutive clique pair (ASRank's P2C seed evidence),
        sorted ascending."""
        if self._legacy is not None:
            clique_set = set(clique)
            seeds: Set[Tuple[int, int]] = set()
            for path in self._paths:
                for i in range(len(path) - 1):
                    if path[i] in clique_set and path[i + 1] in clique_set:
                        for j in range(i + 1, len(path) - 1):
                            seeds.add((path[j], path[j + 1]))
                        break
            return sorted(seeds)
        return self._indices().descending_seed_pairs(clique)

    def apparent_providers(
        self, clique: Iterable[int]
    ) -> Dict[int, Set[int]]:
        """For each tentative clique member: ASes observed as its
        provider (the transit-free refinement's evidence — see
        :func:`repro.inference.base.infer_clique`)."""
        clique_set = set(clique)
        providers: Dict[int, Set[int]] = {asn: set() for asn in clique_set}
        if self._legacy is not None:
            for path in self._paths:
                apex_crossed_at = None
                for i in range(len(path) - 1):
                    if path[i] in clique_set and path[i + 1] in clique_set:
                        apex_crossed_at = i
                        break
                if apex_crossed_at is None:
                    continue
                for j in range(apex_crossed_at + 2, len(path)):
                    asn = path[j]
                    if asn in clique_set:
                        upstream = path[j - 1]
                        if upstream not in clique_set:
                            providers[asn].add(upstream)
            return providers
        for member, upstream in self._indices().apparent_provider_pairs(
            clique_set
        ):
            providers[member].add(upstream)
        return providers


def filter_by_vps(corpus: PathCorpus, vps: Set[int]) -> PathCorpus:
    """Sub-corpus containing only routes from the given vantage points.

    TopoScope's bootstrapping partitions the VP set into groups and runs
    the base inference per group; this helper materialises each group's
    view of the world.  On a columnar corpus the sub-corpus is sliced
    directly out of the CSR columns — no per-route Python loop.
    """
    if corpus.layout != "columnar":
        sub = PathCorpus(layout=corpus.layout)
        for route in corpus.routes():
            if route.vp in vps:
                sub.add_route(route)
        return sub
    from repro.pipeline.columnar import CorpusColumns

    cols = corpus.columns()
    vp_list = sorted(v for v in vps if 0 <= v <= 0xFFFFFFFF)
    vp_arr = np.fromiter(vp_list, dtype=np.uint32, count=len(vp_list))
    keep = np.isin(cols.vp_column(), vp_arr)
    keep_routes = np.flatnonzero(keep)
    lengths = cols.lengths()
    new_lengths = lengths[keep_routes]
    new_offsets = np.zeros(len(keep_routes) + 1, dtype=np.int64)
    np.cumsum(new_lengths, out=new_offsets[1:])
    new_hops = np.ascontiguousarray(cols.hops[np.repeat(keep, lengths)])
    if len(cols.comm_route):
        comm_keep = np.isin(cols.comm_route, keep_routes)
        new_comm_route = np.searchsorted(
            keep_routes, cols.comm_route[comm_keep]
        ).astype(np.int64)
        new_comm_owner = np.ascontiguousarray(cols.comm_owner[comm_keep])
        new_comm_value = np.ascontiguousarray(cols.comm_value[comm_keep])
    else:
        new_comm_route = np.empty(0, dtype=np.int64)
        new_comm_owner = np.empty(0, dtype=np.uint32)
        new_comm_value = np.empty(0, dtype=np.int64)
    return PathCorpus.from_columns(
        CorpusColumns(
            hops=new_hops,
            offsets=new_offsets,
            comm_route=new_comm_route,
            comm_owner=new_comm_owner,
            comm_value=new_comm_value,
        )
    )
