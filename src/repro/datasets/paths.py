"""The collected AS-path corpus and its derived indices.

A :class:`PathCorpus` is the simulator's analogue of "a month of
RouteViews/RIS table dumps": every AS path exported by a vantage point
to a route collector, with whatever BGP communities survived
propagation.  All downstream consumers work from this corpus only:

* the inference algorithms (visible links, triplets, transit degrees);
* the validation compiler (decodable relationship communities);
* the feature extractor (Appendix C metrics).

Indices are built incrementally while the collector streams routes in,
so the corpus never needs a second pass over raw paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.bgp.communities import Community
from repro.topology.graph import LinkKey, link_key

#: An AS path as collected: vantage point first, origin last.
Path = Tuple[int, ...]


@dataclass(frozen=True)
class CollectedRoute:
    """One route as recorded by a collector."""

    vp: int
    origin: int
    path: Path
    communities: Tuple[Community, ...] = ()

    def links(self) -> Iterator[LinkKey]:
        """Undirected link keys along the path."""
        for a, b in zip(self.path, self.path[1:]):
            yield link_key(a, b)


class PathCorpus:
    """All collected routes plus the indices the paper's pipeline needs."""

    def __init__(self) -> None:
        self._paths: List[Path] = []
        self._seen_paths: Set[Path] = set()
        self._communities: Dict[int, Tuple[Community, ...]] = {}
        self._vp_set: Set[int] = set()
        #: link -> set of VPs that saw it (ProbLink's "observed by k VPs").
        self._link_vps: Dict[LinkKey, Set[int]] = {}
        #: x -> set of neighbours seen adjacent to x while x was in the
        #: middle of a path (the CAIDA transit-degree definition).
        self._transit_neighbors: Dict[int, Set[int]] = {}
        #: x -> all neighbours of x seen in any path (visible node degree).
        self._neighbors: Dict[int, Set[int]] = {}
        #: directed triplets (a, x, b) as observed left-to-right, i.e.
        #: the collector-side AS first.
        self._triplets: Set[Tuple[int, int, int]] = set()
        #: link -> ASes observed to the left (collector side) of it.
        self._left_of_link: Dict[LinkKey, Set[int]] = {}
        #: link -> ASes observed to the right (origin side) of it.
        self._right_of_link: Dict[LinkKey, Set[int]] = {}
        #: origins observed announcing through each link.
        self._link_origins: Dict[LinkKey, Set[int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_route(self, route: CollectedRoute) -> bool:
        """Index one collected route.

        Identical paths (same VP, origin, and hops — and therefore the
        same communities, which are deterministic per path) are stored
        once; re-adding returns ``False``.  This keeps multi-round
        (churn) collection linear in the number of *distinct* routes.
        """
        path = route.path
        if len(path) < 1:
            raise ValueError("empty AS path")
        if path[0] != route.vp or path[-1] != route.origin:
            raise ValueError("path endpoints disagree with vp/origin")
        if path in self._seen_paths:
            return False
        self._seen_paths.add(path)
        index = len(self._paths)
        self._paths.append(path)
        if route.communities:
            self._communities[index] = route.communities
        self._vp_set.add(route.vp)
        for position in range(len(path) - 1):
            a, b = path[position], path[position + 1]
            key = link_key(a, b)
            self._link_vps.setdefault(key, set()).add(route.vp)
            self._neighbors.setdefault(a, set()).add(b)
            self._neighbors.setdefault(b, set()).add(a)
            if position > 0:
                left = path[:position]
                self._left_of_link.setdefault(key, set()).update(left)
            if position + 2 < len(path):
                right = path[position + 2 :]
                self._right_of_link.setdefault(key, set()).update(right)
            self._link_origins.setdefault(key, set()).add(route.origin)
        for position in range(1, len(path) - 1):
            a, x, b = path[position - 1], path[position], path[position + 1]
            self._triplets.add((a, x, b))
            transit = self._transit_neighbors.setdefault(x, set())
            transit.add(a)
            transit.add(b)
        return True

    # ------------------------------------------------------------------
    # raw access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._paths)

    def paths(self) -> Iterator[Path]:
        return iter(self._paths)

    def routes(self) -> Iterator[CollectedRoute]:
        """Re-materialise :class:`CollectedRoute` objects."""
        for index, path in enumerate(self._paths):
            yield CollectedRoute(
                vp=path[0],
                origin=path[-1],
                path=path,
                communities=self._communities.get(index, ()),
            )

    @property
    def vantage_points(self) -> FrozenSet[int]:
        return frozenset(self._vp_set)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def visible_links(self) -> List[LinkKey]:
        """Every link that appears in at least one collected path —
        the paper's "inferred links" universe."""
        return sorted(self._link_vps.keys())

    def link_visibility(self, key: LinkKey) -> int:
        """Number of distinct VPs that observed the link."""
        return len(self._link_vps.get(key, ()))

    def vps_seeing(self, key: LinkKey) -> FrozenSet[int]:
        return frozenset(self._link_vps.get(key, ()))

    def triplets(self) -> FrozenSet[Tuple[int, int, int]]:
        """All directed (left, middle, right) triplets."""
        return frozenset(self._triplets)

    def has_triplet(self, left: int, middle: int, right: int) -> bool:
        return (left, middle, right) in self._triplets

    def transit_degree(self, asn: int) -> int:
        """CAIDA transit degree: unique neighbours adjacent to ``asn``
        in paths where ``asn`` appears in transit position."""
        return len(self._transit_neighbors.get(asn, ()))

    def transit_degrees(self) -> Dict[int, int]:
        degrees = {asn: 0 for asn in self._neighbors}
        for asn, neighbors in self._transit_neighbors.items():
            degrees[asn] = len(neighbors)
        return degrees

    def node_degree(self, asn: int) -> int:
        """Visible node degree (distinct neighbours in any path)."""
        return len(self._neighbors.get(asn, ()))

    def node_degrees(self) -> Dict[int, int]:
        return {asn: len(neigh) for asn, neigh in self._neighbors.items()}

    def visible_ases(self) -> List[int]:
        return sorted(self._neighbors.keys())

    def ases_left_of(self, key: LinkKey) -> FrozenSet[int]:
        """ASes that can observe the link (occur left of it) —
        Appendix C feature #6."""
        return frozenset(self._left_of_link.get(key, ()))

    def ases_right_of(self, key: LinkKey) -> FrozenSet[int]:
        """ASes that may receive traffic via the link (occur right of
        it) — Appendix C feature #7."""
        return frozenset(self._right_of_link.get(key, ()))

    def origins_via(self, key: LinkKey) -> FrozenSet[int]:
        """Origins whose routes were seen crossing the link —
        Appendix C features #4/#5 build on this."""
        return frozenset(self._link_origins.get(key, ()))

    def communities_of_route(self, index: int) -> Tuple[Community, ...]:
        return self._communities.get(index, ())

    def routes_with_communities(self) -> Iterator[CollectedRoute]:
        """Only the routes that still carry at least one community."""
        for index in sorted(self._communities):
            path = self._paths[index]
            yield CollectedRoute(
                vp=path[0],
                origin=path[-1],
                path=path,
                communities=self._communities[index],
            )

    def stats(self) -> Dict[str, int]:
        return {
            "n_routes": len(self._paths),
            "n_vps": len(self._vp_set),
            "n_visible_links": len(self._link_vps),
            "n_visible_ases": len(self._neighbors),
            "n_triplets": len(self._triplets),
            "n_routes_with_communities": len(self._communities),
        }


def filter_by_vps(corpus: PathCorpus, vps: Set[int]) -> PathCorpus:
    """Sub-corpus containing only routes from the given vantage points.

    TopoScope's bootstrapping partitions the VP set into groups and runs
    the base inference per group; this helper materialises each group's
    view of the world.
    """
    sub = PathCorpus()
    for route in corpus.routes():
        if route.vp in vps:
            sub.add_route(route)
    return sub
