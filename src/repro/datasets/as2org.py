"""CAIDA AS-to-Organization file format.

The real dataset ships two record types in pipe-separated sections::

    # format: org_id|changed|name|country|source
    ORG-0001|20180401|Example Org|US|SIM
    # format: aut|changed|aut_name|org_id|opaque_id|source
    64500|20180401|EXAMPLE-AS|ORG-0001||SIM

Only the fields the paper's §4.2 sibling filtering needs are modelled;
round-tripping through the file format keeps the pipeline honest about
what the published dataset can and cannot express.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.topology.orgs import Organisation, OrgMap

_ORG_HEADER = "# format: org_id|changed|name|country|source"
_AUT_HEADER = "# format: aut|changed|aut_name|org_id|opaque_id|source"


def write_as2org(orgs: OrgMap, path: Union[str, Path], snapshot: str = "20180401") -> None:
    """Serialise an :class:`OrgMap` in the CAIDA as2org layout."""
    lines: List[str] = [_ORG_HEADER]
    for org in sorted(orgs.orgs(), key=lambda o: o.org_id):
        name = org.name.replace("|", "/")
        lines.append(f"{org.org_id}|{snapshot}|{name}|{org.country}|SIM")
    lines.append(_AUT_HEADER)
    for org in sorted(orgs.orgs(), key=lambda o: o.org_id):
        for asn in sorted(org.asns):
            lines.append(f"{asn}|{snapshot}|AS{asn}|{org.org_id}||SIM")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_as2org(path: Union[str, Path]) -> OrgMap:
    """Parse a CAIDA as2org file back into an :class:`OrgMap`."""
    orgs = OrgMap()
    mode = None
    pending_assignments: List[tuple] = []
    for line_no, raw in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), 1
    ):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            if "org_id|changed|name" in line:
                mode = "org"
            elif "aut|changed|aut_name" in line:
                mode = "aut"
            continue
        parts = line.split("|")
        if mode == "org":
            if len(parts) != 5:
                raise ValueError(f"{path}:{line_no}: malformed org record: {raw!r}")
            org_id, _changed, name, country, _source = parts
            orgs.add_org(
                Organisation(org_id=org_id, name=name, country=country, asns=[])
            )
        elif mode == "aut":
            if len(parts) != 6:
                raise ValueError(f"{path}:{line_no}: malformed aut record: {raw!r}")
            asn, _changed, _aut_name, org_id, _opaque, _source = parts
            pending_assignments.append((int(asn), org_id))
        else:
            raise ValueError(f"{path}:{line_no}: record before format header")
    for asn, org_id in pending_assignments:
        orgs.assign(asn, org_id)
    return orgs
