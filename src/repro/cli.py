"""Command-line interface.

Exposes the reproduction pipeline without writing Python::

    repro figures --ases 1000            # Figures 1-3
    repro table asrank --ases 1000       # Tables 1-3 style output
    repro casestudy                      # the §6.1 investigation
    repro build --out ./artifacts        # export all dataset files
    repro export --out ./results         # machine-readable results bundle
    repro evolve --months 6              # §7 re-sampling experiment
    repro attack --hijacks 3 --leaks 2   # polluted-corpus impact report
    repro cache list [--json]            # inspect the artifact cache
    repro corpus stats [--json]          # corpus counters + columnar memory
    repro serve --port 8787              # HTTP query service (repro.service)
    repro lint [--format json]           # AST contract linter (repro.devtools)

Every command accepts ``--ases``, ``--vps``, ``--seed`` and
``--churn-rounds`` to size the synthetic Internet (defaults are scaled
down from the paper-scale scenario so the CLI answers in seconds),
plus the execution-policy knobs ``--workers N`` (propagation worker
processes; 0 = serial, -1 = CPU count), ``--cache`` / ``--no-cache``
(reuse scenario artifacts from the content-addressed cache under
``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), and
``--propagation-engine vectorized|legacy`` (the frontier-pass engine
versus the reference dict engine; outputs are byte-identical).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro import ScenarioConfig, build_scenario
from repro.pipeline.parallel import resolve_workers
from repro.analysis.report import (
    render_bias_figure,
    render_imbalance_heatmaps,
    render_validation_table,
)
from repro.scenario import ALGORITHM_NAMES, Scenario


def _add_scenario_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ases", type=int, default=1000,
                        help="number of ASes (default 1000)")
    parser.add_argument("--vps", type=int, default=90,
                        help="number of vantage points (default 90)")
    parser.add_argument("--seed", type=int, default=2018,
                        help="scenario seed (default 2018)")
    parser.add_argument("--churn-rounds", type=int, default=2,
                        help="extra collection rounds with link churn")
    parser.add_argument("--workers", type=int, default=0,
                        help="propagation worker processes "
                             "(0 = serial, -1 = CPU count; default 0)")
    parser.add_argument("--cache", dest="cache", action="store_true",
                        default=False,
                        help="reuse scenario artifacts from the cache")
    parser.add_argument("--no-cache", dest="cache", action="store_false",
                        help="force recomputation (default)")
    parser.add_argument("--cache-dir", default=None,
                        help="cache root (default $REPRO_CACHE_DIR "
                             "or ~/.cache/repro)")
    parser.add_argument("--propagation-engine", default=None,
                        choices=("vectorized", "legacy"),
                        help="route propagation engine (default: "
                             "$REPRO_PROPAGATION_ENGINE or vectorized; "
                             "both produce byte-identical artifacts)")


def _config_from(args: argparse.Namespace) -> ScenarioConfig:
    config = ScenarioConfig.default().replace(seed=args.seed)
    config.topology.n_ases = args.ases
    config.measurement.n_vantage_points = args.vps
    config.measurement.n_churn_rounds = args.churn_rounds
    config.validate()
    return config


def _cache_from(args: argparse.Namespace):
    if not getattr(args, "cache", False):
        return None
    from repro.pipeline.cache import ArtifactCache

    return ArtifactCache(root=args.cache_dir)


def _build(args: argparse.Namespace) -> Scenario:
    # One shared normalisation for every command (and `repro serve`):
    # 0 = serial, -1/None = CPU count, positive counts literal.
    workers = resolve_workers(args.workers)
    if getattr(args, "propagation_engine", None):
        # The env var is the single switch the propagation layer (and
        # its worker processes, which inherit the environment) reads.
        os.environ["REPRO_PROPAGATION_ENGINE"] = args.propagation_engine
    print(
        f"building scenario (ases={args.ases}, vps={args.vps}, "
        f"seed={args.seed}, workers={workers}, "
        f"cache={'on' if args.cache else 'off'}) ...",
        file=sys.stderr,
    )
    cache = _cache_from(args)
    scenario = build_scenario(
        _config_from(args), workers=workers, cache=cache
    )
    if cache is not None:
        print(
            f"cache: {cache.hits} hit(s), {cache.misses} miss(es) "
            f"under {cache.root}",
            file=sys.stderr,
        )
    return scenario


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------

def cmd_figures(args: argparse.Namespace) -> int:
    scenario = _build(args)
    print(render_bias_figure(scenario.regional_bias(),
                             "Figure 1 — regional imbalance"))
    print()
    print(render_bias_figure(scenario.topological_bias(),
                             "Figure 2 — topological imbalance"))
    print()
    print(render_imbalance_heatmaps(
        scenario.imbalance_heatmaps("transit_degree", caps=(300.0, 60.0))
    ))
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    scenario = _build(args)
    for name in args.algorithms:
        print(render_validation_table(scenario.validation_table(name)))
        print()
    return 0


def cmd_casestudy(args: argparse.Namespace) -> int:
    scenario = _build(args)
    result = scenario.case_study("asrank")
    print(f"wrongly-P2P T1-TR links: {result.n_wrong}")
    print(f"focus clique member: AS{result.focus_member} "
          f"({result.focus_share:.0%} of wrong links)")
    print(f"looking-glass audited targets: {len(result.targets)}")
    print(f"  partial transit confirmed: {result.n_partial_transit_confirmed}")
    print(f"  stale validation: {result.n_stale_validation}")
    triplets = sum(1 for t in result.targets if t.has_clique_triplet)
    print(f"  targets with clique triplet evidence: {triplets}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    from repro.datasets.as2org import write_as2org
    from repro.datasets.asrel import write_asrel
    from repro.datasets.bgpdump import write_path_corpus
    from repro.datasets.delegation import write_delegation_files
    from repro.datasets.iana import write_iana_registry

    scenario = _build(args)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    write_asrel(scenario.infer("asrank"), out / "as-rel.txt",
                header_lines=["inferred by asrank (repro simulator)"])
    write_as2org(scenario.topology.orgs, out / "as2org.txt")
    write_iana_registry(scenario.topology.region_map.iana_blocks,
                        out / "as-numbers.csv")
    assignments = {
        node.asn: node.region
        for node in scenario.topology.graph.nodes()
        if node.region is not None
    }
    write_delegation_files(assignments, out / "delegations")
    n_routes = write_path_corpus(scenario.corpus, out / "paths.txt")
    print(f"wrote artifacts to {out} ({n_routes} routes)")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import write_results_bundle

    scenario = _build(args)
    directory = write_results_bundle(scenario, args.out)
    files = sorted(f.name for f in directory.iterdir())
    print(f"wrote results bundle to {directory}: {', '.join(files)}")
    return 0


def cmd_evolve(args: argparse.Namespace) -> int:
    from repro.evolution import EvolutionConfig, EvolutionSimulator

    config = _config_from(args)
    simulator = EvolutionSimulator(
        config, EvolutionConfig(months=args.months)
    )
    print(f"evolving {args.months} months ...", file=sys.stderr)
    result = simulator.run()
    print("month  validated-links  visible-links")
    for month, (labels, visible) in enumerate(
        zip(result.monthly_label_counts, result.monthly_visible_links)
    ):
        print(f"{month:5d}  {labels:15d}  {visible:13d}")
    gain = result.oversampling_gain(min_gap_months=args.resample_gap)
    print(f"\nunique samples (gap >= {args.resample_gap} months): "
          f"{result.temporal.unique_samples(args.resample_gap)}")
    print(f"over-sampling gain vs best single snapshot: {gain:.2f}x")
    print(f"links whose validated relationship changed: "
          f"{len(result.temporal.changed_links())}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.pipeline.cache import ArtifactCache

    cache = ArtifactCache(root=args.cache_dir)
    if args.action == "path":
        if args.json:
            print(json.dumps({"root": str(cache.root)}))
        else:
            print(cache.root)
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
        return 0
    # list
    records = cache.entries()
    if args.json:
        # Machine-readable listing for the query service and scripts.
        print(json.dumps(
            {
                "root": str(cache.root),
                "total_size_bytes": cache.total_size(),
                "entries": records,
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    if not records:
        print(f"cache at {cache.root} is empty")
        return 0
    print(f"cache at {cache.root} — {len(records)} entr"
          f"{'y' if len(records) == 1 else 'ies'}, "
          f"{cache.total_size() / 1e6:.1f} MB")
    for record in records:
        seed = record["seed"] if record["seed"] is not None else "?"
        ases = record["n_ases"] if record["n_ases"] is not None else "?"
        # Concurrency residue: a held writer lock means some process is
        # building this entry right now; .tmp stragglers are leftovers
        # of interrupted writers (harmless, swept by `cache clear`).
        flags = ""
        if record.get("locked"):
            flags += "  [locked]"
        if record.get("stragglers"):
            flags += f"  [{record['stragglers']} tmp straggler(s)]"
        print(f"  {record['key']}  seed={seed} ases={ases} "
              f"{record['size_bytes'] / 1e6:6.1f} MB  "
              f"[{', '.join(record['files'])}]{flags}")
    return 0


def cmd_corpus(args: argparse.Namespace) -> int:
    scenario = _build(args)
    payload = scenario.corpus_stats()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    stats = payload["stats"]
    memory = payload["memory"]
    intern = payload["intern_tables"]
    print(f"corpus: {stats['n_routes']} routes from "
          f"{stats['n_vps']} vantage points")
    print(f"  visible links    : {stats['n_visible_links']}")
    print(f"  visible ASes     : {stats['n_visible_ases']}")
    print(f"  triplets         : {stats['n_triplets']}")
    print(f"  with communities : {stats['n_routes_with_communities']}")
    print(f"layout: {memory['layout']}")
    if intern:
        print("intern tables: "
              + ", ".join(f"{key}={intern[key]}" for key in sorted(intern)))
    print(f"columnar memory: {memory['total_bytes'] / 1e6:.1f} MB")
    for section, nbytes in sorted(memory["columns_bytes"].items()):
        print(f"  column {section:<11s} {nbytes / 1e6:8.2f} MB")
    for section, nbytes in sorted(memory["index_bytes"].items()):
        print(f"  index  {section:<11s} {nbytes / 1e6:8.2f} MB")
    return 0


def _parse_deploy_spec(spec: str) -> dict:
    """``policy:strategy:arg`` → a PolicyDeployment dict.

    The third field is the strategy argument: ``top_n`` for
    ``top_cone``, a fraction for ``random``, a comma-separated AS list
    for ``explicit``.  Schema errors surface through
    ``AdversarialConfig.from_dict`` with precise messages.
    """
    parts = spec.split(":")
    if len(parts) != 3:
        raise ValueError(
            f"--deploy expects policy:strategy:arg, got {spec!r} "
            "(e.g. rpki:top_cone:20, aspa:random:0.3, "
            "leak_prone:explicit:174,3356)"
        )
    policy, strategy, arg = parts
    data: dict = {"policy": policy, "strategy": strategy}
    try:
        if strategy == "top_cone":
            data["top_n"] = int(arg)
        elif strategy == "random":
            data["fraction"] = float(arg)
        else:
            data["ases"] = [int(x) for x in arg.split(",") if x]
    except ValueError:
        raise ValueError(
            f"bad argument {arg!r} in --deploy spec {spec!r}"
        ) from None
    return data


def cmd_attack(args: argparse.Namespace) -> int:
    from repro.adversarial import run_impact
    from repro.config import AdversarialConfig, ConfigError

    if args.attack_config:
        with open(args.attack_config, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = {
            "attack": {
                "n_origin_hijacks": args.hijacks,
                "n_forged_origin_hijacks": args.forged_hijacks,
                "n_route_leaks": args.leaks,
            },
            "deployments": [
                _parse_deploy_spec(spec) for spec in args.deploy
            ],
        }
    try:
        adversarial = AdversarialConfig.from_dict(data)
    except ConfigError as exc:
        print(f"invalid adversarial config: {exc}", file=sys.stderr)
        return 2
    if adversarial.attack.total_events() == 0:
        print(
            "nothing to attack: ask for events via --hijacks / "
            "--forged-hijacks / --leaks (or an 'attack' section in "
            "--attack-config)",
            file=sys.stderr,
        )
        return 2
    config = _config_from(args).replace(adversarial=adversarial)
    try:
        config.validate()
    except ValueError as exc:
        print(f"invalid adversarial config: {exc}", file=sys.stderr)
        return 2
    workers = resolve_workers(args.workers)
    if getattr(args, "propagation_engine", None):
        os.environ["REPRO_PROPAGATION_ENGINE"] = args.propagation_engine
    print(
        f"building clean + polluted scenarios (ases={args.ases}, "
        f"seed={args.seed}, events={adversarial.attack.total_events()}) ...",
        file=sys.stderr,
    )
    report = run_impact(
        config,
        algorithms=args.algorithms,
        workers=workers,
        cache=_cache_from(args),
    )
    payload = report.to_dict()
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"attack plan ({len(report.events)} event(s)):")
    for event in report.events:
        print(f"  {event.kind:<14s} AS{event.attacker} -> prefix of "
              f"AS{event.victim}")
    clean_paths, polluted_paths = report.corpus_sizes
    print(f"corpus: {clean_paths} clean paths -> {polluted_paths} "
          f"polluted (+{polluted_paths - clean_paths})")
    print(f"{'algorithm':<11s} {'clean acc':>10s} {'polluted':>10s} "
          f"{'delta':>9s} {'fake links':>11s}")
    for impact in report.algorithms:
        print(f"{impact.algorithm:<11s} {impact.clean.accuracy:>10.4f} "
              f"{impact.polluted.accuracy:>10.4f} "
              f"{impact.accuracy_delta:>+9.4f} "
              f"{impact.new_fake_links:>+11d}")
    print("bias drift:")
    for drift in report.bias:
        print(f"  {drift.grouping:<12s} coverage spread "
              f"{drift.clean_spread:.4f} -> {drift.polluted_spread:.4f}, "
              f"share drift {drift.share_drift:.4f}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.cli import run_lint_command

    return run_lint_command(args)


#: More serve-worker processes than this is a typo, not a deployment.
MAX_SERVE_WORKERS = 256


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.app import ReproService

    serve_workers = args.serve_workers
    if serve_workers < 1:
        print(
            f"error: --serve-workers must be at least 1 "
            f"(got {serve_workers})",
            file=sys.stderr,
        )
        return 2
    if serve_workers > MAX_SERVE_WORKERS:
        print(
            f"error: --serve-workers {serve_workers} is absurd "
            f"(maximum {MAX_SERVE_WORKERS})",
            file=sys.stderr,
        )
        return 2
    if serve_workers > 1 and not args.cache:
        print(
            "error: multi-worker serving requires --cache (workers "
            "share scenarios through the artifact cache; without it "
            "answers would depend on which worker a client lands on)",
            file=sys.stderr,
        )
        return 2
    build_workers = resolve_workers(args.workers)

    if serve_workers == 1:
        service = ReproService(
            pool_size=args.pool_size,
            workers=build_workers,
            cache=_cache_from(args),
        )
        try:
            asyncio.run(service.run(host=args.host, port=args.port))
        except KeyboardInterrupt:
            pass
        return 0

    from repro.service.supervisor import Supervisor

    def service_factory() -> ReproService:
        # Constructed post-fork, in the worker: each process gets its
        # own pool/executor/event loop over the shared artifact cache.
        return ReproService(
            pool_size=args.pool_size,
            workers=build_workers,
            cache=_cache_from(args),
        )

    supervisor = Supervisor(
        service_factory,
        host=args.host,
        port=args.port,
        serve_workers=serve_workers,
    )
    try:
        return supervisor.run()
    except KeyboardInterrupt:
        return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service.loadgen import (
        DEFAULT_MIX,
        parse_mix,
        prepare_plan,
        publish_result,
        run_loadgen,
    )

    try:
        mix = parse_mix(args.mix) if args.mix else dict(DEFAULT_MIX)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(
        f"loadgen: preparing scenario (preset={args.preset}, "
        f"seed={args.seed}) against {args.host}:{args.port} ...",
        file=sys.stderr,
    )
    plan = prepare_plan(
        args.host, args.port,
        preset=args.preset, seed=args.seed,
        ases=args.ases, vps=args.vps,
        algorithm=args.algorithm, mix=mix,
        batch_size=args.batch_size,
        loadgen_seed=args.loadgen_seed,
    )
    print(
        f"loadgen: {args.concurrency} task(s) for {args.duration:.1f}s "
        f"over {len(plan.links)} links / {len(plan.asns)} ASNs ...",
        file=sys.stderr,
    )
    result = run_loadgen(
        plan, concurrency=args.concurrency, duration_s=args.duration
    )
    payload = result.as_dict()
    if args.out:
        path = publish_result(args.out, args.name, result)
        print(f"loadgen: report merged into {path}", file=sys.stderr)
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0 if result.total_requests > 0 and result.errors == 0 else 1


# ---------------------------------------------------------------------------

def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction toolkit for 'How biased is our "
                    "Validation (Data) for AS Relationships?' (IMC 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_figures = sub.add_parser("figures", help="print Figures 1-3")
    _add_scenario_options(p_figures)
    p_figures.set_defaults(func=cmd_figures)

    p_table = sub.add_parser("table", help="print per-group validation tables")
    p_table.add_argument("algorithms", nargs="+", choices=ALGORITHM_NAMES,
                         help="algorithm(s) to evaluate")
    _add_scenario_options(p_table)
    p_table.set_defaults(func=cmd_table)

    p_case = sub.add_parser("casestudy", help="run the §6.1 investigation")
    _add_scenario_options(p_case)
    p_case.set_defaults(func=cmd_casestudy)

    p_build = sub.add_parser("build", help="export dataset artifacts")
    p_build.add_argument("--out", default="./artifacts",
                         help="output directory (default ./artifacts)")
    _add_scenario_options(p_build)
    p_build.set_defaults(func=cmd_build)

    p_export = sub.add_parser(
        "export", help="write the machine-readable results bundle"
    )
    p_export.add_argument("--out", default="./results",
                          help="output directory (default ./results)")
    _add_scenario_options(p_export)
    p_export.set_defaults(func=cmd_export)

    p_evolve = sub.add_parser("evolve",
                              help="run the §7 re-sampling experiment")
    p_evolve.add_argument("--months", type=int, default=6)
    p_evolve.add_argument("--resample-gap", type=int, default=3,
                          help="months before the same link counts again")
    _add_scenario_options(p_evolve)
    p_evolve.set_defaults(func=cmd_evolve)

    p_cache = sub.add_parser("cache",
                             help="inspect or clear the artifact cache")
    p_cache.add_argument("action", nargs="?", default="list",
                         choices=("list", "clear", "path"),
                         help="what to do (default: list)")
    p_cache.add_argument("--cache-dir", default=None,
                         help="cache root (default $REPRO_CACHE_DIR "
                              "or ~/.cache/repro)")
    p_cache.add_argument("--json", action="store_true", default=False,
                         help="machine-readable output (list/path)")
    p_cache.set_defaults(func=cmd_cache)

    p_corpus = sub.add_parser(
        "corpus",
        help="inspect the path corpus (route/link/VP counts, "
             "columnar memory footprint)",
    )
    p_corpus.add_argument("action", nargs="?", default="stats",
                          choices=("stats",),
                          help="corpus report to print (default: stats)")
    p_corpus.add_argument("--json", action="store_true", default=False,
                          help="machine-readable output")
    _add_scenario_options(p_corpus)
    p_corpus.set_defaults(func=cmd_corpus)

    p_attack = sub.add_parser(
        "attack",
        help="pollute the corpus with hijacks/leaks and report "
             "inference degradation (repro.adversarial)",
    )
    p_attack.add_argument("--hijacks", type=int, default=0,
                          help="forged-prefix origin hijacks to inject")
    p_attack.add_argument("--forged-hijacks", type=int, default=0,
                          help="forged-origin hijacks to inject")
    p_attack.add_argument("--leaks", type=int, default=0,
                          help="route leaks to inject")
    p_attack.add_argument("--deploy", action="append", default=[],
                          metavar="POLICY:STRATEGY:ARG",
                          help="security-policy deployment, e.g. "
                               "rpki:top_cone:20, aspa:random:0.3, "
                               "leak_prone:explicit:174,3356 (repeatable)")
    p_attack.add_argument("--attack-config", default=None,
                          help="JSON file with a full adversarial config "
                               "(overrides the flags above)")
    p_attack.add_argument("--algorithms", nargs="+",
                          default=["asrank", "problink", "toposcope"],
                          choices=ALGORITHM_NAMES,
                          help="inference panel to compare "
                               "(default: asrank problink toposcope)")
    p_attack.add_argument("--json", action="store_true", default=False,
                          help="machine-readable impact report")
    _add_scenario_options(p_attack)
    p_attack.set_defaults(func=cmd_attack)

    p_lint = sub.add_parser(
        "lint",
        help="run the AST contract linter (determinism, async-safety, "
             "picklability)",
    )
    from repro.devtools.cli import add_lint_arguments

    add_lint_arguments(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_serve = sub.add_parser(
        "serve",
        help="run the HTTP query service (scenarios, relationships, "
             "bias reports)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8787,
                         help="TCP port (default 8787; 0 = pick a free one)")
    p_serve.add_argument("--pool-size", type=int, default=4,
                         help="max scenarios kept built in memory "
                              "(LRU eviction; default 4)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="propagation worker processes per build "
                              "(0 = serial, -1 = CPU count; default 0)")
    p_serve.add_argument("--serve-workers", type=int, default=1,
                         help="HTTP worker processes (pre-fork "
                              "supervisor; >1 requires --cache; "
                              "default 1 = in-process)")
    p_serve.add_argument("--cache", dest="cache", action="store_true",
                         default=False,
                         help="warm-start builds from the artifact cache")
    p_serve.add_argument("--no-cache", dest="cache", action="store_false",
                         help="always build from scratch (default)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="cache root (default $REPRO_CACHE_DIR "
                              "or ~/.cache/repro)")
    p_serve.set_defaults(func=cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="drive a running service with a closed-loop benchmark "
             "and publish BENCH_service.json",
    )
    p_loadgen.add_argument("--host", default="127.0.0.1",
                           help="service address (default 127.0.0.1)")
    p_loadgen.add_argument("--port", type=int, required=True,
                           help="service port")
    p_loadgen.add_argument("--duration", type=float, default=5.0,
                           help="seconds of timed load (default 5)")
    p_loadgen.add_argument("--concurrency", type=int, default=8,
                           help="closed-loop client tasks (default 8)")
    p_loadgen.add_argument("--mix", default=None,
                           help="endpoint mix, e.g. 'rel=4,batch=1,"
                                "neighbors=2' (default)")
    p_loadgen.add_argument("--batch-size", type=int, default=256,
                           help="links per :batch request (default 256)")
    p_loadgen.add_argument("--algorithm", default="asrank",
                           choices=ALGORITHM_NAMES,
                           help="algorithm to query (default asrank)")
    p_loadgen.add_argument("--preset", default="small",
                           choices=("small", "default"),
                           help="scenario preset to admit (default small)")
    p_loadgen.add_argument("--seed", type=int, default=7,
                           help="scenario seed (default 7)")
    p_loadgen.add_argument("--ases", type=int, default=None,
                           help="override the preset's AS count")
    p_loadgen.add_argument("--vps", type=int, default=None,
                           help="override the preset's vantage-point count")
    p_loadgen.add_argument("--loadgen-seed", type=int, default=0,
                           help="seed for the request streams (default 0)")
    p_loadgen.add_argument("--name", default="service_loadgen",
                           help="benchmark key in the report "
                                "(default service_loadgen)")
    p_loadgen.add_argument("--out", default=None,
                           help="directory to merge BENCH_service.json "
                                "into (default: don't write)")
    p_loadgen.set_defaults(func=cmd_loadgen)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
