"""Appendix A: does performance correlate with validation coverage?

The paper checks whether a class's *measured* performance is an
artefact of how much of it is validated: it uniformly subsamples the
validated links of a class at 50-99 % of the original size (step 1 %),
recomputes precision/recall/MCC on each subsample, repeats each size
100 times, and finds **no trend** — the medians stay flat while the
interquartile range widens as samples shrink (Figures 4-6).

:func:`sampling_experiment` reproduces the experiment for any link
class; :func:`trend_slope` quantifies "no trend" as an ordinary
least-squares slope of the per-size medians, which the benchmark then
asserts to be negligibly small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.analysis.metrics import confusion_for_links
from repro.datasets.asrel import RelationshipSet
from repro.topology.graph import LinkKey, RelType
from repro.validation.cleaning import CleanedValidation


@dataclass(frozen=True)
class SamplePoint:
    """Metrics of one subsample."""

    size_percent: int
    ppv_p2p: float
    tpr_p2p: float
    mcc: float


@dataclass
class SamplingResult:
    """All subsample measurements for one link class."""

    class_name: str
    points: List[SamplePoint]

    def sizes(self) -> List[int]:
        return sorted({p.size_percent for p in self.points})

    def _values(self, size: int, metric: str) -> np.ndarray:
        return np.array(
            [getattr(p, metric) for p in self.points if p.size_percent == size]
        )

    def median_series(self, metric: str) -> List[Tuple[int, float]]:
        """(size, median) per sample size — the line in Figures 4-6."""
        return [
            (size, float(np.median(self._values(size, metric))))
            for size in self.sizes()
        ]

    def iqr_series(self, metric: str) -> List[Tuple[int, float, float]]:
        """(size, q25, q75) per sample size — the shaded band."""
        out = []
        for size in self.sizes():
            values = self._values(size, metric)
            out.append(
                (
                    size,
                    float(np.percentile(values, 25)),
                    float(np.percentile(values, 75)),
                )
            )
        return out


def sampling_experiment(
    class_links: Sequence[LinkKey],
    inferred: RelationshipSet,
    validation: CleanedValidation,
    class_name: str = "",
    sizes_percent: Iterable[int] = range(50, 100),
    repetitions: int = 100,
    seed: int = 42,
) -> SamplingResult:
    """Run the Appendix A experiment for one class."""
    validated = [key for key in class_links if key in validation]
    if not validated:
        raise ValueError(f"class {class_name!r} has no validated links")
    rng = np.random.Generator(np.random.PCG64(seed))
    points: List[SamplePoint] = []
    n = len(validated)
    for size_percent in sizes_percent:
        sample_size = max(1, int(round(n * size_percent / 100)))
        for _ in range(repetitions):
            chosen = rng.choice(n, size=sample_size, replace=False)
            subset = [validated[int(i)] for i in chosen]
            conf = confusion_for_links(subset, inferred, validation, RelType.P2P)
            points.append(
                SamplePoint(
                    size_percent=int(size_percent),
                    ppv_p2p=conf.ppv(),
                    tpr_p2p=conf.tpr(),
                    mcc=conf.mcc(),
                )
            )
    return SamplingResult(class_name=class_name, points=points)


def trend_slope(series: Sequence[Tuple[int, float]]) -> float:
    """OLS slope of a (size, value) series, per percentage point.

    A |slope| close to zero over a 50-point size range backs the
    paper's "neither an increasing nor a decreasing trend" conclusion.
    """
    if len(series) < 2:
        return 0.0
    xs = np.array([s for s, _ in series], dtype=float)
    ys = np.array([v for _, v in series], dtype=float)
    xs -= xs.mean()
    denominator = float((xs**2).sum())
    if denominator == 0:
        return 0.0
    return float((xs * (ys - ys.mean())).sum() / denominator)


def iqr_widening(result: SamplingResult, metric: str = "mcc") -> float:
    """IQR at the smallest size minus IQR at the largest size.

    Positive values reproduce the paper's observation that variance
    grows as the sample shrinks.
    """
    series = result.iqr_series(metric)
    if len(series) < 2:
        return 0.0
    first = series[0]
    last = series[-1]
    return (first[2] - first[1]) - (last[2] - last[1])
