"""Hard links (§3.3 of the paper, after Jin et al. 2019).

ProbLink's authors identified five characteristics that make a link
hard to infer, and showed that "the validation data set is skewed
towards links for which it is easy to infer them correctly".  This
module implements the taxonomy so the skew claim — one of the paper's
"existing insights into validation bias" — can be measured on any
scenario:

1. ``low_degree`` — an incident AS has a small node degree;
2. ``mid_visibility`` — the link is observed by a partial band of
   vantage points (Jin et al.'s 50-100 of ~400 feeders, scaled to a
   fraction of the VP set);
3. ``remote`` — the link is neither incident to a vantage point nor to
   a clique AS;
4. ``stub_no_triplet`` — a stub link for which no path shows two
   consecutive clique ASes before it;
5. ``conflict`` — a naive top-down classification of the link's paths
   yields conflicting directions.

Thresholds scale with the corpus (the published absolute numbers —
degree < 100, 50-100 VPs — assume the real Internet's size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datasets.paths import PathCorpus
from repro.topology.graph import LinkKey
from repro.validation.cleaning import CleanedValidation

HARD_CATEGORIES: Tuple[str, ...] = (
    "low_degree",
    "mid_visibility",
    "remote",
    "stub_no_triplet",
    "conflict",
)


@dataclass
class HardLinkReport:
    """Per-category hard-link sets plus the derived skew statistics."""

    categories: Dict[str, Set[LinkKey]] = field(default_factory=dict)
    n_links: int = 0

    def hard_links(self) -> Set[LinkKey]:
        out: Set[LinkKey] = set()
        for links in self.categories.values():
            out |= links
        return out

    def is_hard(self, key: LinkKey) -> bool:
        return any(key in links for links in self.categories.values())

    def hard_share(self) -> float:
        """Fraction of all links that are hard in at least one way."""
        if not self.n_links:
            return 0.0
        return len(self.hard_links()) / self.n_links

    def validation_skew(self, validation: CleanedValidation,
                        links: Iterable[LinkKey]) -> Tuple[float, float]:
        """(coverage of easy links, coverage of hard links).

        Jin et al.'s skew claim holds when the first clearly exceeds
        the second.
        """
        easy_total = easy_val = hard_total = hard_val = 0
        for key in links:
            if self.is_hard(key):
                hard_total += 1
                hard_val += key in validation
            else:
                easy_total += 1
                easy_val += key in validation
        easy_coverage = easy_val / easy_total if easy_total else 0.0
        hard_coverage = hard_val / hard_total if hard_total else 0.0
        return easy_coverage, hard_coverage


class HardLinkClassifier:
    """Applies the five-criteria taxonomy to a corpus."""

    def __init__(
        self,
        corpus: PathCorpus,
        clique: Sequence[int],
        low_degree_quantile: float = 0.25,
        visibility_band: Tuple[float, float] = (0.05, 0.3),
    ) -> None:
        self.corpus = corpus
        self.clique = set(clique)
        self.low_degree_quantile = low_degree_quantile
        self.visibility_band = visibility_band

    # ------------------------------------------------------------------
    def classify(self) -> HardLinkReport:
        corpus = self.corpus
        links = corpus.visible_links()
        report = HardLinkReport(n_links=len(links))
        degrees = corpus.node_degrees()
        transit_degrees = corpus.transit_degrees()
        n_vps = max(1, len(corpus.vantage_points))
        vps = corpus.vantage_points

        degree_cut = self._quantile(
            sorted(degrees.values()), self.low_degree_quantile
        )
        lo_band = self.visibility_band[0] * n_vps
        hi_band = self.visibility_band[1] * n_vps

        triplet_seen = self._stub_links_with_clique_context()
        conflicts = self._direction_conflicts()

        categories: Dict[str, Set[LinkKey]] = {
            name: set() for name in HARD_CATEGORIES
        }
        for key in links:
            a, b = key
            if min(degrees.get(a, 0), degrees.get(b, 0)) <= degree_cut:
                categories["low_degree"].add(key)
            visibility = corpus.link_visibility(key)
            if lo_band <= visibility <= hi_band:
                categories["mid_visibility"].add(key)
            if (
                a not in vps
                and b not in vps
                and a not in self.clique
                and b not in self.clique
            ):
                categories["remote"].add(key)
            is_stub_link = min(
                transit_degrees.get(a, 0), transit_degrees.get(b, 0)
            ) == 0
            if is_stub_link and key not in triplet_seen:
                categories["stub_no_triplet"].add(key)
            if key in conflicts:
                categories["conflict"].add(key)
        report.categories = categories
        return report

    # ------------------------------------------------------------------
    @staticmethod
    def _quantile(sorted_values: List[int], q: float) -> float:
        if not sorted_values:
            return 0.0
        index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
        return float(sorted_values[index])

    def _stub_links_with_clique_context(self) -> Set[LinkKey]:
        """Stub links preceded (somewhere) by two consecutive clique
        ASes — the context that makes them easy."""
        seen: Set[LinkKey] = set()
        for path in self.corpus.paths():
            clique_pair_at = None
            for i in range(len(path) - 1):
                if path[i] in self.clique and path[i + 1] in self.clique:
                    clique_pair_at = i
                    break
            if clique_pair_at is None:
                continue
            for j in range(clique_pair_at + 1, len(path) - 1):
                a, b = path[j], path[j + 1]
                seen.add((a, b) if a < b else (b, a))
        return seen

    def _direction_conflicts(self) -> Set[LinkKey]:
        """Links used in both directions by naive top-down reading.

        For each path, everything after the maximum-transit-degree AS
        is read as descending; a link read descending in both
        directions across paths is a conflict.
        """
        transit_degrees = self.corpus.transit_degrees()
        down_votes: Dict[LinkKey, Set[bool]] = {}
        for path in self.corpus.paths():
            if len(path) < 2:
                continue
            apex = max(
                range(len(path)),
                key=lambda i: (transit_degrees.get(path[i], 0), -i),
            )
            for j in range(apex, len(path) - 1):
                a, b = path[j], path[j + 1]
                key = (a, b) if a < b else (b, a)
                down_votes.setdefault(key, set()).add(a == key[0])
        return {key for key, directions in down_votes.items()
                if len(directions) > 1}


def hard_link_report(
    corpus: PathCorpus, clique: Sequence[int]
) -> HardLinkReport:
    """Convenience wrapper."""
    return HardLinkClassifier(corpus, clique).classify()
