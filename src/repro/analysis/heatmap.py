"""Imbalance heatmaps (Figure 3 and Appendix B's Figures 7-9).

For the TR° links (transit-to-transit), the paper bins every link by a
size metric of its two endpoints — the larger value on the x-axis, the
smaller on the y-axis, with catch-all top bins — once over the inferred
links and once over the validatable ones, and compares the two mass
distributions: inference mass sits in the bottom-left corner (links
between small transit ASes) while validation mass is spread far more
uniformly.

Four metric variants are provided, matching the paper's figures:

* ``transit_degree`` (Figure 3, caps 1500/150),
* ``ppdc`` — provider/peer observed customer cone size (Figure 7,
  caps 750/45),
* ``ppdc_no_vp`` — PPDC ignoring links incident to route-collector
  peers (Figure 8),
* ``node_degree`` (Figure 9, caps 1500/150).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.datasets.asrel import RelationshipSet
from repro.datasets.customercone import ppdc_sizes
from repro.datasets.paths import PathCorpus
from repro.topology.graph import LinkKey
from repro.utils.binning import BinSpec, Histogram2D
from repro.validation.cleaning import CleanedValidation

#: Paper cap values per metric (larger axis, smaller axis).
METRIC_CAPS: Dict[str, Tuple[float, float]] = {
    "transit_degree": (1500.0, 150.0),
    "ppdc": (750.0, 45.0),
    "ppdc_no_vp": (750.0, 45.0),
    "node_degree": (1500.0, 150.0),
}


@dataclass
class ImbalanceHeatmaps:
    """The inference/validation histogram pair for one metric."""

    metric: str
    inference: Histogram2D
    validation: Histogram2D

    def corner_masses(
        self, x_fraction: float = 0.2, y_fraction: float = 0.2
    ) -> Tuple[float, float]:
        """Bottom-left mass of (inference, validation)."""
        return (
            self.inference.mass_below(x_fraction, y_fraction),
            self.validation.mass_below(x_fraction, y_fraction),
        )

    def mismatch(self) -> float:
        """Distributional distance between the two histograms."""
        return self.inference.earth_mover_distance_1d(self.validation)


def metric_values(
    metric: str,
    corpus: PathCorpus,
    rels: Optional[RelationshipSet] = None,
) -> Mapping[int, int]:
    """Per-AS values for one of the supported metrics."""
    if metric == "transit_degree":
        return corpus.transit_degrees()
    if metric == "node_degree":
        return corpus.node_degrees()
    if metric == "ppdc":
        if rels is None:
            raise ValueError("PPDC requires inferred relationships")
        return ppdc_sizes(corpus, rels)
    if metric == "ppdc_no_vp":
        if rels is None:
            raise ValueError("PPDC requires inferred relationships")
        return ppdc_sizes(corpus, rels, ignore_vp_incident=True)
    raise ValueError(f"unknown metric {metric!r}")


def build_heatmaps(
    metric: str,
    links: Iterable[LinkKey],
    values: Mapping[int, int],
    validation: CleanedValidation,
    n_bins: int = 10,
    caps: Optional[Tuple[float, float]] = None,
    skip_links: Optional[Callable[[LinkKey], bool]] = None,
) -> ImbalanceHeatmaps:
    """Bin ``links`` into the inference/validation histogram pair.

    ``skip_links`` implements Figure 8's "ignore links incident to a
    route collector peer" variant.
    """
    if caps is None:
        caps = METRIC_CAPS.get(metric)
    if caps is None:
        raise ValueError(f"no default caps for metric {metric!r}")
    x_cap, y_cap = caps
    x_spec = BinSpec(cap=x_cap, n_bins=n_bins)
    y_spec = BinSpec(cap=y_cap, n_bins=n_bins)
    inference = Histogram2D(x_spec, y_spec)
    validatable = Histogram2D(x_spec, y_spec)
    for key in links:
        if skip_links is not None and skip_links(key):
            continue
        value_a = values.get(key[0], 0)
        value_b = values.get(key[1], 0)
        inference.add(value_a, value_b)
        if key in validation:
            validatable.add(value_a, value_b)
    return ImbalanceHeatmaps(
        metric=metric, inference=inference, validation=validatable
    )
