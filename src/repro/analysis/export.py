"""Machine-readable export of every reproduced experiment.

Reproduction artefacts should be consumable without running Python:
:func:`results_bundle` collects the data behind every figure and table
into one JSON-serialisable dictionary, and :func:`write_results_bundle`
writes it to disk as ``results.json`` plus one CSV per experiment —
ready for the reader's own plotting pipeline.

Layout of the bundle::

    {
      "scenario": {...corpus/validation sizes...},
      "fig1_regional":    [{class, n_links, share, n_validated, coverage}, ...],
      "fig2_topological": [...],
      "fig3_transit_degree": {"inference": [[...]], "validation": [[...]],
                               "x_edges": [...], "y_edges": [...]},
      "tables": {"asrank": {"total": {...}, "rows": [{...}, ...]}, ...},
      "sec42_cleaning": {...},
      "sec61_casestudy": {...}
    }

The row serialisers (:func:`profile_rows`, :func:`metrics_row`,
:func:`table_dict`) are public: the HTTP query service
(:mod:`repro.service`) serves the same shapes, so bundle files and API
responses stay field-compatible.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Sequence, Union

from repro.analysis.bias import BiasProfile
from repro.analysis.metrics import ClassMetrics
from repro.analysis.tables import ValidationTable

if TYPE_CHECKING:  # avoid an analysis <-> scenario import cycle
    from repro.scenario import Scenario

#: Algorithms included in the tables section by default.
DEFAULT_ALGORITHMS = ("asrank", "problink", "toposcope")


def profile_rows(profile: BiasProfile) -> List[Dict[str, Any]]:
    return [
        {
            "class": entry.class_name,
            "n_links": entry.n_links,
            "share": round(entry.share, 6),
            "n_validated": entry.n_validated,
            "coverage": round(entry.coverage, 6),
        }
        for entry in profile.classes
    ]


def metrics_row(metrics: ClassMetrics) -> Dict[str, Any]:
    return {
        "class": metrics.class_name,
        "ppv_p2p": round(metrics.ppv_p2p, 6),
        "tpr_p2p": round(metrics.tpr_p2p, 6),
        "n_p2p": metrics.n_p2p,
        "ppv_p2c": round(metrics.ppv_p2c, 6),
        "tpr_p2c": round(metrics.tpr_p2c, 6),
        "n_p2c": metrics.n_p2c,
        "mcc": round(metrics.mcc, 6),
        "fowlkes_mallows": round(metrics.fowlkes_mallows, 6),
    }


def table_dict(table: ValidationTable) -> Dict[str, Any]:
    return {
        "total": metrics_row(table.total),
        "rows": [metrics_row(row.metrics) for row in table.rows],
    }


def results_bundle(
    scenario: "Scenario",
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    heatmap_caps: tuple = (300.0, 60.0),
) -> Dict[str, Any]:
    """Assemble the full experiment bundle for one scenario."""
    heatmaps = scenario.imbalance_heatmaps("transit_degree", caps=heatmap_caps)
    case = scenario.case_study("asrank")
    bundle: Dict[str, Any] = {
        "scenario": {
            **scenario.corpus.stats(),
            "n_validated_links": len(scenario.validation),
            "seed": scenario.config.seed,
            "n_ases": scenario.config.topology.n_ases,
        },
        "fig1_regional": profile_rows(scenario.regional_bias()),
        "fig2_topological": profile_rows(scenario.topological_bias()),
        "fig3_transit_degree": {
            "inference": heatmaps.inference.fractions().tolist(),
            "validation": heatmaps.validation.fractions().tolist(),
            "x_edges": heatmaps.inference.x_spec.edges(),
            "y_edges": heatmaps.inference.y_spec.edges(),
            "corner_masses": list(heatmaps.corner_masses()),
        },
        "tables": {
            name: table_dict(scenario.validation_table(name))
            for name in algorithms
        },
        "sec42_cleaning": scenario.validation.report.as_dict(),
        "sec61_casestudy": {
            "n_wrong_p2p": case.n_wrong,
            "focus_member": case.focus_member,
            "focus_share": round(case.focus_share, 6),
            "n_targets": len(case.targets),
            "n_partial_transit_confirmed": case.n_partial_transit_confirmed,
            "n_stale_validation": case.n_stale_validation,
        },
    }
    return bundle


def _write_csv(path: Path, rows: Iterable[Dict[str, Any]]) -> None:
    rows = list(rows)
    if not rows:
        path.write_text("", encoding="utf-8")
        return
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)


def write_results_bundle(
    scenario: "Scenario",
    directory: Union[str, Path],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
) -> Path:
    """Write ``results.json`` + per-experiment CSVs; returns the dir."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    bundle = results_bundle(scenario, algorithms=algorithms)
    (directory / "results.json").write_text(
        json.dumps(bundle, indent=2, sort_keys=True), encoding="utf-8"
    )
    _write_csv(directory / "fig1_regional.csv", bundle["fig1_regional"])
    _write_csv(directory / "fig2_topological.csv", bundle["fig2_topological"])
    for name, table in bundle["tables"].items():
        _write_csv(
            directory / f"table_{name}.csv",
            [table["total"]] + table["rows"],
        )
    return directory


def load_results_bundle(directory: Union[str, Path]) -> Dict[str, Any]:
    """Read back a bundle written by :func:`write_results_bundle`."""
    path = Path(directory) / "results.json"
    return json.loads(path.read_text(encoding="utf-8"))
