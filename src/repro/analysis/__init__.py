"""Bias and implication analysis (systems S11-S12 of DESIGN.md)."""

from repro.analysis.bias import BiasProfile, ClassBias, bias_profile
from repro.analysis.casestudy import (
    CaseStudyResult,
    TargetLink,
    concentration_by_clique_member,
    looking_glass_audit,
    run_case_study,
    triplet_evidence,
    wrong_p2p_links,
)
from repro.analysis.classes import (
    RegionalClassifier,
    TopologicalClassifier,
    transit_internal_links,
)
from repro.analysis.export import (
    load_results_bundle,
    results_bundle,
    write_results_bundle,
)
from repro.analysis.hardlinks import (
    HARD_CATEGORIES,
    HardLinkClassifier,
    HardLinkReport,
    hard_link_report,
)
from repro.analysis.heatmap import (
    METRIC_CAPS,
    ImbalanceHeatmaps,
    build_heatmaps,
    metric_values,
)
from repro.analysis.metrics import BinaryConfusion, ClassMetrics, confusion_for_links
from repro.analysis.report import (
    render_bias_figure,
    render_class_shares,
    render_imbalance_heatmaps,
    render_sampling_figure,
    render_validation_table,
)
from repro.analysis.uncertainty import (
    CalibrationBin,
    calibration_curve,
    expected_calibration_error,
    selective_accuracy,
    uncertainty_by_class,
)
from repro.analysis.sampling import (
    SamplePoint,
    SamplingResult,
    iqr_widening,
    sampling_experiment,
    trend_slope,
)
from repro.analysis.tables import (
    CellColour,
    PAPER_CLASS_ORDER,
    TableRow,
    ValidationTable,
    build_table,
)

__all__ = [
    "BiasProfile",
    "ClassBias",
    "bias_profile",
    "CaseStudyResult",
    "TargetLink",
    "concentration_by_clique_member",
    "looking_glass_audit",
    "run_case_study",
    "triplet_evidence",
    "wrong_p2p_links",
    "RegionalClassifier",
    "TopologicalClassifier",
    "transit_internal_links",
    "load_results_bundle",
    "results_bundle",
    "write_results_bundle",
    "HARD_CATEGORIES",
    "HardLinkClassifier",
    "HardLinkReport",
    "hard_link_report",
    "CalibrationBin",
    "calibration_curve",
    "expected_calibration_error",
    "selective_accuracy",
    "uncertainty_by_class",
    "METRIC_CAPS",
    "ImbalanceHeatmaps",
    "build_heatmaps",
    "metric_values",
    "BinaryConfusion",
    "ClassMetrics",
    "confusion_for_links",
    "render_bias_figure",
    "render_class_shares",
    "render_imbalance_heatmaps",
    "render_sampling_figure",
    "render_validation_table",
    "SamplePoint",
    "SamplingResult",
    "iqr_widening",
    "sampling_experiment",
    "trend_slope",
    "CellColour",
    "PAPER_CLASS_ORDER",
    "TableRow",
    "ValidationTable",
    "build_table",
]
