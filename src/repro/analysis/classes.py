"""Link classes: the regional and topological grouping of §5.

Two classifiers map every AS link to a class label:

* :class:`RegionalClassifier` — per the RIR service region of both
  endpoints: ``R°`` for RIPE-internal links, ``AP-AR`` for links
  between APNIC and ARIN ASes, and so on.  Cross-region class names put
  the lexicographically smaller abbreviation first; links with a
  reserved/unmapped endpoint are discarded (``None``), as in the paper.
* :class:`TopologicalClassifier` — per the endpoints' position in the
  hierarchy: Hypergiant (H) from the Böttger-style list, Tier-1 (T1)
  from the Wikipedia-style list, otherwise Transit (TR) or Stub (S) by
  whether the AS has a non-empty *inferred* customer cone.  Class names
  order the sides H, S, T1, TR, matching the paper's figures.

Both classifiers work from dataset artefacts (region map, curated
lists, inferred relationships) — never from generator ground truth.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.datasets.asrel import RelationshipSet
from repro.datasets.customercone import stub_transit_split
from repro.topology.external_lists import ExternalLists
from repro.topology.graph import LinkKey
from repro.topology.regions import Region, RegionMap

#: Suffix used for region/class-internal links, as in the paper.
INTERNAL_MARK = "°"

#: Name ordering of topological sides (paper's figure labels).
_TOPO_ORDER = {"H": 0, "S": 1, "T1": 2, "TR": 3}


class RegionalClassifier:
    """Maps links to regional classes via a :class:`RegionMap`."""

    def __init__(self, region_map: RegionMap) -> None:
        self.region_map = region_map

    def as_region(self, asn: int) -> Optional[Region]:
        return self.region_map.lookup(asn)

    def classify(self, key: LinkKey) -> Optional[str]:
        """Class label for a link, or ``None`` if an endpoint has no
        region (reserved / unassigned ASN)."""
        region_a = self.region_map.lookup(key[0])
        region_b = self.region_map.lookup(key[1])
        if region_a is None or region_b is None:
            return None
        abbr_a, abbr_b = region_a.abbreviation, region_b.abbreviation
        if abbr_a == abbr_b:
            return f"{abbr_a}{INTERNAL_MARK}"
        lo, hi = sorted((abbr_a, abbr_b))
        return f"{lo}-{hi}"

    def classify_links(
        self, links: Iterable[LinkKey]
    ) -> Dict[str, List[LinkKey]]:
        """Group links by class, dropping unmappable ones."""
        grouped: Dict[str, List[LinkKey]] = {}
        for key in links:
            label = self.classify(key)
            if label is not None:
                grouped.setdefault(label, []).append(key)
        return grouped


class TopologicalClassifier:
    """Maps links to topological classes (H / S / T1 / TR sides)."""

    def __init__(
        self,
        external_lists: ExternalLists,
        inferred_rels: RelationshipSet,
        universe: Optional[Iterable[int]] = None,
    ) -> None:
        self.external_lists = external_lists
        self._is_transit = stub_transit_split(inferred_rels, universe=universe)

    def as_class(self, asn: int) -> str:
        """"H", "T1", "TR", or "S" with the paper's precedence."""
        hint = self.external_lists.classify_hint(asn)
        if hint:
            return hint
        return "TR" if self._is_transit.get(asn, False) else "S"

    def classify(self, key: LinkKey) -> str:
        side_a = self.as_class(key[0])
        side_b = self.as_class(key[1])
        if side_a == side_b:
            return f"{side_a}{INTERNAL_MARK}"
        lo, hi = sorted((side_a, side_b), key=lambda s: _TOPO_ORDER[s])
        return f"{lo}-{hi}"

    def classify_links(
        self, links: Iterable[LinkKey]
    ) -> Dict[str, List[LinkKey]]:
        grouped: Dict[str, List[LinkKey]] = {}
        for key in links:
            grouped.setdefault(self.classify(key), []).append(key)
        return grouped


def transit_internal_links(
    classifier: TopologicalClassifier, links: Iterable[LinkKey]
) -> List[LinkKey]:
    """The TR° links (both sides plain transit) — the population of the
    Figure 3 / 7-9 heatmaps."""
    mark = f"TR{INTERNAL_MARK}"
    return [key for key in links if classifier.classify(key) == mark]
