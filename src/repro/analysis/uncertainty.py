"""Uncertainty-aware evaluation (the UNARI angle, §3.1).

UNARI (Feng et al. 2019) "produces a measure of certainty for each
link type as its outcome"; the paper wanted to analyse it but the
authors published no artifacts.  Our ProbLink implementation exposes
per-link posteriors (:attr:`repro.inference.problink.ProbLink.posterior_p2p_`),
which lets us run the analysis UNARI invites:

* **calibration** — when the classifier says "80 % P2P", is it right
  80 % of the time?  :func:`calibration_curve` bins posteriors and
  compares claimed confidence with empirical accuracy against a
  validation set; :func:`expected_calibration_error` summarises it.
* **selective risk** — does abstaining on the least-certain links
  raise precision?  :func:`selective_accuracy` sweeps a confidence
  threshold.
* and the paper-shaped question: **are the biased classes also the
  uncertain ones?**  :func:`uncertainty_by_class` averages the
  decision margin per link class, showing whether T1-TR & friends at
  least *look* risky to the classifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.topology.graph import LinkKey, RelType
from repro.validation.cleaning import CleanedValidation


@dataclass(frozen=True)
class CalibrationBin:
    """One confidence bucket of the reliability diagram."""

    lower: float
    upper: float
    n_links: int
    mean_confidence: float
    empirical_accuracy: float


def _prediction(posterior_p2p: float) -> RelType:
    return RelType.P2P if posterior_p2p >= 0.5 else RelType.P2C


def _confidence(posterior_p2p: float) -> float:
    """Confidence in the argmax class."""
    return max(posterior_p2p, 1.0 - posterior_p2p)


def _validated_pairs(
    posteriors: Mapping[LinkKey, float],
    validation: CleanedValidation,
) -> List[Tuple[float, bool]]:
    """(confidence, correct?) over the validated subset."""
    pairs: List[Tuple[float, bool]] = []
    for key, posterior in posteriors.items():
        truth = validation.rel_of(key)
        if truth is None or truth is RelType.S2S:
            continue
        predicted = _prediction(posterior)
        truth_binary = RelType.P2P if truth is RelType.P2P else RelType.P2C
        pairs.append((_confidence(posterior), predicted is truth_binary))
    return pairs


def calibration_curve(
    posteriors: Mapping[LinkKey, float],
    validation: CleanedValidation,
    n_bins: int = 10,
) -> List[CalibrationBin]:
    """Reliability diagram over [0.5, 1.0] confidence."""
    if n_bins < 1:
        raise ValueError("need at least one bin")
    pairs = _validated_pairs(posteriors, validation)
    width = 0.5 / n_bins
    bins: List[CalibrationBin] = []
    for index in range(n_bins):
        lower = 0.5 + index * width
        upper = lower + width
        members = [
            (confidence, correct)
            for confidence, correct in pairs
            if lower <= confidence < upper
            or (index == n_bins - 1 and confidence == upper)
        ]
        if members:
            mean_confidence = sum(c for c, _ in members) / len(members)
            accuracy = sum(1 for _, ok in members if ok) / len(members)
        else:
            mean_confidence = accuracy = 0.0
        bins.append(
            CalibrationBin(
                lower=lower,
                upper=upper,
                n_links=len(members),
                mean_confidence=mean_confidence,
                empirical_accuracy=accuracy,
            )
        )
    return bins


def expected_calibration_error(
    posteriors: Mapping[LinkKey, float],
    validation: CleanedValidation,
    n_bins: int = 10,
) -> float:
    """Weighted |confidence - accuracy| over the bins (ECE)."""
    bins = calibration_curve(posteriors, validation, n_bins)
    total = sum(b.n_links for b in bins)
    if total == 0:
        return 0.0
    return sum(
        b.n_links * abs(b.mean_confidence - b.empirical_accuracy)
        for b in bins
    ) / total


def selective_accuracy(
    posteriors: Mapping[LinkKey, float],
    validation: CleanedValidation,
    thresholds: Iterable[float] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
) -> List[Tuple[float, float, float]]:
    """(threshold, coverage, accuracy) when abstaining below the
    confidence threshold."""
    pairs = _validated_pairs(posteriors, validation)
    out: List[Tuple[float, float, float]] = []
    if not pairs:
        return out
    for threshold in thresholds:
        kept = [(c, ok) for c, ok in pairs if c >= threshold]
        coverage = len(kept) / len(pairs)
        accuracy = (
            sum(1 for _, ok in kept if ok) / len(kept) if kept else 0.0
        )
        out.append((threshold, coverage, accuracy))
    return out


def uncertainty_by_class(
    posteriors: Mapping[LinkKey, float],
    classifier: Callable[[LinkKey], Optional[str]],
) -> Dict[str, float]:
    """Mean decision margin (confidence - 0.5) per link class; small
    margins mean the classifier itself knows the class is shaky."""
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for key, posterior in posteriors.items():
        label = classifier(key)
        if label is None:
            continue
        margin = _confidence(posterior) - 0.5
        sums[label] = sums.get(label, 0.0) + margin
        counts[label] = counts.get(label, 0) + 1
    return {label: sums[label] / counts[label] for label in sums}
