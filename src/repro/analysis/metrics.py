"""Classification-correctness metrics (§6 of the paper).

The paper evaluates each classifier with two binary confusion matrices
per link class — one treating P2C as the positive class, one treating
P2P as positive — and reports precision (PPV), recall (TPR), the link
counts, and Matthews' correlation coefficient (MCC) as a symmetric
summary.  The Fowlkes-Mallows index, balanced accuracy and F1 are
implemented too (the paper mentions them as the metrics it chose *not*
to show), so the reporting layer can reproduce footnotes 9-10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.datasets.asrel import RelationshipSet
from repro.topology.graph import LinkKey, RelType
from repro.validation.cleaning import CleanedValidation


@dataclass(frozen=True)
class RelationshipAccuracy:
    """Exact-label agreement of an inferred set against ground truth.

    A link counts as *correct* when the relationship type matches and,
    for P2C, the provider side matches too.  A link the truth set does
    not contain at all is *fake* — under attack pollution these are
    forged edges that never existed in the topology.
    """

    n_links: int
    n_real: int
    n_correct: int
    n_fake: int

    @property
    def accuracy(self) -> float:
        """Correct fraction over the real (truth-covered) links."""
        return self.n_correct / self.n_real if self.n_real else 0.0

    @property
    def fake_rate(self) -> float:
        """Fraction of inferred links that do not exist at all."""
        return self.n_fake / self.n_links if self.n_links else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_links": self.n_links,
            "n_real": self.n_real,
            "n_correct": self.n_correct,
            "n_fake": self.n_fake,
            "accuracy": self.accuracy,
            "fake_rate": self.fake_rate,
        }


def relationship_accuracy(
    inferred: RelationshipSet, truth: RelationshipSet
) -> RelationshipAccuracy:
    """Score every inferred link against a ground-truth set."""
    n_links = n_real = n_correct = n_fake = 0
    for key, rel, provider in inferred.items():
        n_links += 1
        truth_rel = truth.rel_of(*key)
        if truth_rel is None:
            n_fake += 1
            continue
        n_real += 1
        if truth_rel is not rel:
            continue
        if rel is RelType.P2C and truth.provider_of(*key) != provider:
            continue
        n_correct += 1
    return RelationshipAccuracy(
        n_links=n_links,
        n_real=n_real,
        n_correct=n_correct,
        n_fake=n_fake,
    )


@dataclass(frozen=True)
class BinaryConfusion:
    """A 2x2 confusion matrix."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    @property
    def positives(self) -> int:
        """Ground-truth positives (the paper's ``LC`` link counts)."""
        return self.tp + self.fn

    def ppv(self) -> float:
        """Precision; 0 when nothing was predicted positive."""
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    def tpr(self) -> float:
        """Recall; 0 when there are no positives."""
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    def f1(self) -> float:
        p, r = self.ppv(), self.tpr()
        return 2 * p * r / (p + r) if (p + r) else 0.0

    def balanced_accuracy(self) -> float:
        tnr_denominator = self.tn + self.fp
        tnr = self.tn / tnr_denominator if tnr_denominator else 0.0
        return (self.tpr() + tnr) / 2

    def mcc(self) -> float:
        """Matthews correlation coefficient in [-1, 1]; 0 on degenerate
        matrices (any all-zero margin), following Chicco et al."""
        tp, fp, tn, fn = self.tp, self.fp, self.tn, self.fn
        denominator = math.sqrt(
            float(tp + fp) * (tp + fn) * (tn + fp) * (tn + fn)
        )
        if denominator == 0:
            return 0.0
        return (tp * tn - fp * fn) / denominator

    def fowlkes_mallows(self) -> float:
        """Geometric mean of precision and recall."""
        return math.sqrt(self.ppv() * self.tpr())

    def flipped(self) -> "BinaryConfusion":
        """The same matrix with the positive class swapped."""
        return BinaryConfusion(tp=self.tn, fp=self.fn, tn=self.tp, fn=self.fp)


def confusion_for_links(
    links: Iterable[LinkKey],
    inferred: RelationshipSet,
    validation: CleanedValidation,
    positive: RelType,
) -> BinaryConfusion:
    """Confusion matrix over the validated subset of ``links``.

    Only links present in *both* the inference and the cleaned
    validation data contribute; S2S validation entries are skipped (the
    cleaning layer removes them, but hand-built data may contain them).
    """
    if positive not in (RelType.P2C, RelType.P2P):
        raise ValueError("positive class must be P2C or P2P")
    tp = fp = tn = fn = 0
    for key in links:
        true_rel = validation.rel_of(key)
        if true_rel is None or true_rel is RelType.S2S:
            continue
        pred_rel = inferred.rel_of(*key)
        if pred_rel is None:
            continue
        pred_rel = RelType.P2P if pred_rel is RelType.P2P else RelType.P2C
        truth_positive = true_rel is positive
        pred_positive = pred_rel is positive
        if truth_positive and pred_positive:
            tp += 1
        elif truth_positive:
            fn += 1
        elif pred_positive:
            fp += 1
        else:
            tn += 1
    return BinaryConfusion(tp=tp, fp=fp, tn=tn, fn=fn)


@dataclass(frozen=True)
class ClassMetrics:
    """One row of the paper's Tables 1-3."""

    class_name: str
    ppv_p2p: float
    tpr_p2p: float
    n_p2p: int
    ppv_p2c: float
    tpr_p2c: float
    n_p2c: int
    mcc: float
    fowlkes_mallows: float

    @classmethod
    def from_links(
        cls,
        class_name: str,
        links: Iterable[LinkKey],
        inferred: RelationshipSet,
        validation: CleanedValidation,
    ) -> "ClassMetrics":
        links = list(links)
        conf_p2p = confusion_for_links(links, inferred, validation, RelType.P2P)
        conf_p2c = conf_p2p.flipped()
        return cls(
            class_name=class_name,
            ppv_p2p=conf_p2p.ppv(),
            tpr_p2p=conf_p2p.tpr(),
            n_p2p=conf_p2p.positives,
            ppv_p2c=conf_p2c.ppv(),
            tpr_p2c=conf_p2c.tpr(),
            n_p2c=conf_p2c.positives,
            mcc=conf_p2p.mcc(),
            fowlkes_mallows=conf_p2p.fowlkes_mallows(),
        )

    @property
    def n_validated(self) -> int:
        return self.n_p2p + self.n_p2c
