"""Text rendering of the paper's figures and tables.

Everything the benchmark harness prints flows through here, so that
``pytest benchmarks/ --benchmark-only`` reproduces the paper's rows and
series in a terminal:

* :func:`render_bias_figure` — Figures 1-2 (share row + coverage row);
* :func:`render_validation_table` — Tables 1-3 with colour marks;
* :func:`render_imbalance_heatmaps` — Figures 3 / 7-9 as shade maps;
* :func:`render_sampling_figure` — Figures 4-6 as median/IQR series.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.bias import BiasProfile
from repro.analysis.heatmap import ImbalanceHeatmaps
from repro.analysis.sampling import SamplingResult
from repro.analysis.tables import ValidationTable
from repro.utils.text import format_table, render_bars, render_heatmap


def render_bias_figure(profile: BiasProfile, title: str) -> str:
    """Figure 1/2 style: one bar block for shares, one for coverage."""
    labels = [c.class_name for c in profile.classes]
    shares = [c.share for c in profile.classes]
    coverages = [c.coverage for c in profile.classes]
    parts = [
        render_bars(labels, shares, title=f"{title} — links (share)"),
        "",
        render_bars(labels, coverages, title=f"{title} — validation coverage"),
    ]
    return "\n".join(parts)


def render_validation_table(table: ValidationTable) -> str:
    """Table 1/2/3 style with colour marks.

    Cell suffixes: ``+`` at least 1 % above Total°, ``~``/``!``/``*``
    at least 1 %/5 %/10 % below (the paper's green/yellow/orange/red).
    """
    headers = ["Class", "PPV_P", "TPR_P", "LC_P", "PPV_C", "TPR_C", "LC_C", "MCC"]
    rows: List[List[str]] = []
    total = table.total
    rows.append(
        [
            total.class_name,
            f"{total.ppv_p2p:.3f} ",
            f"{total.tpr_p2p:.3f} ",
            str(total.n_p2p),
            f"{total.ppv_p2c:.3f} ",
            f"{total.tpr_p2c:.3f} ",
            str(total.n_p2c),
            f"{total.mcc:.3f} ",
        ]
    )
    for row in table.rows:
        m = row.metrics
        rows.append(
            [
                m.class_name,
                f"{m.ppv_p2p:.3f}{row.colour_ppv_p2p.mark()}",
                f"{m.tpr_p2p:.3f}{row.colour_tpr_p2p.mark()}",
                str(m.n_p2p),
                f"{m.ppv_p2c:.3f}{row.colour_ppv_p2c.mark()}",
                f"{m.tpr_p2c:.3f}{row.colour_tpr_p2c.mark()}",
                str(m.n_p2c),
                f"{m.mcc:.3f}{row.colour_mcc.mark()}",
            ]
        )
    return format_table(
        headers, rows, title=f"Per-group validation table — {table.algorithm}"
    )


def render_imbalance_heatmaps(heatmaps: ImbalanceHeatmaps) -> str:
    """Figure 3/7/8/9 style: the inference map above the validation
    map, consistently scaled (each shows fractions of its own total)."""
    x_labels = [spec for spec in heatmaps.inference.x_spec.labels()]
    parts = [
        render_heatmap(
            heatmaps.inference.fractions(),
            title=f"{heatmaps.metric} — inference "
            f"({heatmaps.inference.total} links)",
        ),
        "",
        render_heatmap(
            heatmaps.validation.fractions(),
            title=f"{heatmaps.metric} — validation "
            f"({heatmaps.validation.total} links)",
        ),
        "",
        "x bins: " + " ".join(x_labels),
    ]
    corner_inf, corner_val = heatmaps.corner_masses()
    parts.append(
        f"bottom-left mass: inference {corner_inf:.2f} vs "
        f"validation {corner_val:.2f}"
    )
    return "\n".join(parts)


def render_sampling_figure(result: SamplingResult, metric: str) -> str:
    """Figure 4/5/6 style: per-size median and IQR of one metric."""
    medians = dict(result.median_series(metric))
    iqrs = {size: (q25, q75) for size, q25, q75 in result.iqr_series(metric)}
    headers = ["size%", "median", "q25", "q75"]
    rows = []
    for size in result.sizes():
        q25, q75 = iqrs[size]
        rows.append(
            [str(size), f"{medians[size]:.4f}", f"{q25:.4f}", f"{q75:.4f}"]
        )
    return format_table(
        headers,
        rows,
        title=f"Sampling correlation — {result.class_name} / {metric}",
    )


def render_class_shares(profile: BiasProfile) -> str:
    """Compact numeric dump used by EXPERIMENTS.md generation."""
    headers = ["class", "links", "share", "validated", "coverage"]
    rows = [
        [
            c.class_name,
            str(c.n_links),
            f"{c.share:.3f}",
            str(c.n_validated),
            f"{c.coverage:.3f}",
        ]
        for c in profile.classes
    ]
    return format_table(headers, rows)
