"""§6.1 case study: why does a Tier-1's T1-TR precision collapse?

The paper drills into the T1-TR class for ASRank: 54 of the 111 links
wrongly inferred as P2P involve AS174 (Cogent).  Three findings are
reproduced as code:

1. **Concentration** — one clique member is involved in a large share
   of the wrong P2P inferences (:func:`concentration_by_clique_member`).
2. **Missing triplets** — for none of that AS's target links does a
   triplet ``clique | AS | X`` exist in the path corpus, which is the
   evidence ASRank needs for a P2C inference
   (:func:`triplet_evidence`).
3. **The looking glass explains it** — the routes the Tier-1 received
   over the target links carry its *do-not-export-to-peers* community:
   the customers bought partial transit (:func:`looking_glass_audit`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bgp.communities import CommunityRegistry, Meaning
from repro.bgp.lookingglass import LookingGlass
from repro.datasets.asrel import RelationshipSet
from repro.datasets.paths import PathCorpus
from repro.topology.generator import Topology
from repro.topology.graph import LinkKey, RelType
from repro.validation.cleaning import CleanedValidation


@dataclass
class TargetLink:
    """One wrongly-inferred P2P link under investigation."""

    key: LinkKey
    clique_member: int
    other: int
    has_clique_triplet: bool = False
    tagged_no_export: bool = False
    stale_validation: bool = False


@dataclass
class CaseStudyResult:
    """Everything the §6.1 analysis produces."""

    class_links_wrong_p2p: List[LinkKey]
    per_member_counts: Dict[int, int]
    focus_member: int
    targets: List[TargetLink]

    @property
    def n_wrong(self) -> int:
        return len(self.class_links_wrong_p2p)

    @property
    def focus_share(self) -> float:
        if not self.class_links_wrong_p2p:
            return 0.0
        return self.per_member_counts.get(self.focus_member, 0) / len(
            self.class_links_wrong_p2p
        )

    @property
    def n_partial_transit_confirmed(self) -> int:
        return sum(1 for t in self.targets if t.tagged_no_export)

    @property
    def n_stale_validation(self) -> int:
        return sum(1 for t in self.targets if t.stale_validation)


def wrong_p2p_links(
    class_links: Sequence[LinkKey],
    inferred: RelationshipSet,
    validation: CleanedValidation,
) -> List[LinkKey]:
    """Links of the class inferred P2P but validated P2C (the links
    that depress PPV_P)."""
    wrong: List[LinkKey] = []
    for key in class_links:
        if validation.rel_of(key) is RelType.P2C and (
            inferred.rel_of(*key) is RelType.P2P
        ):
            wrong.append(key)
    return wrong


def concentration_by_clique_member(
    wrong_links: Sequence[LinkKey], clique: Sequence[int]
) -> Dict[int, int]:
    """How many wrong links touch each clique member."""
    clique_set = set(clique)
    counts: Dict[int, int] = {}
    for a, b in wrong_links:
        for asn in (a, b):
            if asn in clique_set:
                counts[asn] = counts.get(asn, 0) + 1
    return counts


def triplet_evidence(
    corpus: PathCorpus, clique: Sequence[int], member: int, other: int
) -> bool:
    """Is there any observed triplet ``C | member | other`` with C a
    *different* clique member?  Its absence is what pushed ASRank to
    P2P."""
    for c in clique:
        if c == member:
            continue
        if corpus.has_triplet(c, member, other):
            return True
    return False


def looking_glass_audit(
    topology: Topology,
    communities: CommunityRegistry,
    member: int,
    others: Sequence[int],
) -> Dict[int, bool]:
    """Query the member's looking glass for each counterpart: do the
    received routes carry the member's do-not-export-to-peers
    community?"""
    glass = LookingGlass(topology, communities)
    marker = communities.codebook(member).encode(Meaning.NO_EXPORT_TO_PEERS)
    results: Dict[int, bool] = {}
    for other in others:
        if not topology.graph.has_link(member, other):
            results[other] = False
            continue
        routes = glass.routes_received(member, other)
        results[other] = any(route.has_community(marker) for route in routes)
    return results


def run_case_study(
    topology: Topology,
    corpus: PathCorpus,
    communities: CommunityRegistry,
    inferred: RelationshipSet,
    validation: CleanedValidation,
    class_links: Sequence[LinkKey],
    clique: Sequence[int],
    focus_member: Optional[int] = None,
) -> CaseStudyResult:
    """The full §6.1 pipeline for one (usually the T1-TR) class."""
    wrong = wrong_p2p_links(class_links, inferred, validation)
    per_member = concentration_by_clique_member(wrong, clique)
    if focus_member is None:
        if per_member:
            focus_member = max(per_member, key=lambda m: (per_member[m], -m))
        else:
            focus_member = topology.cogent_asn
    targets: List[TargetLink] = []
    focus_links = [key for key in wrong if focus_member in key]
    lg_results = looking_glass_audit(
        topology,
        communities,
        focus_member,
        [key[0] if key[1] == focus_member else key[1] for key in focus_links],
    )
    for key in focus_links:
        other = key[0] if key[1] == focus_member else key[1]
        tagged = lg_results.get(other, False)
        target = TargetLink(
            key=key,
            clique_member=focus_member,
            other=other,
            has_clique_triplet=triplet_evidence(
                corpus, clique, focus_member, other
            ),
            tagged_no_export=tagged,
            # If the looking glass shows plain full-transit customer
            # routes (no restriction) yet validation says P2C and the
            # ground truth disagrees with the label, the validation
            # entry itself is stale.
            stale_validation=(
                not tagged
                and topology.graph.has_link(*key)
                and topology.graph.link(*key).rel is RelType.P2P
            ),
        )
        targets.append(target)
    return CaseStudyResult(
        class_links_wrong_p2p=wrong,
        per_member_counts=per_member,
        focus_member=focus_member,
        targets=targets,
    )
