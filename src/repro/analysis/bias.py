"""Bias analysis: link shares and validation coverage (Figures 1-2).

For a set of inferred links, a classifier (regional or topological),
and a validation set, :func:`bias_profile` computes per class

* the **share** of inferred links falling into the class (the top bar
  row of Figures 1 and 2), and
* the **validation coverage** — the fraction of the class's inferred
  links for which a validation label exists (the bottom row).

The *mismatch* the paper highlights is a class holding a large share of
inferred links but (almost) no validation coverage: LACNIC-internal
links and the big S-TR / TR° classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.topology.graph import LinkKey
from repro.validation.cleaning import CleanedValidation

#: Anything that maps a link to a class label (or None to discard it).
LinkClassifier = Callable[[LinkKey], Optional[str]]


@dataclass(frozen=True)
class ClassBias:
    """One bar pair of Figure 1/2."""

    class_name: str
    n_links: int
    share: float
    n_validated: int
    coverage: float


@dataclass
class BiasProfile:
    """All classes of one grouping, largest share first."""

    classes: List[ClassBias]

    def by_name(self) -> Dict[str, ClassBias]:
        return {c.class_name: c for c in self.classes}

    def top(self, n: int) -> List[ClassBias]:
        return self.classes[:n]

    def coverage_spread(self) -> float:
        """Max minus min coverage across classes — a one-number summary
        of how unevenly validation covers the groups."""
        if not self.classes:
            return 0.0
        coverages = [c.coverage for c in self.classes]
        return max(coverages) - min(coverages)

    def mismatch_classes(
        self, min_share: float = 0.05, max_coverage: float = 0.02
    ) -> List[ClassBias]:
        """Classes with a substantial link share but (nearly) no
        validation — the paper's headline finding shape."""
        return [
            c
            for c in self.classes
            if c.share >= min_share and c.coverage <= max_coverage
        ]


def bias_profile(
    links: Iterable[LinkKey],
    classifier: LinkClassifier,
    validation: CleanedValidation,
    min_class_links: int = 1,
) -> BiasProfile:
    """Compute shares and coverage per class over ``links``."""
    counts: Dict[str, int] = {}
    validated: Dict[str, int] = {}
    total = 0
    for key in links:
        label = classifier(key)
        if label is None:
            continue
        total += 1
        counts[label] = counts.get(label, 0) + 1
        if key in validation:
            validated[label] = validated.get(label, 0) + 1
    classes = []
    for label, n_links in counts.items():
        if n_links < min_class_links:
            continue
        n_val = validated.get(label, 0)
        classes.append(
            ClassBias(
                class_name=label,
                n_links=n_links,
                share=n_links / total if total else 0.0,
                n_validated=n_val,
                coverage=n_val / n_links if n_links else 0.0,
            )
        )
    classes.sort(key=lambda c: (-c.share, c.class_name))
    return BiasProfile(classes=classes)


def share_drift(a: BiasProfile, b: BiasProfile) -> float:
    """Total-variation distance between two profiles' share
    distributions.

    ``0.5 * Σ |share_a - share_b|`` over the union of class names —
    0.0 when the groupings carry identical link shares, 1.0 when they
    are disjoint.  The adversarial impact workload uses this to report
    how far corpus pollution moves the paper's Figure 1/2 bars.
    """
    a_shares = {c.class_name: c.share for c in a.classes}
    b_shares = {c.class_name: c.share for c in b.classes}
    names = sorted(set(a_shares) | set(b_shares))
    return 0.5 * sum(
        abs(a_shares.get(name, 0.0) - b_shares.get(name, 0.0))
        for name in names
    )
