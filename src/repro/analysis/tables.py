"""Per-group validation tables (Tables 1-3 of the paper).

Each table has one row per link class (regional and topological classes
with enough validated links, plus the ``Total°`` row for the entire
validation set) and the columns

    PPV_P  TPR_P  LC_P  PPV_C  TPR_C  LC_C  MCC

The paper colours cells relative to the ``Total°`` row: green when at
least 1 % better, yellow / orange / red when at least 1 % / 5 % / 10 %
worse.  The same thresholds are implemented here as
:class:`CellColour` annotations so the benchmark output carries the
paper's visual message in plain text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.bias import LinkClassifier
from repro.analysis.metrics import ClassMetrics
from repro.datasets.asrel import RelationshipSet
from repro.topology.graph import LinkKey
from repro.validation.cleaning import CleanedValidation

#: Paper row order for the default class set.
PAPER_CLASS_ORDER: Tuple[str, ...] = (
    "Total°",
    "AP-AR",
    "AP-R",
    "AP°",
    "AR-L",
    "AR-R",
    "AR°",
    "R°",
    "S-T1",
    "S-TR",
    "T1-TR",
    "TR°",
)


class CellColour(enum.Enum):
    """Colour classes of the paper's tables (relative to Total°)."""

    GREEN = "green"    # >= 1 % better
    NEUTRAL = ""       # within +-1 %
    YELLOW = "yellow"  # >= 1 % worse
    ORANGE = "orange"  # >= 5 % worse
    RED = "red"        # >= 10 % worse

    @classmethod
    def grade(cls, value: float, reference: float) -> "CellColour":
        delta = value - reference
        if delta >= 0.01:
            return cls.GREEN
        if delta <= -0.10:
            return cls.RED
        if delta <= -0.05:
            return cls.ORANGE
        if delta <= -0.01:
            return cls.YELLOW
        return cls.NEUTRAL

    def mark(self) -> str:
        """One-character suffix used in text rendering."""
        return {
            CellColour.GREEN: "+",
            CellColour.NEUTRAL: " ",
            CellColour.YELLOW: "~",
            CellColour.ORANGE: "!",
            CellColour.RED: "*",
        }[self]


@dataclass(frozen=True)
class TableRow:
    """One class row with its colour annotations."""

    metrics: ClassMetrics
    colour_ppv_p2p: CellColour
    colour_tpr_p2p: CellColour
    colour_ppv_p2c: CellColour
    colour_tpr_p2c: CellColour
    colour_mcc: CellColour


@dataclass
class ValidationTable:
    """A full per-group validation table for one algorithm."""

    algorithm: str
    total: ClassMetrics
    rows: List[TableRow]

    def row(self, class_name: str) -> Optional[TableRow]:
        for row in self.rows:
            if row.metrics.class_name == class_name:
                return row
        return None

    def metrics(self, class_name: str) -> Optional[ClassMetrics]:
        if class_name == self.total.class_name:
            return self.total
        row = self.row(class_name)
        return row.metrics if row else None

    def worst_p2p_classes(self, n: int = 3) -> List[ClassMetrics]:
        """Classes with the lowest P2P precision (the paper's AR-L,
        S-T1, T1-TR finding), among rows with at least one P2P link."""
        candidates = [r.metrics for r in self.rows if r.metrics.n_p2p > 0]
        candidates.sort(key=lambda m: (m.ppv_p2p, m.class_name))
        return candidates[:n]


def build_table(
    algorithm: str,
    inferred: RelationshipSet,
    validation: CleanedValidation,
    classifiers: Sequence[LinkClassifier],
    evaluation_links: Iterable[LinkKey],
    min_class_links: int = 20,
    class_order: Optional[Sequence[str]] = None,
) -> ValidationTable:
    """Assemble the table over the evaluation link set.

    ``classifiers`` typically holds the regional and the topological
    classifier; a link contributes one row membership per classifier
    (the paper mixes both groupings in one table).  Classes with fewer
    than ``min_class_links`` validated links are dropped, mirroring the
    paper's ">= 500 relationships in summary" cut-off (scaled down for
    smaller scenarios via the parameter).
    """
    links = list(evaluation_links)
    grouped: Dict[str, List[LinkKey]] = {}
    for key in links:
        for classifier in classifiers:
            label = classifier(key)
            if label is not None:
                grouped.setdefault(label, []).append(key)

    total = ClassMetrics.from_links("Total°", links, inferred, validation)
    rows: List[TableRow] = []
    for class_name, class_links in grouped.items():
        metrics = ClassMetrics.from_links(
            class_name, class_links, inferred, validation
        )
        if metrics.n_validated < min_class_links:
            continue
        rows.append(
            TableRow(
                metrics=metrics,
                colour_ppv_p2p=CellColour.grade(metrics.ppv_p2p, total.ppv_p2p),
                colour_tpr_p2p=CellColour.grade(metrics.tpr_p2p, total.tpr_p2p),
                colour_ppv_p2c=CellColour.grade(metrics.ppv_p2c, total.ppv_p2c),
                colour_tpr_p2c=CellColour.grade(metrics.tpr_p2c, total.tpr_p2c),
                colour_mcc=CellColour.grade(metrics.mcc, total.mcc),
            )
        )
    order = list(class_order) if class_order else list(PAPER_CLASS_ORDER)
    position = {name: i for i, name in enumerate(order)}
    rows.sort(
        key=lambda r: (
            position.get(r.metrics.class_name, len(order)),
            r.metrics.class_name,
        )
    )
    return ValidationTable(algorithm=algorithm, total=total, rows=rows)
