"""Columnar path-corpus engine: CSR storage, vectorized indices, slabs.

The corpus layout every consumer used to pay for — one Python tuple per
AS path plus dict/set indices built route by route — dominates both
wall-clock and pickling cost at paper scale.  This module replaces the
storage with a numpy-backed columnar representation:

* :class:`CorpusColumns` — the raw corpus as five flat arrays: all AS
  hops concatenated (``<u4``; ASNs are 32-bit), CSR route offsets
  (``<i8``), and a community table (route id, tagging AS, community
  value).  Vantage-point and origin columns are views into the hop
  array (first/last hop per route), so they cost nothing to store.
* :class:`ColumnarIndices` — every derived view the inference pipeline
  needs (visible links, per-link VP visibility, transit/node degrees,
  triplets, left/right/origin link sides, clique evidence scans),
  computed lazily with vectorized array passes instead of per-route
  Python loops.  Link and AS ids are interned via sorted unique arrays;
  directed pairs and (link, vp) pairs are packed into ``uint64`` words
  so deduplication is a single ``np.unique``.
* :class:`RouteSlab` — a pickling-friendly array bundle that parallel
  collection workers ship instead of lists of per-route tuples.
* :func:`write_corpus_columns` / :func:`read_corpus_columns` — a
  compact binary artifact format (magic + JSON section directory +
  64-byte-aligned little-endian sections) that the artifact cache
  memory-maps on warm reads.

Byte-identity contract
----------------------
Every index reproduces the legacy incremental structures *exactly*,
including their dict insertion orders where those are observable:

* the "first seen" AS order is the order of interleaved directed pair
  endpoints ``a0, b0, a1, b1, ...`` over all consecutive path pairs in
  route order (what ``dict.setdefault`` produced route by route);
* ASes that only ever appear in single-hop paths (a vantage point
  collecting its own origin) contribute no pairs and are therefore
  *not* visible ASes, exactly as before;
* link keys are canonical ``(min, max)`` tuples and sort identically
  whether produced here or by ``sorted(dict.keys())``.

The differential tests in ``tests/pipeline/test_columnar_equivalence``
pin this contract algorithm by algorithm.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

#: Canonical on-disk dtypes per section (always little-endian).
_SECTION_DTYPES: Dict[str, str] = {
    "hops": "<u4",
    "offsets": "<i8",
    "comm_route": "<i8",
    "comm_owner": "<u4",
    "comm_value": "<i8",
}

#: Section order in the artifact file (fixed so equal corpora produce
#: byte-identical artifacts).
_SECTION_ORDER: Tuple[str, ...] = (
    "hops", "offsets", "comm_route", "comm_owner", "comm_value",
)

_MAGIC = b"#repro-corpus-npc\n"
_FIXED_HEADER = "%016d %016d\n"
_FIXED_HEADER_LEN = 34
_ALIGN = 64
_FORMAT_VERSION = 1

_U64 = np.uint64
_SHIFT32 = np.uint64(32)
_MASK32 = np.uint64(0xFFFFFFFF)
_MAX_U32 = 0xFFFFFFFF


def _pack32(high: np.ndarray, low: np.ndarray) -> np.ndarray:
    """Pack two uint32-valued arrays into one uint64 word per element."""
    return (high.astype(_U64) << _SHIFT32) | low.astype(_U64)


def _concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """``np.concatenate([np.arange(s, s + c) for s, c in ...])`` without
    the Python loop: the vectorized range-concatenation trick."""
    counts = np.maximum(counts, 0)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    base = np.repeat(starts.astype(np.int64), counts)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    return base + np.arange(total, dtype=np.int64) - resets


def _searchsorted_range(
    packed: np.ndarray, prefix: int
) -> Tuple[int, int]:
    """Index range of ``packed`` (sorted uint64) whose high word equals
    ``prefix``."""
    lo = int(np.searchsorted(packed, _U64(prefix << 32), side="left"))
    hi = int(np.searchsorted(packed, _U64(((prefix + 1) << 32) - 1), side="right"))
    return lo, hi


@dataclass
class CorpusColumns:
    """The raw corpus as flat little-endian arrays (CSR layout).

    ``hops`` holds every AS path concatenated; route ``r`` spans
    ``hops[offsets[r]:offsets[r + 1]]``.  The community table is three
    parallel arrays sorted by route id: the route each community rode
    on, the tagging AS, and the community value.
    """

    hops: np.ndarray
    offsets: np.ndarray
    comm_route: np.ndarray
    comm_owner: np.ndarray
    comm_value: np.ndarray

    # ------------------------------------------------------------------
    @classmethod
    def from_paths(
        cls,
        paths: Sequence[Tuple[int, ...]],
        communities: Dict[int, Tuple[Tuple[int, int], ...]],
    ) -> "CorpusColumns":
        n_routes = len(paths)
        lengths = np.fromiter(
            (len(p) for p in paths), dtype=np.int64, count=n_routes
        )
        offsets = np.zeros(n_routes + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        total = int(offsets[-1])
        hops = np.fromiter(
            itertools.chain.from_iterable(paths), dtype=np.uint32, count=total
        )
        route_ids: List[int] = []
        owners: List[int] = []
        values: List[int] = []
        for index in sorted(communities):
            for owner, value in communities[index]:
                route_ids.append(index)
                owners.append(owner)
                values.append(value)
        return cls(
            hops=hops,
            offsets=offsets,
            comm_route=np.array(route_ids, dtype=np.int64),
            comm_owner=np.array(owners, dtype=np.uint32),
            comm_value=np.array(values, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    @property
    def n_routes(self) -> int:
        return len(self.offsets) - 1

    def lengths(self) -> np.ndarray:
        return np.diff(self.offsets)

    def vp_column(self) -> np.ndarray:
        """First hop of every route (the vantage point)."""
        return self.hops[self.offsets[:-1]]

    def origin_column(self) -> np.ndarray:
        """Last hop of every route (the origin)."""
        return self.hops[self.offsets[1:] - 1]

    def n_community_routes(self) -> int:
        if len(self.comm_route) == 0:
            return 0
        return int(len(np.unique(self.comm_route)))

    def communities_dict(self) -> Dict[int, Tuple[Tuple[int, int], ...]]:
        """Rebuild the ``route index -> community tuple`` mapping."""
        out: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        routes = self.comm_route.tolist()
        owners = self.comm_owner.tolist()
        values = self.comm_value.tolist()
        bucket: List[Tuple[int, int]] = []
        current: Optional[int] = None
        for route, owner, value in zip(routes, owners, values):
            if route != current:
                if bucket:
                    out[current] = tuple(bucket)
                bucket = []
                current = route
            bucket.append((owner, value))
        if bucket:
            out[current] = tuple(bucket)
        return out

    def section_items(self) -> List[Tuple[str, np.ndarray]]:
        """Sections in canonical artifact order with canonical dtypes."""
        raw = {
            "hops": self.hops,
            "offsets": self.offsets,
            "comm_route": self.comm_route,
            "comm_owner": self.comm_owner,
            "comm_value": self.comm_value,
        }
        return [
            (name, np.ascontiguousarray(raw[name], dtype=_SECTION_DTYPES[name]))
            for name in _SECTION_ORDER
        ]

    def nbytes(self) -> Dict[str, int]:
        return {name: int(arr.nbytes) for name, arr in self.section_items()}

    def backing(self) -> Dict[str, str]:
        """Per-section storage backing: ``"mmap"`` (file pages shared
        between processes through the page cache) or ``"ram"`` (a
        private heap copy)."""
        return {
            name: "mmap"
            if isinstance(getattr(self, name), np.memmap)
            else "ram"
            for name in _SECTION_ORDER
        }


class ColumnarIndices:
    """Lazily-built vectorized derived views over one set of columns.

    Every attribute is computed at most once; queries after that are
    binary searches or array lookups.  Derivations use only stable
    primitives (``np.unique``, ``searchsorted``, ``bincount``,
    ``repeat``), so equal columns always yield byte-equal indices.
    """

    def __init__(self, columns: CorpusColumns) -> None:
        self.columns = columns
        self._pairs: Optional[Tuple[np.ndarray, ...]] = None
        self._links: Optional[Tuple[np.ndarray, ...]] = None
        self._link_vp: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._as_table: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._degrees: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._triplets: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._left_pack: Optional[np.ndarray] = None
        self._right_pack: Optional[np.ndarray] = None
        self._origin_pack: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # core derivations
    # ------------------------------------------------------------------
    def _pair_arrays(self) -> Tuple[np.ndarray, ...]:
        """Directed consecutive pairs in path-major order.

        Returns ``(occ_pos, occ_route, pair_a, pair_b)`` where
        ``occ_pos`` indexes the left hop of each pair in ``hops``.
        """
        if self._pairs is None:
            cols = self.columns
            lengths = cols.lengths()
            pair_counts = np.maximum(lengths - 1, 0)
            occ_pos = _concat_ranges(cols.offsets[:-1], pair_counts)
            occ_route = np.repeat(
                np.arange(cols.n_routes, dtype=np.int64), pair_counts
            )
            pair_a = cols.hops[occ_pos] if len(occ_pos) else cols.hops[:0]
            pair_b = cols.hops[occ_pos + 1] if len(occ_pos) else cols.hops[:0]
            self._pairs = (occ_pos, occ_route, pair_a, pair_b)
        return self._pairs

    def _link_arrays(self) -> Tuple[np.ndarray, ...]:
        """Interned links: ``(link_pack, link_lo, link_hi, occ_link)``.

        ``link_pack`` is sorted ascending, which is exactly the
        lexicographic ``(lo, hi)`` order of canonical link keys.
        """
        if self._links is None:
            _, _, pair_a, pair_b = self._pair_arrays()
            lo = np.minimum(pair_a, pair_b)
            hi = np.maximum(pair_a, pair_b)
            link_pack, occ_link = np.unique(
                _pack32(lo, hi), return_inverse=True
            )
            link_lo = (link_pack >> _SHIFT32).astype(np.uint32)
            link_hi = (link_pack & _MASK32).astype(np.uint32)
            self._links = (link_pack, link_lo, link_hi, occ_link)
        return self._links

    def _link_vp_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct (link id, vp) pairs and per-link distinct-VP counts."""
        if self._link_vp is None:
            _, occ_route, _, _ = self._pair_arrays()
            _, _, _, occ_link = self._link_arrays()
            vp_occ = self.columns.vp_column()[occ_route] if len(occ_route) \
                else self.columns.hops[:0]
            pairs = np.unique(_pack32(occ_link.astype(np.uint32), vp_occ))
            counts = np.bincount(
                (pairs >> _SHIFT32).astype(np.int64), minlength=self.n_links
            )
            self._link_vp = (pairs, counts)
        return self._link_vp

    def _as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Visible ASes: ``(as_sorted, first_seen_perm)``.

        ``as_sorted[first_seen_perm]`` is the legacy dict insertion
        order: first appearance over the interleaved directed pair
        endpoints ``a0, b0, a1, b1, ...``.
        """
        if self._as_table is None:
            _, _, pair_a, pair_b = self._pair_arrays()
            interleaved = np.empty(2 * len(pair_a), dtype=np.uint32)
            interleaved[0::2] = pair_a
            interleaved[1::2] = pair_b
            as_sorted, first_index = np.unique(interleaved, return_index=True)
            perm = np.argsort(first_index, kind="stable")
            self._as_table = (as_sorted, perm)
        return self._as_table

    def _degree_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-AS (transit degree, node degree), aligned to as_sorted."""
        if self._degrees is None:
            as_sorted, _ = self._as_arrays()
            n_ases = len(as_sorted)
            _, link_lo, link_hi, _ = self._link_arrays()
            if n_ases:
                node = np.bincount(
                    np.searchsorted(as_sorted, link_lo), minlength=n_ases
                ) + np.bincount(
                    np.searchsorted(as_sorted, link_hi), minlength=n_ases
                )
            else:
                node = np.zeros(0, dtype=np.int64)
            mid_pos = self._mid_positions()
            if len(mid_pos):
                hops = self.columns.hops
                mid_x = hops[mid_pos]
                transit_pairs = np.unique(
                    np.concatenate(
                        (
                            _pack32(mid_x, hops[mid_pos - 1]),
                            _pack32(mid_x, hops[mid_pos + 1]),
                        )
                    )
                )
                xs = np.searchsorted(
                    as_sorted, (transit_pairs >> _SHIFT32).astype(np.uint32)
                )
                transit = np.bincount(xs, minlength=n_ases)
            else:
                transit = np.zeros(n_ases, dtype=np.int64)
            self._degrees = (transit.astype(np.int64), node.astype(np.int64))
        return self._degrees

    def _mid_positions(self) -> np.ndarray:
        """Hop positions that are neither first nor last in their route."""
        cols = self.columns
        return _concat_ranges(cols.offsets[:-1] + 1, cols.lengths() - 2)

    def _triplet_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Distinct directed triplets, lexicographically sorted.

        Returned as ``(tri_p1, tri_b)`` with ``tri_p1 = a << 32 | x``;
        the pair is sorted by ``(a, x, b)``, so membership tests and
        grouped continuations are binary searches.
        """
        if self._triplets is None:
            mid_pos = self._mid_positions()
            if len(mid_pos) == 0:
                empty = np.empty(0, dtype=_U64)
                self._triplets = (empty, np.empty(0, dtype=np.uint32))
                return self._triplets
            hops = self.columns.hops
            mid_a = hops[mid_pos - 1]
            mid_x = hops[mid_pos]
            mid_b = hops[mid_pos + 1]
            order = np.lexsort((mid_b, mid_x, mid_a))
            p1 = _pack32(mid_a, mid_x)[order]
            b = mid_b[order]
            keep = np.empty(len(order), dtype=bool)
            keep[0] = True
            keep[1:] = (p1[1:] != p1[:-1]) | (b[1:] != b[:-1])
            self._triplets = (p1[keep], b[keep])
        return self._triplets

    # ------------------------------------------------------------------
    # link-side tables (lazy; only Appendix C features need them)
    # ------------------------------------------------------------------
    def _left_of_pack(self) -> np.ndarray:
        if self._left_pack is None:
            occ_pos, occ_route, _, _ = self._pair_arrays()
            _, _, _, occ_link = self._link_arrays()
            starts = self.columns.offsets[:-1][occ_route]
            counts = occ_pos - starts
            positions = _concat_ranges(starts, counts)
            link_ids = np.repeat(occ_link.astype(np.uint32), counts)
            self._left_pack = np.unique(
                _pack32(link_ids, self.columns.hops[positions])
            )
        return self._left_pack

    def _right_of_pack(self) -> np.ndarray:
        if self._right_pack is None:
            occ_pos, occ_route, _, _ = self._pair_arrays()
            _, _, _, occ_link = self._link_arrays()
            starts = occ_pos + 2
            counts = self.columns.offsets[1:][occ_route] - starts
            positions = _concat_ranges(starts, counts)
            link_ids = np.repeat(occ_link.astype(np.uint32), np.maximum(counts, 0))
            self._right_pack = np.unique(
                _pack32(link_ids, self.columns.hops[positions])
            )
        return self._right_pack

    def _origins_pack(self) -> np.ndarray:
        if self._origin_pack is None:
            _, occ_route, _, _ = self._pair_arrays()
            _, _, _, occ_link = self._link_arrays()
            origins = self.columns.origin_column()[occ_route] if len(occ_route) \
                else self.columns.hops[:0]
            self._origin_pack = np.unique(
                _pack32(occ_link.astype(np.uint32), origins)
            )
        return self._origin_pack

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def n_links(self) -> int:
        return len(self._link_arrays()[0])

    @property
    def n_ases(self) -> int:
        return len(self._as_arrays()[0])

    @property
    def n_triplets(self) -> int:
        return len(self._triplet_arrays()[0])

    @property
    def n_link_vp_pairs(self) -> int:
        return len(self._link_vp_arrays()[0])

    # ------------------------------------------------------------------
    # queries (corpus-facing)
    # ------------------------------------------------------------------
    def link_endpoint_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        _, link_lo, link_hi, _ = self._link_arrays()
        return link_lo, link_hi

    def link_keys_list(self) -> List[Tuple[int, int]]:
        link_lo, link_hi = self.link_endpoint_arrays()
        return list(zip(link_lo.tolist(), link_hi.tolist()))

    def link_visibility_counts(self) -> np.ndarray:
        return self._link_vp_arrays()[1]

    def link_id(self, key: Tuple[int, int]) -> int:
        """Interned id of a canonical link key, or -1 if unseen."""
        a, b = key
        if not (0 <= a <= _MAX_U32 and 0 <= b <= _MAX_U32):
            return -1
        link_pack = self._link_arrays()[0]
        target = _U64((a << 32) | b)
        pos = int(np.searchsorted(link_pack, target))
        if pos < len(link_pack) and link_pack[pos] == target:
            return pos
        return -1

    def link_vps(self, key: Tuple[int, int]) -> List[int]:
        link = self.link_id(key)
        if link < 0:
            return []
        pairs = self._link_vp_arrays()[0]
        lo, hi = _searchsorted_range(pairs, link)
        return (pairs[lo:hi] & _MASK32).astype(np.int64).tolist()

    def as_index_of(self, values: np.ndarray) -> np.ndarray:
        """Positions of ``values`` in the sorted visible-AS table.

        Callers must only pass visible ASes (link endpoints are, by
        construction)."""
        return np.searchsorted(self._as_arrays()[0], values)

    def visible_ases_sorted(self) -> List[int]:
        return self._as_arrays()[0].tolist()

    def degrees_first_seen(self) -> Tuple[List[int], List[int], List[int]]:
        """(ASes in legacy first-seen order, transit degrees, node
        degrees) — the exact iteration order the incremental dicts had."""
        as_sorted, perm = self._as_arrays()
        transit, node = self._degree_arrays()
        return (
            as_sorted[perm].tolist(),
            transit[perm].tolist(),
            node[perm].tolist(),
        )

    def transit_degree_array(self) -> np.ndarray:
        """Transit degree aligned to the sorted visible-AS table."""
        return self._degree_arrays()[0]

    def triplet_tuples(self) -> List[Tuple[int, int, int]]:
        tri_p1, tri_b = self._triplet_arrays()
        return list(
            zip(
                (tri_p1 >> _SHIFT32).astype(np.int64).tolist(),
                (tri_p1 & _MASK32).astype(np.int64).tolist(),
                tri_b.tolist(),
            )
        )

    def has_triplet(self, left: int, middle: int, right: int) -> bool:
        if not (
            0 <= left <= _MAX_U32
            and 0 <= middle <= _MAX_U32
            and 0 <= right <= _MAX_U32
        ):
            return False
        tri_p1, tri_b = self._triplet_arrays()
        target = _U64((left << 32) | middle)
        lo = int(np.searchsorted(tri_p1, target, side="left"))
        hi = int(np.searchsorted(tri_p1, target, side="right"))
        if lo == hi:
            return False
        pos = lo + int(np.searchsorted(tri_b[lo:hi], np.uint32(right)))
        return pos < hi and int(tri_b[pos]) == right

    def triplet_continuations(self) -> Dict[Tuple[int, int], List[int]]:
        """``(a, x) -> [b, ...]`` over all distinct triplets, with the
        continuation lists ascending (the triplets are lex-sorted)."""
        tri_p1, tri_b = self._triplet_arrays()
        if len(tri_p1) == 0:
            return {}
        group_keys, group_starts = np.unique(tri_p1, return_index=True)
        bounds = np.append(group_starts, len(tri_p1)).tolist()
        lefts = (group_keys >> _SHIFT32).astype(np.int64).tolist()
        middles = (group_keys & _MASK32).astype(np.int64).tolist()
        bs = tri_b.astype(np.int64).tolist()
        # Assembles the python-dict return value from arrays np.unique
        # already grouped; one step per distinct group, not per triplet.
        return {  # repro: noqa[PERF002]
            (lefts[i], middles[i]): bs[bounds[i]:bounds[i + 1]]
            for i in range(len(lefts))
        }

    def left_of(self, key: Tuple[int, int]) -> List[int]:
        return self._side_query(self._left_of_pack(), key)

    def right_of(self, key: Tuple[int, int]) -> List[int]:
        return self._side_query(self._right_of_pack(), key)

    def origins_via(self, key: Tuple[int, int]) -> List[int]:
        return self._side_query(self._origins_pack(), key)

    def _side_query(self, pack: np.ndarray, key: Tuple[int, int]) -> List[int]:
        link = self.link_id(key)
        if link < 0:
            return []
        lo, hi = _searchsorted_range(pack, link)
        return (pack[lo:hi] & _MASK32).astype(np.int64).tolist()

    # ------------------------------------------------------------------
    # clique-evidence scans (ASRank's hot loops)
    # ------------------------------------------------------------------
    def _first_clique_pair(
        self, clique: Iterable[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per route: the first consecutive clique-member pair.

        Returns (route ids, apex hop positions, per-hop membership mask)
        for exactly the routes containing such a pair.
        """
        members = np.fromiter(
            (m for m in clique if 0 <= m <= _MAX_U32),
            dtype=np.uint32,
        )
        hops = self.columns.hops
        if len(members) == 0 or len(hops) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, np.zeros(len(hops), dtype=bool)
        member_mask = np.isin(hops, members)
        occ_pos, occ_route, _, _ = self._pair_arrays()
        pair_hits = np.flatnonzero(
            member_mask[occ_pos] & member_mask[occ_pos + 1]
        )
        if len(pair_hits) == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty, member_mask
        hit_routes = occ_route[pair_hits]
        routes, first_at = np.unique(hit_routes, return_index=True)
        apex_pos = occ_pos[pair_hits[first_at]]
        return routes, apex_pos, member_mask

    def descending_seed_pairs(
        self, clique: Iterable[int]
    ) -> List[Tuple[int, int]]:
        """Distinct directed pairs on path suffixes after each path's
        first consecutive clique pair (ASRank's descending seeds)."""
        routes, apex_pos, _ = self._first_clique_pair(clique)
        if len(routes) == 0:
            return []
        ends = self.columns.offsets[routes + 1]
        positions = _concat_ranges(apex_pos + 1, ends - apex_pos - 2)
        if len(positions) == 0:
            return []
        hops = self.columns.hops
        packed = np.unique(_pack32(hops[positions], hops[positions + 1]))
        return list(
            zip(
                (packed >> _SHIFT32).astype(np.int64).tolist(),
                (packed & _MASK32).astype(np.int64).tolist(),
            )
        )

    def apparent_provider_pairs(
        self, clique: Iterable[int]
    ) -> List[Tuple[int, int]]:
        """Distinct (clique member, apparent provider) pairs: after a
        path's first consecutive clique pair, a later clique-member hop
        whose predecessor is outside the clique."""
        routes, apex_pos, member_mask = self._first_clique_pair(clique)
        if len(routes) == 0:
            return []
        ends = self.columns.offsets[routes + 1]
        positions = _concat_ranges(apex_pos + 2, ends - apex_pos - 2)
        if len(positions) == 0:
            return []
        keep = member_mask[positions] & ~member_mask[positions - 1]
        positions = positions[keep]
        if len(positions) == 0:
            return []
        hops = self.columns.hops
        packed = np.unique(_pack32(hops[positions], hops[positions - 1]))
        return list(
            zip(
                (packed >> _SHIFT32).astype(np.int64).tolist(),
                (packed & _MASK32).astype(np.int64).tolist(),
            )
        )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def memory_report(self) -> Dict[str, Any]:
        """Bytes held by the core columns and each *built* index."""
        sections = self.columns.nbytes()
        indices: Dict[str, int] = {}

        def account(name: str, arrays: Optional[Iterable[Any]]) -> None:
            if arrays is None:
                return
            total = 0
            for arr in arrays:
                if isinstance(arr, np.ndarray):
                    total += int(arr.nbytes)
            indices[name] = total

        account("pairs", self._pairs)
        account("links", self._links)
        account("link_vps", self._link_vp)
        account("as_table", self._as_table)
        account("degrees", self._degrees)
        account("triplets", self._triplets)
        account("left_of", (self._left_pack,) if self._left_pack is not None else None)
        account("right_of", (self._right_pack,) if self._right_pack is not None else None)
        account("origins", (self._origin_pack,) if self._origin_pack is not None else None)
        total = sum(sections.values()) + sum(indices.values())
        return {
            "columns_bytes": sections,
            "index_bytes": indices,
            "total_bytes": int(total),
        }


# ---------------------------------------------------------------------------
# parallel-worker slabs
# ---------------------------------------------------------------------------

@dataclass
class RouteSlab:
    """A chunk of collected routes packed into arrays for cheap IPC.

    Pickling a :class:`RouteSlab` serialises five contiguous buffers
    instead of thousands of nested tuples; the receiving side unpacks
    into :class:`~repro.datasets.paths.CollectedRoute` objects that are
    identical (``==``) to what the serial collector would have built.
    """

    columns: CorpusColumns

    def __len__(self) -> int:
        return self.columns.n_routes


def pack_route_slab(routes: Sequence[Any]) -> RouteSlab:
    """Pack an ordered route list into a :class:`RouteSlab`."""
    # The pack boundary: one attribute read per CollectedRoute object
    # is unavoidable when converting objects into columnar buffers.
    paths = [route.path for route in routes]  # repro: noqa[PERF001]
    communities = {
        index: route.communities
        for index, route in enumerate(routes)
        if route.communities
    }
    return RouteSlab(columns=CorpusColumns.from_paths(paths, communities))


def unpack_route_slab(slab: RouteSlab) -> List[Any]:
    """Rebuild the exact route list a :func:`pack_route_slab` consumed."""
    from repro.datasets.paths import CollectedRoute

    cols = slab.columns
    hops = cols.hops.tolist()
    offsets = cols.offsets.tolist()
    communities = cols.communities_dict()
    routes: List[Any] = []
    for index in range(cols.n_routes):
        path = tuple(hops[offsets[index]:offsets[index + 1]])
        routes.append(
            CollectedRoute(
                vp=path[0],
                origin=path[-1],
                path=path,
                communities=communities.get(index, ()),
            )
        )
    return routes


# ---------------------------------------------------------------------------
# binary artifact format
# ---------------------------------------------------------------------------

def _align_up(value: int) -> int:
    return -(-value // _ALIGN) * _ALIGN


def write_corpus_columns(columns: CorpusColumns, path: Union[str, Path]) -> int:
    """Write the compact binary corpus artifact; returns bytes written.

    Layout: magic line, a fixed-width line holding the JSON directory
    length and the aligned data start, the JSON section directory
    (sorted keys, so equal corpora give byte-identical files), then each
    section's raw little-endian bytes at a 64-byte-aligned offset.
    """
    sections = columns.section_items()
    directory = []
    rel = 0
    for name, arr in sections:
        rel = _align_up(rel)
        directory.append(
            {
                "dtype": _SECTION_DTYPES[name],
                "len": int(len(arr)),
                "name": name,
                "offset": rel,
            }
        )
        rel += int(arr.nbytes)
    header = json.dumps(
        {
            "format": _FORMAT_VERSION,
            "n_routes": columns.n_routes,
            "sections": directory,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("ascii")
    data_start = _align_up(len(_MAGIC) + _FIXED_HEADER_LEN + len(header))
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write((_FIXED_HEADER % (len(header), data_start)).encode("ascii"))
        handle.write(header)
        handle.write(b"\0" * (data_start - len(_MAGIC) - _FIXED_HEADER_LEN - len(header)))
        written = data_start
        for entry, (_, arr) in zip(directory, sections):
            pad = data_start + entry["offset"] - written
            if pad:
                handle.write(b"\0" * pad)
                written += pad
            blob = arr.tobytes()
            handle.write(blob)
            written += len(blob)
    return written


def read_corpus_columns(
    path: Union[str, Path], use_mmap: bool = True
) -> CorpusColumns:
    """Read a binary corpus artifact, memory-mapping each section.

    Every structural problem — wrong magic, torn header, truncated
    sections, inconsistent offsets — raises :class:`ValueError`, which
    the artifact cache's defensive load turns into a recorded miss.
    """
    path = Path(path)
    file_size = path.stat().st_size
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ValueError(f"{path}: not a repro corpus artifact")
        fixed = handle.read(_FIXED_HEADER_LEN)
        if len(fixed) != _FIXED_HEADER_LEN:
            raise ValueError(f"{path}: truncated header")
        try:
            header_len, data_start = (int(part) for part in fixed.split())
        except (ValueError, TypeError) as exc:
            raise ValueError(f"{path}: corrupt header line") from exc
        header_raw = handle.read(header_len)
        if len(header_raw) != header_len:
            raise ValueError(f"{path}: truncated section directory")
        header = json.loads(header_raw.decode("ascii"))
    if not isinstance(header, dict) or header.get("format") != _FORMAT_VERSION:
        raise ValueError(f"{path}: unsupported corpus format")
    directory = header.get("sections")
    if not isinstance(directory, list):
        raise ValueError(f"{path}: malformed section directory")
    arrays: Dict[str, np.ndarray] = {}
    for entry in directory:
        name = entry.get("name")
        dtype = entry.get("dtype")
        length = entry.get("len")
        offset = entry.get("offset")
        if (
            name not in _SECTION_DTYPES
            or dtype != _SECTION_DTYPES[name]
            or not isinstance(length, int)
            or not isinstance(offset, int)
            or length < 0
            or offset < 0
        ):
            raise ValueError(f"{path}: malformed section entry {entry!r}")
        nbytes = length * np.dtype(dtype).itemsize
        if data_start + offset + nbytes > file_size:
            raise ValueError(f"{path}: truncated section {name!r}")
        if length == 0:
            arrays[name] = np.empty(0, dtype=dtype)
        elif use_mmap:
            arrays[name] = np.memmap(
                path, dtype=dtype, mode="r",
                offset=data_start + offset, shape=(length,),
            )
        else:
            with open(path, "rb") as handle:
                handle.seek(data_start + offset)
                blob = handle.read(nbytes)
            if len(blob) != nbytes:
                raise ValueError(f"{path}: truncated section {name!r}")
            arrays[name] = np.frombuffer(blob, dtype=dtype)
    if set(arrays) != set(_SECTION_DTYPES):
        raise ValueError(f"{path}: missing corpus sections")
    offsets = arrays["offsets"]
    if (
        len(offsets) < 1
        or header.get("n_routes") != len(offsets) - 1
        or int(offsets[0]) != 0
        or int(offsets[-1]) != len(arrays["hops"])
        or (len(offsets) > 1 and bool(np.any(np.diff(offsets) < 1)))
    ):
        raise ValueError(f"{path}: inconsistent CSR offsets")
    return CorpusColumns(
        hops=arrays["hops"],
        offsets=arrays["offsets"],
        comm_route=arrays["comm_route"],
        comm_owner=arrays["comm_owner"],
        comm_value=arrays["comm_value"],
    )
