"""Advisory per-entry lock files for the artifact cache.

Several processes routinely share one ``$REPRO_CACHE_DIR`` — ``repro
serve`` build threads, parallel CLI runs, CI jobs.  Thanks to unique
per-writer temp names plus atomic rename, concurrent writers of the
same entry are *safe* without any locking; what they are not is
*cheap*: N cold processes asked for the same scenario would each run
the full propagation before N-1 of them throw their result away.  The
:class:`EntryLock` turns that stampede into a single flight — the first
builder takes the entry's lock, the rest block briefly, re-check the
cache, and load the published artifact instead of recomputing.

Layout: one lock file per entry under ``<root>/.locks/<key>.lock``
(outside the entry directory, so purging a broken entry never deletes a
lock somebody holds).

Two implementations, picked automatically:

* ``fcntl.flock`` (Unix) — the kernel drops the lock when the holding
  process dies, so a crashed builder can never leave a stale lock.
  Lock files are not unlinked on release (unlink-while-locked races
  would let two holders lock different inodes of the same path); they
  are empty-truncated breadcrumbs that ``clear()`` sweeps when unheld.
* ``O_EXCL`` creation (everywhere else) — the lock is the file's
  existence, stamped with the owner's pid.  Stale recovery breaks a
  lock whose pid is dead or unparsable, or whose file is older than
  :data:`STALE_LOCK_SECONDS`.

Failing to acquire is never fatal: callers time out, proceed without
the lock, and fall back to the stampede the atomic-rename scheme
already tolerates.  The lock is purely an optimisation — correctness
never depends on it.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Optional, Union

try:  # pragma: no cover - import guard exercised only off-Unix
    import fcntl

    _HAVE_FCNTL = True
except ImportError:  # pragma: no cover - non-Unix platforms
    fcntl = None  # type: ignore[assignment]
    _HAVE_FCNTL = False

#: Directory under the cache root holding the lock files.
LOCK_DIR_NAME = ".locks"

#: Age beyond which an ``O_EXCL``-style lock is considered abandoned.
STALE_LOCK_SECONDS = 300.0


def lock_path(root: Union[str, Path], key: str) -> Path:
    """Where the advisory lock for entry ``key`` lives."""
    return Path(root) / LOCK_DIR_NAME / f"{key}.lock"


class EntryLock:
    """Advisory exclusive lock on one cache entry (not reentrant).

    Usable as a context manager; ``__enter__`` acquires with the
    configured timeout and records the outcome in ``self.acquired``
    instead of raising, because every caller treats lock failure as
    "proceed unlocked"::

        with cache.entry_lock(key) as lock:
            ...  # single-flighted when lock.acquired, stampede otherwise
    """

    def __init__(
        self,
        root: Union[str, Path],
        key: str,
        timeout: float = 10.0,
        poll_interval: float = 0.05,
        use_fcntl: Optional[bool] = None,
    ) -> None:
        self.root = Path(root)
        self.entry = key
        self.timeout = timeout
        self.poll_interval = poll_interval
        if use_fcntl is None:
            self._use_fcntl = _HAVE_FCNTL
        else:
            self._use_fcntl = bool(use_fcntl) and _HAVE_FCNTL
        self.acquired = False
        self._fd: Optional[int] = None

    @property
    def path(self) -> Path:
        return lock_path(self.root, self.entry)

    # ------------------------------------------------------------------
    # acquisition
    # ------------------------------------------------------------------
    def acquire(self) -> bool:
        """Try to take the lock until ``timeout``; False on failure."""
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                if self._try_acquire():
                    self.acquired = True
                    return True
            except OSError:
                # An unwritable lock directory (read-only cache mount,
                # permission skew between CI jobs) must not take the
                # build down — run unlocked instead.
                return False
            if time.monotonic() >= deadline:
                return False
            time.sleep(self.poll_interval)

    def _try_acquire(self) -> bool:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._use_fcntl:
            fd = os.open(str(self.path), os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                os.close(fd)
                return False
            os.ftruncate(fd, 0)
            os.write(fd, f"{os.getpid()}\n".encode("ascii"))
            self._fd = fd
            return True
        # O_EXCL fallback: existence is the lock.
        try:
            fd = os.open(
                str(self.path), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            if self._is_stale():
                self._break_stale()
            return False
        os.write(fd, f"{os.getpid()}\n".encode("ascii"))
        os.close(fd)
        return True

    # ------------------------------------------------------------------
    # stale recovery (O_EXCL fallback only)
    # ------------------------------------------------------------------
    def _is_stale(self) -> bool:
        try:
            raw = self.path.read_text(encoding="ascii")
        except OSError:
            return False  # vanished or unreadable: let the retry loop see
        try:
            pid = int(raw.strip())
        except ValueError:
            return True  # a holder that never wrote its pid is no holder
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True  # owner is dead
        except (OSError, PermissionError):
            pass  # alive (or unknowable): fall through to the age check
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return False
        return age > STALE_LOCK_SECONDS

    def _break_stale(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass  # somebody else broke or re-took it first

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------
    def release(self) -> None:
        if not self.acquired:
            return
        self.acquired = False
        if self._fd is not None:
            fd, self._fd = self._fd, None
            try:
                os.ftruncate(fd, 0)
                fcntl.flock(fd, fcntl.LOCK_UN)
            except OSError:
                pass
            os.close(fd)
            return
        self._break_stale()  # fallback mode: removing the file releases

    def __enter__(self) -> "EntryLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


def is_locked(root: Union[str, Path], key: str) -> bool:
    """Whether some process currently holds entry ``key``'s lock.

    Purely observational (``repro cache list``); the answer can be
    outdated by the time the caller acts on it.
    """
    path = lock_path(root, key)
    if not path.exists():
        return False
    if not _HAVE_FCNTL:
        probe = EntryLock(root, key, use_fcntl=False)
        return not probe._is_stale()
    try:
        fd = os.open(str(path), os.O_RDWR)
    except OSError:
        return False  # vanished between exists() and open: nobody holds it
    try:
        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        return True
    else:
        fcntl.flock(fd, fcntl.LOCK_UN)
        return False
    finally:
        os.close(fd)
