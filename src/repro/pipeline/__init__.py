"""Execution layer: process-parallel propagation and artifact caching.

The per-origin route computation that dominates scenario building is
embarrassingly parallel — every origin's route tree depends only on the
(read-only) adjacency index — and its outputs are small, hashable
artifacts.  This package exploits both facts:

* :class:`~repro.pipeline.parallel.ParallelPropagator` shards origins
  across a :class:`concurrent.futures.ProcessPoolExecutor` behind the
  same iteration API as the serial code, with a ``workers=0`` fallback
  that bypasses multiprocessing entirely;
* :class:`~repro.pipeline.cache.ArtifactCache` stores the expensive
  scenario artifacts (path corpus, inferred relationship sets, cleaned
  validation sets) content-addressed by a stable fingerprint of the
  :class:`~repro.config.ScenarioConfig` plus a code version, so a warm
  ``build_scenario`` skips propagation entirely.

Both are wired into :func:`repro.scenario.build_scenario` and the CLI
(``--workers``, ``--cache``, ``repro cache``); see
``docs/architecture.md`` for the worker model and cache layout.

The cache is safe for concurrent and crashing writers sharing one
root: writes publish unique per-writer temp files via atomic rename,
cross-process builders single-flight through advisory
:class:`~repro.pipeline.locks.EntryLock` files, reads retry once when a
file vanishes mid-parse, and every filesystem primitive flows through
the :class:`~repro.pipeline.fsops.CacheFilesystem` seam so
:mod:`repro.testing.faults` can prove the degrade-to-miss guarantee.
"""

from repro.pipeline.cache import (
    PIPELINE_CACHE_VERSION,
    ArtifactCache,
    default_cache_root,
    resolve_cache,
)
from repro.pipeline.fsops import CacheFilesystem
from repro.pipeline.locks import EntryLock, is_locked
from repro.pipeline.parallel import ParallelPropagator, resolve_workers

__all__ = [
    "ArtifactCache",
    "CacheFilesystem",
    "EntryLock",
    "ParallelPropagator",
    "PIPELINE_CACHE_VERSION",
    "default_cache_root",
    "is_locked",
    "resolve_cache",
    "resolve_workers",
]
