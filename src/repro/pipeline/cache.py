"""Content-addressed scenario artifact cache.

Scenario building is deterministic: every artifact is a pure function
of the :class:`~repro.config.ScenarioConfig` and the code that ran.
That makes the expensive artifacts — the propagated path corpus, the
inferred relationship sets, the cleaned validation sets — perfect cache
entries keyed by a content address:

    key = sha256(canonical-JSON(config) + code version)[:20]

The canonical JSON omits the adversarial layer when it is ``None``, so
honest configs keep the fingerprints (and cache entries) they had
before the adversarial subsystem existed; a config *with* an
:class:`~repro.config.AdversarialConfig` canonicalises the full attack
and deployment layer into the key, so polluted corpora are
content-addressed apart from clean ones for free.

Layout (one directory per scenario key under the cache root)::

    <root>/<key>/meta.json              fingerprint provenance + version
    <root>/<key>/corpus.npc             binary columnar path corpus
    <root>/<key>/rels-<algorithm>.asrel CAIDA serial-1 as-rel file
    <root>/<key>/validation-<policy>.txt cleaned validation set
    <root>/.locks/<key>.lock            advisory per-entry writer lock

The root is ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``.

Invalidation rules
------------------
* **Code version**: the version string participates in the key, so any
  bump orphans every old entry (they simply stop being addressed).  A
  ``meta.json`` whose recorded version disagrees with the reader's is
  treated as foreign and the whole entry is discarded — this catches
  truncated keys and hand-edited caches.  Stores refresh a stale meta
  record in place, so a foreign survivor can never pin a key into
  recomputing forever.
* **Corruption**: every load parses defensively; an unreadable artifact
  is deleted and reported as a miss, so a corrupted cache can only cost
  a recompute, never an error or a wrong result.
* **Eviction**: none automatic — entries are small files; the
  ``repro cache clear`` subcommand wipes the root on demand.

Concurrency and crash safety
----------------------------
One cache root is routinely shared by several writers (``repro serve``
build threads, parallel CLI runs, CI jobs) and the invariant above
extends to them: **every fault — a crashed writer, a full disk, a
concurrent deleter — degrades to a recorded miss plus a recompute,
never a crash or a wrong artifact.**  Three mechanisms carry it:

* **Unique per-writer temp names** — every publish writes
  ``<artifact>.<pid>.<seq>.tmp`` (pid plus a per-process monotonic
  counter) and commits with one atomic ``os.replace``.  Two writers of
  the same artifact can interleave arbitrarily; each renames only its
  own fully-written file, so readers observe either a complete old or a
  complete new artifact.  A crash leaves at worst a ``.tmp`` straggler
  (``repro cache list`` reports them; ``clear`` sweeps them).
* **Advisory per-entry locks** — cross-process builders of one key
  single-flight through ``<root>/.locks/<key>.lock``
  (:class:`~repro.pipeline.locks.EntryLock`: ``fcntl`` where available,
  ``O_EXCL`` with stale-lock recovery elsewhere).  The lock is an
  optimisation only: on timeout the caller proceeds unlocked and the
  tmp-name scheme keeps the resulting stampede safe.
* **Read-side retry-once-on-vanish** — a file deleted between the
  existence check and the parse (``repro cache clear`` racing a
  reader) is retried once, then recorded as a miss.

Store-side ``OSError`` (``ENOSPC`` and friends) is swallowed after
best-effort tmp cleanup and counted in ``store_errors`` — a cache that
cannot persist must not take the build down.  All filesystem traffic
flows through the :class:`~repro.pipeline.fsops.CacheFilesystem` seam
so :mod:`repro.testing.faults` can prove the guarantee by injecting
every fault deterministically.

The relationship and validation artifacts round-trip through the
existing text serialisers (:mod:`repro.datasets.asrel`,
:mod:`repro.datasets.validationset`), so those entries double as
human-readable exports.  The corpus — by far the largest artifact —
uses the compact binary section format of
:mod:`repro.pipeline.columnar` instead and is **memory-mapped** on warm
reads: a warm ``build_scenario`` adopts the on-disk columns directly
and never materialises per-route Python tuples unless a consumer
iterates routes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.datasets.asrel import RelationshipSet, read_asrel, write_asrel
from repro.datasets.paths import PathCorpus
from repro.pipeline.columnar import read_corpus_columns, write_corpus_columns
from repro.datasets.validationset import read_validation_set, write_validation_set
from repro.pipeline.fsops import CacheFilesystem
from repro.pipeline.locks import LOCK_DIR_NAME, EntryLock, is_locked
from repro.validation.cleaning import CleanedValidation, MultiLabelPolicy

if TYPE_CHECKING:
    from repro.config import ScenarioConfig

#: Bump when a pipeline change alters any cached artifact's content
#: without touching the library version (invalidates every entry).
PIPELINE_CACHE_VERSION = "2"

_META_FILE = "meta.json"
_CORPUS_FILE = "corpus.npc"
_TMP_SUFFIX = ".tmp"

#: Per-process monotonic sequence making concurrent same-key writers'
#: temp names distinct even within one process (pid alone is not
#: enough once ``repro serve`` runs builds on several threads).
_tmp_counter = itertools.count()


def _tmp_path(path: Path) -> Path:
    """A collision-free temp name next to ``path`` for this writer."""
    return path.with_name(
        f"{path.name}.{os.getpid()}.{next(_tmp_counter)}{_TMP_SUFFIX}"
    )


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _read_corpus_artifact(path: Path) -> PathCorpus:
    """Reader for the binary corpus artifact (sections memory-mapped)."""
    return PathCorpus.from_columns(read_corpus_columns(path))


def _code_version() -> str:
    from repro import __version__

    return f"{__version__}+cache{PIPELINE_CACHE_VERSION}"


class ArtifactCache:
    """Load/store scenario artifacts under a content-addressed layout.

    ``hits``/``misses`` count load attempts for observability (the warm
    -cache benchmark and the CLI report them); stores are not counted.
    ``store_errors`` counts stores the filesystem refused (the build
    continues uncached) and ``read_retries`` counts loads that saw a
    file vanish mid-read and tried again.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        code_version: Optional[str] = None,
        fs: Optional[CacheFilesystem] = None,
        lock_timeout: float = 10.0,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.code_version = code_version or _code_version()
        self.fs = fs if fs is not None else CacheFilesystem()
        self.lock_timeout = lock_timeout
        self.hits = 0
        self.misses = 0
        self.store_errors = 0
        self.read_retries = 0

    # ------------------------------------------------------------------
    # keys and entry management
    # ------------------------------------------------------------------
    def scenario_key(self, config: "ScenarioConfig") -> str:
        """Stable content address of one scenario under this code."""
        payload = {
            "config": config.canonical_dict(),
            "code": self.code_version,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]

    def entry_lock(self, key: str) -> EntryLock:
        """The advisory cross-process writer lock for one entry."""
        return EntryLock(self.root, key, timeout=self.lock_timeout)

    def _entry_dir(self, key: str) -> Path:
        return self.root / key

    def _discard(self, path: Path) -> None:
        """Best-effort removal of a corrupt artifact or foreign entry."""
        try:
            if path.is_dir():
                self.fs.rmtree(path)
            else:
                self.fs.unlink(path)
        except OSError:
            pass

    def _entry_valid(self, key: str) -> bool:
        """Check the entry's meta record; purge foreign/broken entries."""
        entry = self._entry_dir(key)
        meta_path = entry / _META_FILE
        try:
            meta = json.loads(self.fs.read_text(meta_path))
            if meta.get("code") != self.code_version:
                raise ValueError("code version mismatch")
        except (OSError, ValueError):
            self._discard(entry)
            return False
        return True

    # ------------------------------------------------------------------
    # crash-safe publication
    # ------------------------------------------------------------------
    def _publish_text(self, path: Path, text: str) -> None:
        """Atomically write ``text`` to ``path``; never raises OSError."""
        tmp = _tmp_path(path)
        try:
            self.fs.mkdir(path.parent)
            self.fs.write_text(tmp, text)
            self.fs.replace(tmp, path)
        except OSError:
            self.store_errors += 1
            self._cleanup_tmp(tmp)

    def _publish_file(self, path: Path, writer) -> None:
        """Run ``writer(tmp)`` then rename over ``path``.

        The temp name is unique per writer (pid + counter), so
        concurrent stores of the same artifact never clobber each
        other's half-written files; the rename publishes only complete
        bytes.  A filesystem refusal (``ENOSPC``, read-only root) is
        swallowed after cleanup — the caller keeps its in-memory
        artifact and the entry simply stays cold.
        """
        tmp = _tmp_path(path)
        try:
            self.fs.mkdir(path.parent)
            self.fs.run_writer(writer, tmp)
            self.fs.replace(tmp, path)
        except OSError:
            self.store_errors += 1
            self._cleanup_tmp(tmp)

    def _cleanup_tmp(self, tmp: Path) -> None:
        try:
            self.fs.unlink(tmp)
        except OSError:
            pass

    def _write_meta(self, key: str, config: "ScenarioConfig") -> None:
        entry = self._entry_dir(key)
        try:
            self.fs.mkdir(entry)
        except OSError:
            self.store_errors += 1
            return
        meta_path = entry / _META_FILE
        try:
            existing = json.loads(self.fs.read_text(meta_path))
        except (OSError, ValueError):
            existing = None
        if existing is not None and existing.get("code") == self.code_version:
            return
        # Missing, unreadable, or recorded under different code: (re)write
        # it — a surviving stale record would otherwise fail validation on
        # every load and condemn this key to recomputing forever.
        meta = {
            "code": self.code_version,
            "fingerprint": config.fingerprint(),
            "config": config.canonical_dict(),
        }
        self._publish_text(meta_path, json.dumps(meta, sort_keys=True, indent=1))

    def _load(self, key: str, filename: str, reader) -> Optional[Any]:
        """Shared defensive-load path: validate entry, parse, recover."""
        path = self._entry_dir(key) / filename
        for attempt in (0, 1):
            if not path.exists() or not self._entry_valid(key):
                self.misses += 1
                return None
            try:
                artifact = self.fs.run_reader(reader, path)
            except FileNotFoundError:
                # A concurrent `repro cache clear` (or a writer's entry
                # purge) deleted the file between the existence check
                # and the parse.  Retry once — a concurrent writer may
                # have already republished — then record a miss.
                if attempt == 0:
                    self.read_retries += 1
                    continue
                self.misses += 1
                return None
            except Exception:
                # A corrupted entry must never crash a build: drop the
                # file and fall back to recomputation.
                self._discard(path)
                self.misses += 1
                return None
            self.hits += 1
            return artifact
        return None  # pragma: no cover - loop always returns

    # ------------------------------------------------------------------
    # artifact load/store
    # ------------------------------------------------------------------
    def load_corpus(self, key: str) -> Optional[PathCorpus]:
        """A corpus wrapped around memory-mapped on-disk columns."""
        return self._load(key, _CORPUS_FILE, _read_corpus_artifact)

    def store_corpus(
        self, key: str, corpus: PathCorpus, config: "ScenarioConfig"
    ) -> Path:
        self._write_meta(key, config)
        path = self._entry_dir(key) / _CORPUS_FILE
        self._publish_file(
            path, lambda tmp: write_corpus_columns(corpus.columns(), tmp)
        )
        return path

    def load_rels(self, key: str, algorithm: str) -> Optional[RelationshipSet]:
        return self._load(key, f"rels-{algorithm}.asrel", read_asrel)

    def store_rels(
        self,
        key: str,
        algorithm: str,
        rels: RelationshipSet,
        config: "ScenarioConfig",
    ) -> Path:
        self._write_meta(key, config)
        path = self._entry_dir(key) / f"rels-{algorithm}.asrel"
        header = [f"inferred by {algorithm} (repro pipeline cache)"]
        self._publish_file(
            path, lambda tmp: write_asrel(rels, tmp, header_lines=header)
        )
        return path

    def load_validation(
        self, key: str, policy: MultiLabelPolicy
    ) -> Optional[CleanedValidation]:
        return self._load(
            key, f"validation-{policy.value}.txt", read_validation_set
        )

    def store_validation(
        self,
        key: str,
        policy: MultiLabelPolicy,
        cleaned: CleanedValidation,
        config: "ScenarioConfig",
    ) -> Path:
        self._write_meta(key, config)
        path = self._entry_dir(key) / f"validation-{policy.value}.txt"
        self._publish_file(path, lambda tmp: write_validation_set(cleaned, tmp))
        return path

    # ------------------------------------------------------------------
    # inspection / maintenance (the ``repro cache`` subcommand)
    # ------------------------------------------------------------------
    def entries(self) -> List[Dict[str, Any]]:
        """One summary record per cache entry, newest last.

        Robust against concurrent mutation: files (or whole entries)
        deleted between directory listing and ``stat`` are skipped, not
        raised.  Each record also reports crash/concurrency residue —
        ``stragglers`` (leftover ``.tmp`` files from interrupted
        writers) and ``locked`` (whether some process currently holds
        the entry's advisory writer lock).
        """
        if not self.root.is_dir():
            return []
        records = []
        try:
            candidates = sorted(self.root.iterdir())
        except OSError:
            return []
        for entry in candidates:
            if entry.name == LOCK_DIR_NAME or not entry.is_dir():
                continue
            try:
                children = sorted(entry.iterdir())
            except OSError:
                continue  # entry cleared between listing and descent
            files: List[str] = []
            stragglers = 0
            size = 0
            for child in children:
                try:
                    if not child.is_file():
                        continue
                    size += self.fs.stat_size(child)
                except OSError:
                    continue  # vanished between listing and stat
                if child.name.endswith(_TMP_SUFFIX):
                    stragglers += 1
                else:
                    files.append(child.name)
            meta: Dict[str, Any] = {}
            try:
                meta = json.loads(self.fs.read_text(entry / _META_FILE))
            except ValueError:
                meta = {"code": "<unreadable>"}
            except OSError:
                meta = {}
            records.append(
                {
                    "key": entry.name,
                    "files": files,
                    "stragglers": stragglers,
                    "locked": is_locked(self.root, entry.name),
                    "size_bytes": size,
                    "code": meta.get("code"),
                    "seed": meta.get("config", {}).get("seed"),
                    "n_ases": meta.get("config", {})
                    .get("topology", {})
                    .get("n_ases"),
                }
            )
        return records

    def config_for_fingerprint(self, prefix: str) -> Optional["ScenarioConfig"]:
        """Resolve a scenario-fingerprint prefix back into its config.

        Scans entry ``meta.json`` records (same code version only) for a
        fingerprint starting with ``prefix`` and rebuilds the stored
        canonical config.  This is the cross-process scenario-resolution
        seam: a service worker that receives a scenario id admitted by a
        *sibling* worker looks the config up here and then warm-admits
        the same artifacts.  Returns ``None`` when nothing matches.
        """
        from repro.config import ConfigError, config_from_canonical

        if not prefix or not self.root.is_dir():
            return None
        try:
            candidates = sorted(self.root.iterdir())
        except OSError:
            return None
        for entry in candidates:
            if entry.name == LOCK_DIR_NAME or not entry.is_dir():
                continue
            try:
                meta = json.loads(self.fs.read_text(entry / _META_FILE))
            except (OSError, ValueError):
                continue
            if meta.get("code") != self.code_version:
                continue
            fingerprint = meta.get("fingerprint")
            if not isinstance(fingerprint, str) or not fingerprint.startswith(
                prefix
            ):
                continue
            try:
                return config_from_canonical(meta.get("config", {}))
            except (ConfigError, TypeError, KeyError):
                continue  # stale/foreign record; keep scanning
        return None

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed.

        Also sweeps lock files nobody currently holds (a held lock is
        left alone — its owner is mid-build and will simply repopulate
        a fresh entry).
        """
        removed = 0
        for record in self.entries():
            self._discard(self.root / record["key"])
            removed += 1
        self._sweep_locks()
        return removed

    def _sweep_locks(self) -> None:
        lock_dir = self.root / LOCK_DIR_NAME
        if not lock_dir.is_dir():
            return
        try:
            lock_files = sorted(lock_dir.iterdir())
        except OSError:
            return
        for path in lock_files:
            if path.suffix != ".lock":
                continue
            if is_locked(self.root, path.stem):
                continue
            try:
                self.fs.unlink(path)
            except OSError:
                pass

    def total_size(self) -> int:
        return sum(record["size_bytes"] for record in self.entries())


def resolve_cache(
    cache: Union[None, bool, str, Path, ArtifactCache]
) -> Optional[ArtifactCache]:
    """Coerce the ``cache`` argument accepted by ``build_scenario``.

    ``None``/``False`` disable caching, ``True`` uses the default root,
    a path string uses that root, and an :class:`ArtifactCache` is
    passed through.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ArtifactCache()
    if isinstance(cache, ArtifactCache):
        return cache
    return ArtifactCache(root=cache)
