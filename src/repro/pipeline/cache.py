"""Content-addressed scenario artifact cache.

Scenario building is deterministic: every artifact is a pure function
of the :class:`~repro.config.ScenarioConfig` and the code that ran.
That makes the expensive artifacts — the propagated path corpus, the
inferred relationship sets, the cleaned validation sets — perfect cache
entries keyed by a content address:

    key = sha256(canonical-JSON(config) + code version)[:20]

Layout (one directory per scenario key under the cache root)::

    <root>/<key>/meta.json              fingerprint provenance + version
    <root>/<key>/corpus.paths           bgpdump-style path corpus
    <root>/<key>/rels-<algorithm>.asrel CAIDA serial-1 as-rel file
    <root>/<key>/validation-<policy>.txt cleaned validation set

The root is ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``.

Invalidation rules
------------------
* **Code version**: the version string participates in the key, so any
  bump orphans every old entry (they simply stop being addressed).  A
  ``meta.json`` whose recorded version disagrees with the reader's is
  treated as foreign and the whole entry is discarded — this catches
  truncated keys and hand-edited caches.
* **Corruption**: every load parses defensively; an unreadable artifact
  is deleted and reported as a miss, so a corrupted cache can only cost
  a recompute, never an error or a wrong result.
* **Eviction**: none automatic — entries are small text files; the
  ``repro cache clear`` subcommand wipes the root on demand.

All artifacts round-trip through the existing dataset serialisers
(:mod:`repro.datasets.bgpdump`, :mod:`repro.datasets.asrel`,
:mod:`repro.datasets.validationset`), so a cache entry doubles as a
human-readable export of the scenario.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.datasets.asrel import RelationshipSet, read_asrel, write_asrel
from repro.datasets.bgpdump import read_path_corpus, write_path_corpus
from repro.datasets.paths import PathCorpus
from repro.datasets.validationset import read_validation_set, write_validation_set
from repro.validation.cleaning import CleanedValidation, MultiLabelPolicy

if TYPE_CHECKING:
    from repro.config import ScenarioConfig

#: Bump when a pipeline change alters any cached artifact's content
#: without touching the library version (invalidates every entry).
PIPELINE_CACHE_VERSION = "1"

_META_FILE = "meta.json"
_CORPUS_FILE = "corpus.paths"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


def _code_version() -> str:
    from repro import __version__

    return f"{__version__}+cache{PIPELINE_CACHE_VERSION}"


class ArtifactCache:
    """Load/store scenario artifacts under a content-addressed layout.

    ``hits``/``misses`` count load attempts for observability (the warm
    -cache benchmark and the CLI report them); stores are not counted.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]] = None,
        code_version: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.code_version = code_version or _code_version()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # keys and entry management
    # ------------------------------------------------------------------
    def scenario_key(self, config: "ScenarioConfig") -> str:
        """Stable content address of one scenario under this code."""
        payload = {
            "config": config.canonical_dict(),
            "code": self.code_version,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]

    def _entry_dir(self, key: str) -> Path:
        return self.root / key

    def _discard(self, path: Path) -> None:
        """Best-effort removal of a corrupt artifact or foreign entry."""
        try:
            if path.is_dir():
                shutil.rmtree(path)
            else:
                path.unlink()
        except OSError:
            pass

    def _entry_valid(self, key: str) -> bool:
        """Check the entry's meta record; purge foreign/broken entries."""
        entry = self._entry_dir(key)
        meta_path = entry / _META_FILE
        try:
            meta = json.loads(meta_path.read_text(encoding="utf-8"))
            if meta.get("code") != self.code_version:
                raise ValueError("code version mismatch")
        except (OSError, ValueError):
            self._discard(entry)
            return False
        return True

    def _write_meta(self, key: str, config: "ScenarioConfig") -> None:
        entry = self._entry_dir(key)
        entry.mkdir(parents=True, exist_ok=True)
        meta_path = entry / _META_FILE
        if meta_path.exists():
            return
        meta = {
            "code": self.code_version,
            "fingerprint": config.fingerprint(),
            "config": config.canonical_dict(),
        }
        _atomic_write(meta_path, json.dumps(meta, sort_keys=True, indent=1))

    def _load(self, key: str, filename: str, reader) -> Optional[Any]:
        """Shared defensive-load path: validate entry, parse, recover."""
        path = self._entry_dir(key) / filename
        if not path.exists() or not self._entry_valid(key):
            self.misses += 1
            return None
        try:
            artifact = reader(path)
        except Exception:
            # A corrupted entry must never crash a build: drop the file
            # and fall back to recomputation.
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return artifact

    # ------------------------------------------------------------------
    # artifact load/store
    # ------------------------------------------------------------------
    def load_corpus(self, key: str) -> Optional[PathCorpus]:
        return self._load(key, _CORPUS_FILE, read_path_corpus)

    def store_corpus(
        self, key: str, corpus: PathCorpus, config: "ScenarioConfig"
    ) -> Path:
        self._write_meta(key, config)
        path = self._entry_dir(key) / _CORPUS_FILE
        _atomic_file(path, lambda tmp: write_path_corpus(corpus, tmp))
        return path

    def load_rels(self, key: str, algorithm: str) -> Optional[RelationshipSet]:
        return self._load(key, f"rels-{algorithm}.asrel", read_asrel)

    def store_rels(
        self,
        key: str,
        algorithm: str,
        rels: RelationshipSet,
        config: "ScenarioConfig",
    ) -> Path:
        self._write_meta(key, config)
        path = self._entry_dir(key) / f"rels-{algorithm}.asrel"
        header = [f"inferred by {algorithm} (repro pipeline cache)"]
        _atomic_file(path, lambda tmp: write_asrel(rels, tmp, header_lines=header))
        return path

    def load_validation(
        self, key: str, policy: MultiLabelPolicy
    ) -> Optional[CleanedValidation]:
        return self._load(
            key, f"validation-{policy.value}.txt", read_validation_set
        )

    def store_validation(
        self,
        key: str,
        policy: MultiLabelPolicy,
        cleaned: CleanedValidation,
        config: "ScenarioConfig",
    ) -> Path:
        self._write_meta(key, config)
        path = self._entry_dir(key) / f"validation-{policy.value}.txt"
        _atomic_file(path, lambda tmp: write_validation_set(cleaned, tmp))
        return path

    # ------------------------------------------------------------------
    # inspection / maintenance (the ``repro cache`` subcommand)
    # ------------------------------------------------------------------
    def entries(self) -> List[Dict[str, Any]]:
        """One summary record per cache entry, newest last."""
        if not self.root.is_dir():
            return []
        records = []
        for entry in sorted(self.root.iterdir()):
            if not entry.is_dir():
                continue
            files = sorted(p.name for p in entry.iterdir() if p.is_file())
            size = sum(p.stat().st_size for p in entry.iterdir() if p.is_file())
            meta: Dict[str, Any] = {}
            meta_path = entry / _META_FILE
            if meta_path.exists():
                try:
                    meta = json.loads(meta_path.read_text(encoding="utf-8"))
                except ValueError:
                    meta = {"code": "<unreadable>"}
            records.append(
                {
                    "key": entry.name,
                    "files": files,
                    "size_bytes": size,
                    "code": meta.get("code"),
                    "seed": meta.get("config", {}).get("seed"),
                    "n_ases": meta.get("config", {})
                    .get("topology", {})
                    .get("n_ases"),
                }
            )
        return records

    def clear(self) -> int:
        """Remove every entry; returns the number of entries removed."""
        removed = 0
        for record in self.entries():
            self._discard(self.root / record["key"])
            removed += 1
        return removed

    def total_size(self) -> int:
        return sum(record["size_bytes"] for record in self.entries())


def resolve_cache(
    cache: Union[None, bool, str, Path, ArtifactCache]
) -> Optional[ArtifactCache]:
    """Coerce the ``cache`` argument accepted by ``build_scenario``.

    ``None``/``False`` disable caching, ``True`` uses the default root,
    a path string uses that root, and an :class:`ArtifactCache` is
    passed through.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ArtifactCache()
    if isinstance(cache, ArtifactCache):
        return cache
    return ArtifactCache(root=cache)


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _atomic_file(path: Path, writer) -> None:
    """Run ``writer(tmp_path)`` then rename over ``path``.

    A crash mid-write leaves at worst a ``.tmp`` straggler, never a
    half-written artifact that a later load would have to recover from.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    writer(tmp)
    os.replace(tmp, path)
