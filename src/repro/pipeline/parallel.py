"""Process-parallel per-origin propagation.

Every origin's route tree is an independent function of the (read-only)
:class:`~repro.bgp.policy.AdjacencyIndex`, so the per-origin fan-out —
the hot path of scenario building — shards cleanly across worker
processes.  :class:`ParallelPropagator` does exactly that while keeping
the output stream *indistinguishable* from the serial code:

* origins are split into contiguous chunks and submitted in order;
* results are yielded strictly in submission order (origin-major), so
  consumers observe the same sequence the serial loop produces;
* inside a worker the same :func:`compute_route_tree` /
  :func:`~repro.bgp.collectors.routes_for_origin` code runs, so each
  element is identical, not merely equivalent — the differential tests
  in ``tests/pipeline/`` assert byte-identical serialisations.

``workers=0`` falls back to plain in-process iteration (no executor,
no pickling), which is also the default everywhere; ``workers=None`` or
a negative count auto-sizes to the machine's CPU count.

The heavy, shared inputs (adjacency index, vantage points, community
registry, stripper set) travel to each worker exactly once via the pool
initializer instead of once per task, which keeps the per-chunk payload
down to a list of origin ASNs.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.bgp.policy import AdjacencyIndex
from repro.bgp.propagation import (
    RouteTree,
    compute_origin_routes,
    compute_route_tree,
    plane_of,
    propagation_engine,
)

#: Per-process worker state, populated by the pool initializer.  Plain
#: module globals are the standard multiprocessing idiom: the dict is
#: filled once per worker process and read by every chunk it executes.
_WORKER_STATE: Dict[str, Any] = {}


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count request.

    ``0`` means serial, positive counts are taken literally, and
    ``None`` or negative values auto-size to the CPU count.
    """
    if workers is None or workers < 0:
        return max(1, os.cpu_count() or 1)
    return workers


def _chunk(origins: Sequence[int], workers: int, chunk_size: Optional[int]) -> List[Sequence[int]]:
    """Contiguous origin chunks, sized for ~4 chunks per worker.

    Chunking amortises task-submission overhead while staying fine
    grained enough that an unlucky slow chunk cannot serialise the pool.
    """
    if chunk_size is None:
        chunk_size = max(1, -(-len(origins) // (workers * 4)))
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    return [origins[i : i + chunk_size] for i in range(0, len(origins), chunk_size)]


# ---------------------------------------------------------------------------
# worker functions (module-level so they pickle under every start method)
# ---------------------------------------------------------------------------

def _prime_engine(adjacency: AdjacencyIndex) -> None:
    """Build the propagation plane once per worker process.

    The CSR compilation is the only super-per-origin cost of the
    vectorized engine; doing it in the initializer keeps every chunk a
    pure array pass (and keeps it out of per-chunk timing entirely).
    """
    if propagation_engine() == "vectorized":
        plane_of(adjacency)


def _init_tree_worker(adjacency: AdjacencyIndex) -> None:
    _WORKER_STATE["adjacency"] = adjacency
    _prime_engine(adjacency)


def _tree_chunk(origins: Sequence[int]) -> List[RouteTree]:
    adjacency = _WORKER_STATE["adjacency"]
    return [compute_route_tree(adjacency, origin) for origin in origins]


def _init_collect_worker(
    adjacency: AdjacencyIndex,
    vantage_points: Sequence[Any],
    communities: Any,
    strippers: Any,
) -> None:
    _WORKER_STATE["adjacency"] = adjacency
    _WORKER_STATE["vantage_points"] = list(vantage_points)
    _WORKER_STATE["communities"] = communities
    _WORKER_STATE["strippers"] = strippers
    _prime_engine(adjacency)


def _collect_chunk(origins: Sequence[int]) -> Any:
    # Imported here (not at module top) so that worker processes under
    # the ``spawn`` start method import the minimal closure they need.
    from repro.bgp.collectors import routes_for_origin
    from repro.pipeline.columnar import pack_route_slab

    adjacency = _WORKER_STATE["adjacency"]
    vantage_points = _WORKER_STATE["vantage_points"]
    communities = _WORKER_STATE["communities"]
    strippers = _WORKER_STATE["strippers"]
    routes: List[Any] = []
    for origin in origins:
        origin_routes = compute_origin_routes(adjacency, origin)
        routes.extend(
            routes_for_origin(
                origin_routes, vantage_points, communities, strippers
            )
        )
    # Ship the chunk as an array slab: five contiguous buffers pickle in
    # O(bytes) instead of one object graph per route, and the parent
    # unpacks into routes identical to what the serial loop builds.
    return pack_route_slab(routes)


def _run_chunked(
    worker_fn: Callable[[Sequence[int]], Any],
    initializer: Callable[..., None],
    initargs: tuple,
    origins: Sequence[int],
    workers: int,
    chunk_size: Optional[int],
    unpack: Optional[Callable[[Any], List[Any]]] = None,
) -> Iterator[Any]:
    """Submit origin chunks to a fresh pool; yield results in order.

    Futures are drained in submission order, which gives the
    deterministic origin-major merge the differential tests rely on —
    whatever order the workers *finish* in is invisible to the caller.
    ``unpack`` decodes one chunk payload into its element list (used by
    the slab-shipping collection path); without it the payload is
    assumed to already be a list.
    """
    chunks = _chunk(origins, workers, chunk_size)
    with ProcessPoolExecutor(
        max_workers=workers, initializer=initializer, initargs=initargs
    ) as pool:
        futures = [pool.submit(worker_fn, chunk) for chunk in chunks]
        for future in futures:
            payload = future.result()
            yield from unpack(payload) if unpack is not None else payload


class ParallelPropagator:
    """Sharded route propagation behind the serial iteration API.

    Parameters
    ----------
    adjacency:
        The read-only adjacency index routes are computed over.
    workers:
        ``0`` (default) for the serial fallback, a positive count for
        that many worker processes, ``None``/negative for CPU count.
    chunk_size:
        Origins per submitted task; defaults to ~4 chunks per worker.
    """

    def __init__(
        self,
        adjacency: AdjacencyIndex,
        workers: Optional[int] = 0,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.adjacency = adjacency
        self.workers = 0 if workers == 0 else resolve_workers(workers)
        self.chunk_size = chunk_size

    def iter_route_trees(
        self, origins: Optional[Iterable[int]] = None
    ) -> Iterator[RouteTree]:
        """Yield every origin's route tree in input (origin) order.

        Drop-in replacement for
        :func:`repro.bgp.propagation.iter_route_trees`; with
        ``workers=0`` it *is* that loop.
        """
        origin_list = list(origins) if origins is not None else list(self.adjacency.asns)
        if self.workers == 0 or len(origin_list) <= 1:
            for origin in origin_list:
                yield compute_route_tree(self.adjacency, origin)
            return
        yield from _run_chunked(
            _tree_chunk,
            _init_tree_worker,
            (self.adjacency,),
            origin_list,
            self.workers,
            self.chunk_size,
        )

    def collect_routes(
        self,
        vantage_points: Sequence[Any],
        communities: Any,
        strippers: Any,
        origins: Optional[Iterable[int]] = None,
    ) -> Iterator[Any]:
        """Yield the collector-visible routes of every origin, in the
        exact order the serial :class:`~repro.bgp.collectors.RouteCollector`
        records them (origin-major, vantage-point order within).

        The per-origin tree is built *and reduced to VP paths inside
        the worker*, and each chunk's routes cross the process boundary
        as one packed :class:`~repro.pipeline.columnar.RouteSlab` (flat
        numpy buffers) instead of a list of per-route tuple graphs —
        route trees never travel at all.
        """
        from repro.bgp.collectors import routes_for_origin
        from repro.pipeline.columnar import unpack_route_slab

        origin_list = list(origins) if origins is not None else list(self.adjacency.asns)
        if self.workers == 0 or len(origin_list) <= 1:
            for origin in origin_list:
                origin_routes = compute_origin_routes(self.adjacency, origin)
                yield from routes_for_origin(
                    origin_routes, vantage_points, communities, strippers
                )
            return
        yield from _run_chunked(
            _collect_chunk,
            _init_collect_worker,
            (self.adjacency, list(vantage_points), communities, strippers),
            origin_list,
            self.workers,
            self.chunk_size,
            unpack=unpack_route_slab,
        )
