"""Filesystem seam for the artifact cache.

Every byte the :class:`~repro.pipeline.cache.ArtifactCache` moves to or
from disk goes through one of the primitives below.  The indirection
exists for exactly one reason: the cache's crash/concurrency contract
("every fault degrades to a recorded miss plus a recompute, never a
crash or a wrong artifact") is only worth documenting if it can be
*executed*, and :mod:`repro.testing.faults` does that by substituting a
:class:`~repro.testing.faults.FaultyFilesystem` that injects
crash-before-rename, partial writes, ``ENOSPC`` and concurrent-deleter
interleavings at these exact call sites.

The default implementation is deliberately boring — each method is a
one-line passthrough to :mod:`os`/:mod:`pathlib`/:mod:`shutil` — so the
production cache pays nothing for the seam.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import Any, Callable


class CacheFilesystem:
    """The primitive filesystem operations the artifact cache performs.

    Subclasses may override any method to observe or perturb the
    operation; the cache never touches the filesystem except through an
    instance of this class.  Instances carry no state and are picklable,
    so a cache configured with one can cross a process boundary.
    """

    def mkdir(self, path: Path) -> None:
        """Create ``path`` (and parents); existing directories are fine."""
        path.mkdir(parents=True, exist_ok=True)

    def write_text(self, path: Path, text: str) -> None:
        """Write ``text`` to ``path`` (the cache only targets tmp names)."""
        path.write_text(text, encoding="utf-8")

    def run_writer(self, writer: Callable[[Path], Any], path: Path) -> None:
        """Invoke an artifact serialiser against ``path``."""
        writer(path)

    def replace(self, src: Path, dst: Path) -> None:
        """Atomically publish ``src`` over ``dst`` (the commit point)."""
        os.replace(src, dst)

    def read_text(self, path: Path) -> str:
        """Read a small text file (``meta.json``)."""
        return path.read_text(encoding="utf-8")

    def run_reader(self, reader: Callable[[Path], Any], path: Path) -> Any:
        """Invoke an artifact parser against ``path``."""
        return reader(path)

    def stat_size(self, path: Path) -> int:
        """Size of ``path`` in bytes."""
        return path.stat().st_size

    def unlink(self, path: Path) -> None:
        """Remove one file."""
        path.unlink()

    def rmtree(self, path: Path) -> None:
        """Remove one directory tree."""
        shutil.rmtree(path)
