"""One-call scenario builder: the whole pipeline behind one object.

:func:`build_scenario` runs generation → propagation/collection →
validation compilation → cleaning, and returns a :class:`Scenario`
bundling every artefact with lazily-computed, cached inference results
and classifiers.  All benchmarks and examples start here::

    from repro import ScenarioConfig, build_scenario

    scenario = build_scenario(ScenarioConfig.default())
    table = scenario.validation_table("asrank")

The Stub/Transit split used by the topological classifier always comes
from the **ASRank** inference (the paper uses CAIDA's customer-cone
dataset, which is ASRank-derived), so the link classes — and the LC
link counts in the tables — are identical across algorithms, exactly as
in Tables 1-3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

if TYPE_CHECKING:
    from repro.adversarial.attacks import AttackEvent

from repro.analysis.bias import BiasProfile, bias_profile
from repro.analysis.casestudy import CaseStudyResult, run_case_study
from repro.analysis.classes import RegionalClassifier, TopologicalClassifier
from repro.analysis.heatmap import ImbalanceHeatmaps, build_heatmaps, metric_values
from repro.analysis.tables import ValidationTable, build_table
from repro.bgp.collectors import (
    VantagePoint,
    collect_rounds,
    measurement_setup,
)
from repro.bgp.communities import CommunityRegistry
from repro.config import ScenarioConfig
from repro.datasets.asrel import RelationshipSet
from repro.datasets.paths import PathCorpus
from repro.inference.asrank import ASRank
from repro.inference.base import InferenceAlgorithm
from repro.inference.gao import GaoInference
from repro.inference.problink import ProbLink
from repro.inference.toposcope import TopoScope
from repro.pipeline.cache import ArtifactCache, resolve_cache
from repro.topology.generator import Topology, generate_topology
from repro.topology.graph import LinkKey, RelType
from repro.validation.cleaning import (
    CleanedValidation,
    MultiLabelPolicy,
    clean_validation,
)
from repro.validation.compiler import CompiledValidation, compile_validation

#: The algorithms of the paper plus the historical baseline.
ALGORITHM_NAMES: Tuple[str, ...] = ("asrank", "problink", "toposcope", "gao")


@dataclass
class Scenario:
    """Everything one synthetic April-2018 snapshot produces."""

    config: ScenarioConfig
    topology: Topology
    corpus: PathCorpus
    vantage_points: List[VantagePoint]
    communities: CommunityRegistry
    strippers: Set[int]
    validation: CleanedValidation

    #: Propagation worker processes used when (re)computing corpora.
    workers: int = 0
    #: Artifact cache serving/receiving this scenario's heavy outputs.
    cache: Optional[ArtifactCache] = field(default=None, repr=False)
    cache_key: Optional[str] = field(default=None, repr=False)
    #: True when the corpus was admitted warm (mmap) from the cache
    #: instead of being rebuilt by propagation.
    corpus_from_cache: bool = False

    _raw_validation: Optional[CompiledValidation] = field(
        default=None, repr=False
    )
    _inferences: Dict[str, RelationshipSet] = field(default_factory=dict, repr=False)
    _algorithms: Dict[str, InferenceAlgorithm] = field(
        default_factory=dict, repr=False
    )
    _regional: Optional[RegionalClassifier] = field(default=None, repr=False)
    _topological: Optional[TopologicalClassifier] = field(default=None, repr=False)
    _inferred_links: Optional[List[LinkKey]] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    @property
    def raw_validation(self) -> CompiledValidation:
        """The pre-cleaning compiled validation data.

        Computed lazily: when the cleaned validation set was served from
        the artifact cache, the raw compilation is only (re)run for the
        few consumers that inspect pre-cleaning state (the §4.2 cleaning
        benchmarks, the complex-relationship detector).  Recompilation
        is deterministic — labelled child RNG streams — so the lazily
        built object is identical to the one an uncached build carries.
        """
        if self._raw_validation is None:
            self._raw_validation = compile_validation(
                self.topology, self.corpus, self.communities, self.config
            )
        return self._raw_validation

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def _make_algorithm(self, name: str) -> InferenceAlgorithm:
        if name == "asrank":
            return ASRank()
        if name == "problink":
            return ProbLink(ixps=self.topology.ixps)
        if name == "toposcope":
            return TopoScope(ixps=self.topology.ixps)
        if name == "gao":
            return GaoInference()
        raise ValueError(f"unknown algorithm {name!r}")

    def algorithm(self, name: str) -> InferenceAlgorithm:
        """The (post-run) algorithm object, e.g. for its ``clique_``.

        When the relationship set came from the artifact cache, no
        algorithm object exists yet; the algorithm is then run for real
        (its output is identical — inference is deterministic).
        """
        if name not in self._algorithms:
            algorithm = self._make_algorithm(name)
            self._inferences[name] = algorithm.infer(self.corpus)
            self._algorithms[name] = algorithm
        return self._algorithms[name]

    def infer(self, name: str) -> RelationshipSet:
        """Inference results, computed once per algorithm.

        With a cache attached, results round-trip through it: a hit
        skips the algorithm entirely, a miss computes and stores.
        """
        if name not in self._inferences:
            rels = None
            if self.cache is not None and self.cache_key is not None:
                rels = self.cache.load_rels(self.cache_key, name)
            if rels is None:
                algorithm = self._make_algorithm(name)
                rels = algorithm.infer(self.corpus)
                self._algorithms[name] = algorithm
                if self.cache is not None and self.cache_key is not None:
                    self.cache.store_rels(
                        self.cache_key, name, rels, self.config
                    )
            self._inferences[name] = rels
        return self._inferences[name]

    # ------------------------------------------------------------------
    # link universes and classifiers
    # ------------------------------------------------------------------
    def inferred_links(self, exclude_siblings: bool = True) -> List[LinkKey]:
        """The paper's "inferred links": everything visible in the
        (ASRank) data set, minus AS2Org sibling links when requested
        (§4.2 drops 2800 of them)."""
        if self._inferred_links is None:
            self._inferred_links = self.corpus.visible_links()
        links = self._inferred_links
        if not exclude_siblings:
            return list(links)
        orgs = self.topology.orgs
        return [key for key in links if not orgs.are_siblings(*key)]

    def attack_events(self) -> List["AttackEvent"]:
        """The attack plan polluting this scenario's corpus.

        Recomputed from the config's labelled RNG streams (cheap), so
        it is available whether or not the corpus came from the cache.
        Empty for honest scenarios.
        """
        adv = self.config.adversarial
        if adv is None or adv.attack.total_events() == 0:
            return []
        from repro.adversarial.attacks import plan_events

        return plan_events(self.topology, self.config)

    def corpus_stats(self) -> Dict[str, object]:
        """Corpus counters, intern-table sizes, and columnar memory
        footprint in the shared service JSON shape (``repro corpus
        stats``, ``BENCH_substrate.json``)."""
        # Deferred: repro.service.query imports this module.
        from repro.service.query import corpus_stats_payload

        return corpus_stats_payload(self.corpus)

    def regional_classifier(self) -> RegionalClassifier:
        if self._regional is None:
            self._regional = RegionalClassifier(self.topology.region_map)
        return self._regional

    def topological_classifier(self) -> TopologicalClassifier:
        if self._topological is None:
            self._topological = TopologicalClassifier(
                self.topology.external_lists,
                self.infer("asrank"),
                universe=self.corpus.visible_ases(),
            )
        return self._topological

    # ------------------------------------------------------------------
    # paper experiments
    # ------------------------------------------------------------------
    def regional_bias(self) -> BiasProfile:
        """Figure 1."""
        return bias_profile(
            self.inferred_links(),
            self.regional_classifier().classify,
            self.validation,
        )

    def topological_bias(self) -> BiasProfile:
        """Figure 2."""
        return bias_profile(
            self.inferred_links(),
            self.topological_classifier().classify,
            self.validation,
        )

    def class_links(self, class_name: str) -> List[LinkKey]:
        """All inferred links of one regional or topological class."""
        regional = self.regional_classifier()
        topological = self.topological_classifier()
        out = []
        for key in self.inferred_links():
            if (
                regional.classify(key) == class_name
                or topological.classify(key) == class_name
            ):
                out.append(key)
        return out

    def validation_table(
        self, algorithm: str, min_class_links: Optional[int] = None
    ) -> ValidationTable:
        """Tables 1-3 for one algorithm."""
        if min_class_links is None:
            # The paper cuts classes below 500 validated links on a
            # ~44k-link validation set; scale proportionally.
            min_class_links = max(10, len(self.validation) // 90)
        return build_table(
            algorithm=algorithm,
            inferred=self.infer(algorithm),
            validation=self.validation,
            classifiers=[
                self.regional_classifier().classify,
                self.topological_classifier().classify,
            ],
            evaluation_links=self.inferred_links(),
            min_class_links=min_class_links,
        )

    def imbalance_heatmaps(
        self,
        metric: str,
        algorithm: str = "asrank",
        caps: Optional[Tuple[float, float]] = None,
    ) -> ImbalanceHeatmaps:
        """Figures 3 and 7-9 for the TR° links.

        ``caps`` overrides the paper's catch-all bin edges — useful for
        rendering at simulator scale, where the synthetic Internet's
        degrees are an order of magnitude below the real ones.
        """
        topological = self.topological_classifier()
        links = [
            key
            for key in self.inferred_links()
            if topological.classify(key) == "TR°"
        ]
        values = metric_values(metric, self.corpus, rels=self.infer(algorithm))
        skip = None
        if metric == "ppdc_no_vp":
            vps = self.corpus.vantage_points

            def skip(key: LinkKey) -> bool:
                return key[0] in vps or key[1] in vps

        return build_heatmaps(
            metric=metric,
            links=links,
            values=values,
            validation=self.validation,
            caps=caps,
            skip_links=skip,
        )

    def case_study(
        self, algorithm: str = "asrank", class_name: str = "T1-TR"
    ) -> CaseStudyResult:
        """§6.1 for one algorithm and class."""
        return run_case_study(
            topology=self.topology,
            corpus=self.corpus,
            communities=self.communities,
            inferred=self.infer(algorithm),
            validation=self.validation,
            class_links=self.class_links(class_name),
            clique=self.algorithm("asrank").clique_ or [self.topology.cogent_asn],
        )


def build_scenario(
    config: Optional[ScenarioConfig] = None,
    multi_label_policy: MultiLabelPolicy = MultiLabelPolicy.IGNORE,
    *,
    workers: int = 0,
    cache=None,
) -> Scenario:
    """Run the full pipeline for ``config`` (default: paper scale).

    ``workers`` shards the propagation fan-out across that many worker
    processes (0 = serial, negative/None = CPU count).  ``cache``
    enables the content-addressed artifact cache: ``True`` for the
    default root (``$REPRO_CACHE_DIR`` or ``~/.cache/repro``), a path,
    or an :class:`~repro.pipeline.cache.ArtifactCache` instance.  On a
    warm cache the corpus and cleaned validation set are loaded instead
    of recomputed — propagation is skipped entirely — and inference
    results round-trip through the cache as they are requested.  Both
    knobs are pure execution policy: every artifact is byte-identical
    to a serial, uncached build (the differential tests in
    ``tests/pipeline/`` enforce this).
    """
    if config is None:
        config = ScenarioConfig.default()
    config.validate()
    cache_obj = resolve_cache(cache)
    topology = generate_topology(config)
    # The cheap measurement artefacts are always rebuilt (deterministic
    # labelled RNG streams); only the expensive propagation product and
    # its derivatives go through the cache.
    vps, communities, strippers = measurement_setup(topology, config)
    key = cache_obj.scenario_key(config) if cache_obj is not None else None
    corpus = None
    corpus_from_cache = False
    if cache_obj is not None:
        corpus = cache_obj.load_corpus(key)
        corpus_from_cache = corpus is not None
    if corpus is None:
        if cache_obj is None:
            corpus = collect_rounds(
                topology, config, vps, communities, strippers, workers=workers
            )
        else:
            # Cross-process single flight: take the entry's advisory
            # lock so concurrent cold builders of the same key wait for
            # one writer, then re-check the cache — the lock holder may
            # have published while we queued.  A lock timeout degrades
            # to a stampede, which the cache's unique-tmp-name atomic
            # publication keeps safe (just not cheap).
            with cache_obj.entry_lock(key):
                corpus = cache_obj.load_corpus(key)
                if corpus is not None:
                    corpus_from_cache = True
                else:
                    corpus = collect_rounds(
                        topology, config, vps, communities, strippers,
                        workers=workers,
                    )
                    cache_obj.store_corpus(key, corpus, config)
    raw: Optional[CompiledValidation] = None
    cleaned = None
    if corpus_from_cache:
        cleaned = cache_obj.load_validation(key, multi_label_policy)
    if cleaned is None:
        raw = compile_validation(topology, corpus, communities, config)
        cleaned = clean_validation(
            raw.data, topology.orgs, policy=multi_label_policy
        )
        if cache_obj is not None:
            cache_obj.store_validation(key, multi_label_policy, cleaned, config)
    return Scenario(
        config=config,
        topology=topology,
        corpus=corpus,
        vantage_points=vps,
        communities=communities,
        strippers=strippers,
        validation=cleaned,
        workers=workers,
        cache=cache_obj,
        cache_key=key,
        corpus_from_cache=corpus_from_cache,
        _raw_validation=raw,
    )


@lru_cache(maxsize=2)
def default_scenario() -> Scenario:
    """The cached paper-scale scenario shared by the benchmarks."""
    return build_scenario(ScenarioConfig.default())


@lru_cache(maxsize=2)
def small_scenario(seed: int = 7) -> Scenario:
    """The cached test-scale scenario shared by the test suite."""
    return build_scenario(ScenarioConfig.small(seed=seed))
