"""``python -m repro`` — the console script without installation.

Delegates straight to :func:`repro.cli.main`, so every subcommand
(``figures``, ``table``, ``serve``, ``cache`` ...) works from a plain
checkout with ``PYTHONPATH=src``.
"""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
