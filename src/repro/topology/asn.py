"""Autonomous System Number (ASN) model.

Implements the parts of the IANA AS-number registry that the paper's
cleaning step (§4.2) depends on:

* **AS_TRANS** (23456) — the placeholder ASN used to represent 32-bit
  ASNs towards devices that only speak 16-bit BGP.  It never identifies
  a real network, so any "relationship" with it is spurious.
* **Reserved ASNs** — ranges reserved for documentation, private use,
  and future use (RFC 1930, RFC 5398, RFC 6996, RFC 7300, plus IANA
  reserved blocks).  These should never appear in public routing nor in
  validation data.

The ranges below follow the IANA "Autonomous System (AS) Numbers"
registry as of the paper's snapshot.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

AS_TRANS = 23456
"""The 16-bit placeholder for 32-bit ASNs (RFC 6793)."""

MAX_ASN_16BIT = 65535
MAX_ASN_32BIT = 4294967295

#: Inclusive (low, high) reserved ASN ranges, excluding AS_TRANS which is
#: tracked separately because the paper treats it as its own category.
RESERVED_RANGES: Tuple[Tuple[int, int], ...] = (
    (0, 0),  # reserved, RFC 7607
    (64198, 64495),  # IANA reserved
    (64496, 64511),  # documentation, RFC 5398
    (64512, 65534),  # private use, RFC 6996
    (65535, 65535),  # last 16-bit, RFC 7300
    (65536, 65551),  # documentation, RFC 5398
    (65552, 131071),  # IANA reserved
    (4200000000, 4294967294),  # private use, RFC 6996
    (4294967295, 4294967295),  # last 32-bit, RFC 7300
)


def is_as_trans(asn: int) -> bool:
    """True iff ``asn`` is AS_TRANS (23456)."""
    return asn == AS_TRANS


def is_reserved(asn: int) -> bool:
    """True iff ``asn`` falls in an IANA reserved/private/documentation
    range (AS_TRANS is *not* counted as reserved here)."""
    for low, high in RESERVED_RANGES:
        if low <= asn <= high:
            return True
    return False


def is_routable(asn: int) -> bool:
    """True iff ``asn`` may legitimately appear in the public DFZ."""
    if asn < 0 or asn > MAX_ASN_32BIT:
        return False
    return not is_reserved(asn) and not is_as_trans(asn)


def is_32bit_only(asn: int) -> bool:
    """True iff ``asn`` cannot be expressed in a 16-bit field."""
    return asn > MAX_ASN_16BIT


def validate_asn(asn: int) -> int:
    """Return ``asn`` unchanged if it is a syntactically valid ASN.

    Raises
    ------
    ValueError
        If ``asn`` is negative or exceeds the 32-bit space.
    """
    if not isinstance(asn, int) or isinstance(asn, bool):
        raise ValueError(f"ASN must be an int, got {type(asn).__name__}")
    if asn < 0 or asn > MAX_ASN_32BIT:
        raise ValueError(f"ASN out of range: {asn}")
    return asn


def asdot(asn: int) -> str:
    """Format an ASN in ASDOT notation (RFC 5396), e.g. ``196608`` ->
    ``"3.0"``.  16-bit ASNs render as plain integers."""
    validate_asn(asn)
    if asn <= MAX_ASN_16BIT:
        return str(asn)
    return f"{asn >> 16}.{asn & 0xFFFF}"


def parse_asdot(text: str) -> int:
    """Parse plain or ASDOT notation into an integer ASN."""
    text = text.strip()
    if "." in text:
        high_s, low_s = text.split(".", 1)
        high, low = int(high_s), int(low_s)
        if not 0 <= high <= MAX_ASN_16BIT or not 0 <= low <= MAX_ASN_16BIT:
            raise ValueError(f"invalid ASDOT notation: {text!r}")
        return validate_asn((high << 16) | low)
    return validate_asn(int(text))


def routable_asns(candidates: Iterable[int]) -> List[int]:
    """Filter an iterable down to publicly routable ASNs."""
    return [asn for asn in candidates if is_routable(asn)]
