"""External AS classification lists (Tier-1 and hypergiants).

The paper refines its Stub/Transit topological classification with two
*external* lists:

* a **Tier-1 list from Wikipedia**, which "largely overlaps with the set
  of clique ASes inferred by ASRank" — i.e. it is close to, but not
  identical with, the true provider-free clique;
* the **hypergiant list of Böttger et al. (2018)**, derived from
  PeeringDB.

Because both lists are curated by third parties, the simulator emits
them with controlled imperfection: the Tier-1 list may miss a genuine
clique member and may include a very large transit AS that is not
actually provider-free.  The analysis layer consumes only these lists —
never the ground truth — mirroring the paper's methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence

import numpy as np


@dataclass(frozen=True)
class ExternalLists:
    """The two curated AS lists used for topological classification."""

    tier1: FrozenSet[int]
    hypergiants: FrozenSet[int]

    def classify_hint(self, asn: int) -> str:
        """"T1", "H", or "" — the precedence used by the paper is
        hypergiant first (H beats T1 beats transit/stub)."""
        if asn in self.hypergiants:
            return "H"
        if asn in self.tier1:
            return "T1"
        return ""


def curate_lists(
    rng: np.random.Generator,
    true_clique: Sequence[int],
    true_hypergiants: Sequence[int],
    large_transit: Sequence[int],
    tier1_miss_prob: float = 0.06,
    tier1_extra_prob: float = 0.02,
) -> ExternalLists:
    """Produce the imperfect third-party lists from ground truth.

    Parameters
    ----------
    rng:
        Stream for the curation noise.
    true_clique:
        Ground-truth provider-free clique ASNs.
    true_hypergiants:
        Ground-truth hypergiant ASNs (the Böttger list is taken to be
        accurate — it is methodologically derived, not crowd-edited).
    large_transit:
        Candidates for spurious Tier-1 list entries.
    tier1_miss_prob:
        Per-AS probability that Wikipedia misses a clique member.
    tier1_extra_prob:
        Per-AS probability that a large transit provider is incorrectly
        listed as Tier-1.
    """
    tier1: List[int] = []
    for asn in true_clique:
        if rng.random() >= tier1_miss_prob:
            tier1.append(asn)
    if not tier1 and true_clique:
        # A Tier-1 list that lost every entry is no list at all; keep
        # at least one member so downstream classification stays sane.
        tier1.append(sorted(true_clique)[0])
    for asn in large_transit:
        if rng.random() < tier1_extra_prob:
            tier1.append(asn)
    return ExternalLists(
        tier1=frozenset(tier1),
        hypergiants=frozenset(true_hypergiants),
    )
