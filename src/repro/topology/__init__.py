"""Synthetic AS-level topology substrate (systems S1-S3 of DESIGN.md).

Public surface:

* :mod:`repro.topology.asn` — ASN arithmetic, reserved ranges, AS_TRANS;
* :mod:`repro.topology.regions` — RIR regions and the two-layer
  ASN-to-region mapping (IANA blocks refined by delegations);
* :mod:`repro.topology.graph` — the ground-truth AS graph;
* :mod:`repro.topology.orgs` — AS-to-Organisation (sibling) model;
* :mod:`repro.topology.ixp` — IXP registry;
* :mod:`repro.topology.external_lists` — curated Tier-1/hypergiant lists;
* :mod:`repro.topology.generator` — the scenario topology generator.
"""

from repro.topology.asn import AS_TRANS, is_as_trans, is_reserved, is_routable
from repro.topology.external_lists import ExternalLists, curate_lists
from repro.topology.generator import Topology, TopologyGenerator, generate_topology
from repro.topology.graph import ASGraph, ASNode, Link, RelType, Role, link_key
from repro.topology.ixp import IXP, IXPRegistry
from repro.topology.orgs import Organisation, OrgMap
from repro.topology.regions import Region, RegionMap

__all__ = [
    "AS_TRANS",
    "is_as_trans",
    "is_reserved",
    "is_routable",
    "ExternalLists",
    "curate_lists",
    "Topology",
    "TopologyGenerator",
    "generate_topology",
    "ASGraph",
    "ASNode",
    "Link",
    "RelType",
    "Role",
    "link_key",
    "IXP",
    "IXPRegistry",
    "Organisation",
    "OrgMap",
    "Region",
    "RegionMap",
]
