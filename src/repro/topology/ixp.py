"""Internet Exchange Point (IXP) model.

IXPs drive *where* peering links form: they are regional by design
("keep local traffic local", §2 of the paper) and most of their members
interconnect with other members of the same IXP.  The topology generator
creates per-region IXPs, assigns members, and sources the bulk of its
P2P links from co-membership.

IXP membership is also one of the Appendix C candidate features (#10:
number of common IXPs of a link's endpoints), so the registry offers the
corresponding queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from repro.topology.regions import Region


@dataclass
class IXP:
    """One exchange point: an identifier, a home region, and members."""

    ixp_id: int
    name: str
    region: Region
    members: Set[int] = field(default_factory=set)

    def add_member(self, asn: int) -> None:
        self.members.add(asn)

    @property
    def size(self) -> int:
        return len(self.members)


class IXPRegistry:
    """All IXPs of a scenario, indexed by id, region, and member."""

    def __init__(self) -> None:
        self._ixps: Dict[int, IXP] = {}
        self._by_member: Dict[int, Set[int]] = {}

    def add_ixp(self, ixp: IXP) -> None:
        if ixp.ixp_id in self._ixps:
            raise ValueError(f"IXP {ixp.ixp_id} already present")
        self._ixps[ixp.ixp_id] = ixp
        for member in ixp.members:
            self._by_member.setdefault(member, set()).add(ixp.ixp_id)

    def join(self, asn: int, ixp_id: int) -> None:
        """Add an AS to an IXP's member list."""
        self._ixps[ixp_id].add_member(asn)
        self._by_member.setdefault(asn, set()).add(ixp_id)

    def ixps(self) -> Iterable[IXP]:
        return self._ixps.values()

    def __len__(self) -> int:
        return len(self._ixps)

    def ixp(self, ixp_id: int) -> IXP:
        return self._ixps[ixp_id]

    def in_region(self, region: Region) -> List[IXP]:
        return [ixp for ixp in self._ixps.values() if ixp.region is region]

    def memberships_of(self, asn: int) -> Set[int]:
        """IXP ids the AS is a member of."""
        return set(self._by_member.get(asn, set()))

    def common_ixps(self, a: int, b: int) -> Set[int]:
        """IXPs where both ASes are present (Appendix C feature #10)."""
        return self.memberships_of(a) & self.memberships_of(b)

    def colocated(self, a: int, b: int) -> bool:
        """True iff the ASes share at least one IXP."""
        memberships = self._by_member.get(a)
        if not memberships:
            return False
        other = self._by_member.get(b)
        return bool(other) and not memberships.isdisjoint(other)
