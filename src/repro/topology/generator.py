"""Synthetic Internet topology generator.

Builds a ground-truth AS-level Internet whose *bias-generating
mechanisms* match the ones the paper measures:

* a provider-free Tier-1 **clique** concentrated in the ARIN/RIPE
  regions, fully meshed with P2P links;
* three **transit tiers** below it, acquiring providers with regional
  preference (``provider_region_matrix``) and preferential attachment,
  so transit degrees are heavy-tailed;
* a large population of **stubs** (plus a handful of special-business
  stubs — research networks, anycast DNS operators, CDNs and cloud
  on-ramps — that peer directly with Tier-1s, the ground truth behind
  the paper's S-T1 findings);
* **hypergiants** with very large, region-spanning peering fan-out;
* **IXPs** that keep the bulk of P2P links region-internal;
* **partial-transit** customers of a designated Cogent-like clique
  member (AS174), reproducing the §6.1 case-study mechanism;
* **hybrid** links and **sibling** (S2S) links that later contaminate
  the validation data exactly as §4.2 describes.

The generator is deterministic given a :class:`~repro.config.ScenarioConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

if TYPE_CHECKING:  # imported lazily to avoid a config <-> topology cycle
    from repro.config import ScenarioConfig, TopologyConfig
from repro.topology.asn import MAX_ASN_16BIT, is_routable
from repro.topology.external_lists import ExternalLists, curate_lists
from repro.topology.graph import ASGraph, ASNode, Link, RelType, Role, link_key
from repro.topology.ixp import IXP, IXPRegistry
from repro.topology.orgs import Organisation, OrgMap
from repro.topology.regions import Region, RegionMap
from repro.utils.rng import child_rng, weighted_choice

#: Real-world-flavoured ASNs for the clique, assigned in order per
#: region.  AS174 (the Cogent-like member) is always the designated
#: partial-transit-heavy provider.
_CLIQUE_ASN_POOL: Dict[Region, Tuple[int, ...]] = {
    Region.ARIN: (174, 701, 1239, 2828, 3356, 3549, 6461, 7018, 209, 3561),
    Region.RIPE: (1299, 3257, 3320, 5511, 6762, 6830, 9002, 12956),
    Region.APNIC: (2914, 6453, 4637, 4134),
    Region.LACNIC: (26615,),
    Region.AFRINIC: (37100,),
}

#: Business types used to diversify stubs (§6: the S-T1 errors stem from
#: "the broad aggregation of many diverse business models into a single
#: Stub class").
SPECIAL_BUSINESS_TYPES: Tuple[str, ...] = (
    "research",
    "anycast-dns",
    "cdn",
    "cloud",
)

_ORDINARY_BUSINESS_TYPES: Tuple[str, ...] = ("enterprise", "eyeball")

#: Above this AS count the generator registers the overflow 32-bit
#: blocks (the base blocks cannot hold ~100k ASes) and the 16-bit
#: occupancy spill kicks in.  Small/paper-scale scenarios never reach
#: the threshold, so their RNG draw sequences — and hence every golden
#: artifact — are untouched.
_SCALE_THRESHOLD = 20000

#: Extra per-region 32-bit blocks for 100k-AS-class scenarios; disjoint
#: from the base blocks and from every reserved range.
_OVERFLOW_BLOCKS_32: Dict[Region, Tuple[int, int]] = {
    Region.ARIN: (400000, 499999),
    Region.RIPE: (500000, 699999),
    Region.APNIC: (700000, 799999),
    Region.LACNIC: (800000, 899999),
    Region.AFRINIC: (900000, 999999),
}


@dataclass
class Topology:
    """Everything the generator produces for one scenario."""

    graph: ASGraph
    orgs: OrgMap
    ixps: IXPRegistry
    region_map: RegionMap
    external_lists: ExternalLists
    cogent_asn: int
    special_stubs: List[int] = field(default_factory=list)

    def stats(self) -> Dict[str, int]:
        """Combined size statistics (graph + registries)."""
        stats = dict(self.graph.stats())
        stats["n_orgs"] = len(self.orgs)
        stats["n_ixps"] = len(self.ixps)
        stats["n_tier1_listed"] = len(self.external_lists.tier1)
        stats["n_hypergiants_listed"] = len(self.external_lists.hypergiants)
        return stats


class TopologyGenerator:
    """Stateful builder; call :meth:`generate` once per instance."""

    def __init__(self, config: ScenarioConfig) -> None:
        config.validate()
        self.config = config
        self.topo_cfg: TopologyConfig = config.topology
        self._rng_asn = child_rng(config.seed, "topology.asn")
        self._rng_roles = child_rng(config.seed, "topology.roles")
        self._rng_links = child_rng(config.seed, "topology.links")
        self._rng_orgs = child_rng(config.seed, "topology.orgs")
        self._rng_ixp = child_rng(config.seed, "topology.ixp")
        self._rng_lists = child_rng(config.seed, "topology.lists")
        self._used_asns: Set[int] = set()
        self.graph = ASGraph()
        self.region_map = RegionMap()
        self.orgs = OrgMap()
        self.ixps = IXPRegistry()
        self._by_role: Dict[Role, List[int]] = {role: [] for role in Role}
        self._by_region: Dict[Region, List[int]] = {r: [] for r in Region}
        self.cogent_asn: int = _CLIQUE_ASN_POOL[Region.ARIN][0]
        self.special_stubs: List[int] = []

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def generate(self) -> Topology:
        """Build and return the full topology."""
        self._build_region_blocks()
        self._create_ases()
        self._build_link_pools()
        self._create_orgs()
        self._link_clique()
        self._link_transit_hierarchy()
        self._create_ixps()
        self._link_peering()
        self._link_special_stubs()
        self._link_hypergiants()
        self._mark_partial_transit()
        self._mark_hybrid_links()
        self._link_siblings()
        external = curate_lists(
            self._rng_lists,
            true_clique=self._by_role[Role.CLIQUE],
            true_hypergiants=self._by_role[Role.HYPERGIANT],
            large_transit=self._by_role[Role.LARGE_TRANSIT],
        )
        return Topology(
            graph=self.graph,
            orgs=self.orgs,
            ixps=self.ixps,
            region_map=self.region_map,
            external_lists=external,
            cogent_asn=self.cogent_asn,
            special_stubs=list(self.special_stubs),
        )

    # ------------------------------------------------------------------
    # ASN space and region blocks
    # ------------------------------------------------------------------
    def _build_region_blocks(self) -> None:
        """Register synthetic IANA initial-assignment blocks.

        Each region receives one large 16-bit block and one 32-bit
        block; the exact bounds are arbitrary but stable, disjoint, and
        big enough for any scenario size.
        """
        blocks_16 = {
            Region.ARIN: (1000, 9999),
            Region.RIPE: (12000, 21999),
            Region.APNIC: (23000, 23455),  # stops short of AS_TRANS
            Region.LACNIC: (27000, 28999),
            Region.AFRINIC: (36000, 37999),
        }
        blocks_16_extra = {
            Region.APNIC: (38000, 45999),
            Region.RIPE: (47000, 52999),
            Region.LACNIC: (61000, 61999),
        }
        blocks_32 = {
            Region.ARIN: (393000, 399999),
            Region.RIPE: (196608, 215999),
            Region.APNIC: (131072, 141999),
            Region.LACNIC: (262144, 273999),
            Region.AFRINIC: (327680, 329999),
        }
        for region, (low, high) in blocks_16.items():
            self.region_map.add_iana_block(low, high, region)
        for region, (low, high) in blocks_16_extra.items():
            self.region_map.add_iana_block(low, high, region)
        for region, (low, high) in blocks_32.items():
            self.region_map.add_iana_block(low, high, region)
        self._blocks_16: Dict[Region, List[Tuple[int, int]]] = {}
        for region in Region:
            ranges = [blocks_16[region]]
            if region in blocks_16_extra:
                ranges.append(blocks_16_extra[region])
            self._blocks_16[region] = ranges
        self._blocks_32 = {r: [blocks_32[r]] for r in Region}
        if self.topo_cfg.n_ases > _SCALE_THRESHOLD:
            for region, (low, high) in _OVERFLOW_BLOCKS_32.items():
                self.region_map.add_iana_block(low, high, region)
                self._blocks_32[region].append((low, high))
        # 16-bit occupancy tracking: rejection sampling degrades as a
        # block fills, and at 100k-AS scale the 16-bit demand simply
        # exceeds the space.  Past ~70% occupancy the draw spills to the
        # region's (ample) 32-bit blocks.
        self._cap_16 = {
            r: sum(high - low + 1 for low, high in ranges)
            for r, ranges in self._blocks_16.items()
        }
        self._alloc_16 = {r: 0 for r in Region}
        # The clique pool ASNs live outside the synthetic blocks; pin
        # them to their intended regions via explicit delegations.
        for region, pool in _CLIQUE_ASN_POOL.items():
            for asn in pool:
                self.region_map.add_delegation(asn, region)

    def _draw_asn(self, region: Region, want_32bit: bool) -> int:
        """Draw an unused ASN from the region's block(s)."""
        if not want_32bit and self._alloc_16[region] * 10 >= self._cap_16[region] * 7:
            want_32bit = True  # 16-bit block ~70% full: spill to 32-bit
        if not want_32bit:
            self._alloc_16[region] += 1
        ranges = self._blocks_32[region] if want_32bit else self._blocks_16[region]
        for _ in range(10000):
            low, high = ranges[int(self._rng_asn.integers(0, len(ranges)))]
            asn = int(self._rng_asn.integers(low, high + 1))
            if asn not in self._used_asns and is_routable(asn):
                self._used_asns.add(asn)
                return asn
        raise RuntimeError(f"ASN block for {region} exhausted")

    # ------------------------------------------------------------------
    # AS creation
    # ------------------------------------------------------------------
    def _region_counts(self) -> Dict[Region, int]:
        """Number of ordinary (non-clique, non-hypergiant) ASes per
        region, honouring ``region_shares`` with largest-remainder
        rounding."""
        cfg = self.topo_cfg
        n_special = sum(cfg.clique_per_region.values()) + sum(
            cfg.hypergiants_per_region.values()
        )
        n_ordinary = cfg.n_ases - n_special
        if n_ordinary <= 0:
            raise ValueError("n_ases too small for the configured clique")
        raw = {r: cfg.region_shares[r] * n_ordinary for r in Region}
        counts = {r: int(raw[r]) for r in Region}
        leftovers = sorted(Region, key=lambda r: raw[r] - counts[r], reverse=True)
        deficit = n_ordinary - sum(counts.values())
        for region in leftovers[:deficit]:
            counts[region] += 1
        return counts

    def _add_node(self, region: Region, role: Role, asn: Optional[int] = None,
                  business_type: str = "enterprise") -> int:
        if asn is None:
            want_32bit = (
                role is Role.STUB
                and self._rng_asn.random() < self.topo_cfg.asn_32bit_share
            )
            asn = self._draw_asn(region, want_32bit)
        else:
            self._used_asns.add(asn)
        node = ASNode(asn=asn, region=region, role=role, business_type=business_type)
        # Heavy-tailed prefix/address footprints per role; these feed the
        # Appendix C per-link features (#2-#5), not the routing itself.
        prefix_scale = {
            Role.CLIQUE: 200.0,
            Role.LARGE_TRANSIT: 80.0,
            Role.MID_TRANSIT: 25.0,
            Role.SMALL_TRANSIT: 8.0,
            Role.HYPERGIANT: 60.0,
            Role.STUB: 2.0,
        }[role]
        node.n_prefixes = max(1, int(self._rng_roles.lognormal(0.0, 1.0) * prefix_scale))
        node.n_addresses = node.n_prefixes * 256 * int(
            self._rng_roles.integers(1, 16)
        )
        # Behavioural flags for Appendix C feature #12: MANRS membership
        # is common among well-run transit networks, serial hijacking is
        # a rare stub/small-transit phenomenon (Testart et al. 2019).
        manrs_prob = 0.25 if role.is_transit else 0.04
        node.manrs_member = bool(self._rng_roles.random() < manrs_prob)
        if not node.manrs_member and role in (Role.STUB, Role.SMALL_TRANSIT):
            node.serial_hijacker = bool(self._rng_roles.random() < 0.004)
        self.graph.add_as(node)
        self._by_role[role].append(asn)
        self._by_region[region].append(asn)
        return asn

    def _create_ases(self) -> None:
        cfg = self.topo_cfg
        # Clique members get their real-world-flavoured ASNs.
        for region, count in cfg.clique_per_region.items():
            pool = _CLIQUE_ASN_POOL[region]
            if count > len(pool):
                raise ValueError(
                    f"clique pool for {region} has {len(pool)} ASNs, "
                    f"need {count}"
                )
            for asn in pool[:count]:
                self._add_node(region, Role.CLIQUE, asn=asn)
        for region, count in cfg.hypergiants_per_region.items():
            for _ in range(count):
                self._add_node(region, Role.HYPERGIANT, business_type="cdn")
        counts = self._region_counts()
        for region, n_region in counts.items():
            n_large = int(round(n_region * cfg.large_transit_share))
            n_mid = int(round(n_region * cfg.mid_transit_share))
            n_small = int(round(n_region * cfg.small_transit_share))
            n_stub = n_region - n_large - n_mid - n_small
            for _ in range(n_large):
                self._add_node(region, Role.LARGE_TRANSIT)
            for _ in range(n_mid):
                self._add_node(region, Role.MID_TRANSIT)
            for _ in range(n_small):
                self._add_node(region, Role.SMALL_TRANSIT)
            for _ in range(n_stub):
                business = str(
                    weighted_choice(
                        self._rng_roles, _ORDINARY_BUSINESS_TYPES, [0.7, 0.3]
                    )
                )
                self._add_node(region, Role.STUB, business_type=business)
        self._apply_transfers()

    def _apply_transfers(self) -> None:
        """Move a small share of ASNs between regions (inter-RIR
        transfers); the delegation file refinement must catch these."""
        cfg = self.topo_cfg
        candidates = [
            n for n in self.graph.nodes() if n.role in (Role.STUB, Role.SMALL_TRANSIT)
        ]
        n_transfers = int(len(candidates) * cfg.inter_rir_transfer_share)
        if n_transfers == 0:
            return
        chosen = self._rng_asn.choice(len(candidates), size=n_transfers, replace=False)
        regions = list(Region)
        for idx in chosen:
            node = candidates[int(idx)]
            options = [r for r in regions if r is not node.region]
            new_region = options[int(self._rng_asn.integers(0, len(options)))]
            self._by_region[node.region].remove(node.asn)
            node.region = new_region
            self._by_region[new_region].append(node.asn)
            self.region_map.transfer(node.asn, new_region)

    # ------------------------------------------------------------------
    # link-formation pools
    # ------------------------------------------------------------------
    def _build_link_pools(self) -> None:
        """Precompute the static pools the linking stages draw from.

        Roles and regions are final once :meth:`_create_ases` (which
        includes the inter-RIR transfers) has run, so the candidate
        lists the linking stages used to re-filter out of
        ``_by_role``/``_by_region`` on *every* provider pick can be
        built exactly once.  Pool contents and iteration order match
        the per-call list comprehensions they replace, and customer
        counts move into a dense float array so the preferential-
        attachment weights become one vectorized gather — the RNG draw
        sequence (and therefore every golden artifact) is unchanged.
        """
        self._cidx: Dict[int, int] = {
            asn: i for i, asn in enumerate(self.graph.asns())
        }
        self._counts = np.zeros(len(self._cidx), dtype=np.float64)
        provider_roles = (
            Role.CLIQUE, Role.LARGE_TRANSIT, Role.MID_TRANSIT,
            Role.SMALL_TRANSIT,
        )
        # (role, region) -> (pool list, dense-id array, cogent position);
        # the ``(role, None)`` entry is the all-regions fallback.
        self._provider_pools: Dict[
            Tuple[Role, Optional[Region]],
            Tuple[List[int], np.ndarray, Optional[int]],
        ] = {}
        for role in provider_roles:
            members = self._by_role[role]
            by_region: Dict[Region, List[int]] = {r: [] for r in Region}
            for asn in members:
                region = self.graph.node(asn).region
                assert region is not None
                by_region[region].append(asn)
            for region in Region:
                self._provider_pools[(role, region)] = self._pool_entry(
                    role, by_region[region]
                )
            self._provider_pools[(role, None)] = self._pool_entry(
                role, list(members)
            )
        # Per-region transit lists for the peering fallback (callers
        # must treat the returned pools as read-only).
        self._region_transit: Dict[Region, List[int]] = {}
        self._region_transit_set: Dict[Region, Set[int]] = {}
        for region in Region:
            transit = [
                a
                for a in self._by_region[region]
                if self.graph.node(a).role.is_transit
            ]
            self._region_transit[region] = transit
            self._region_transit_set[region] = set(transit)

    def _pool_entry(
        self, role: Role, pool: List[int]
    ) -> Tuple[List[int], np.ndarray, Optional[int]]:
        ids = np.array([self._cidx[a] for a in pool], dtype=np.int64)
        cogent_pos = None
        if role is Role.CLIQUE and self.cogent_asn in pool:
            cogent_pos = pool.index(self.cogent_asn)
        return pool, ids, cogent_pos

    # ------------------------------------------------------------------
    # organisations
    # ------------------------------------------------------------------
    def _create_orgs(self) -> None:
        cfg = self.topo_cfg
        asns = self.graph.asns()
        unassigned = set(asns)
        # Per-region unassigned views in ``_by_region`` order: dict keys
        # keep insertion order across removals, so the same-region
        # candidate list below matches the legacy per-lead scan of the
        # whole region (filtered by ``unassigned``) exactly, without
        # re-walking assigned ASes on every lead.
        open_by_region: Dict[Region, Dict[int, None]] = {
            r: dict.fromkeys(self._by_region[r]) for r in Region
        }
        org_counter = 0
        # Multi-AS organisations first: pick a lead AS, then pull in
        # 1..max_siblings-1 further ASes, preferably of the same region.
        n_multi = int(len(asns) * cfg.multi_as_org_share)
        leads = self._rng_orgs.choice(len(asns), size=min(n_multi, len(asns)), replace=False)
        for lead_idx in leads:
            lead = asns[int(lead_idx)]
            if lead not in unassigned:
                continue
            region = self.graph.node(lead).region
            n_extra = int(self._rng_orgs.integers(1, cfg.max_siblings_per_org))
            same_region = [a for a in open_by_region[region] if a != lead]
            members = [lead]
            for _ in range(n_extra):
                if not same_region:
                    break
                pick = same_region.pop(int(self._rng_orgs.integers(0, len(same_region))))
                members.append(pick)
            org_id = f"ORG-{org_counter:05d}"
            org_counter += 1
            org = Organisation(
                org_id=org_id,
                name=f"Org {org_counter}",
                country=region.abbreviation,
                asns=list(members),
            )
            self.orgs.add_org(org)
            for member in members:
                unassigned.discard(member)
                open_by_region[region].pop(member, None)
                self.graph.node(member).org_id = org_id
        # Everything else is a single-AS organisation.
        for asn in sorted(unassigned):
            region = self.graph.node(asn).region
            org_id = f"ORG-{org_counter:05d}"
            org_counter += 1
            self.orgs.add_org(
                Organisation(
                    org_id=org_id,
                    name=f"Org {org_counter}",
                    country=region.abbreviation if region else "ZZ",
                    asns=[asn],
                )
            )
            self.graph.node(asn).org_id = org_id

    # ------------------------------------------------------------------
    # links
    # ------------------------------------------------------------------
    def _link_clique(self) -> None:
        """Full P2P mesh among clique members."""
        clique = self._by_role[Role.CLIQUE]
        for i, a in enumerate(clique):
            for b in clique[i + 1 :]:
                lo, hi = link_key(a, b)
                self.graph.add_link(Link(provider=lo, customer=hi, rel=RelType.P2P))

    def _provider_candidates(self, role: Role) -> List[Tuple[Role, float]]:
        """Provider-tier mix per customer role (tier, weight)."""
        if role is Role.LARGE_TRANSIT:
            return [(Role.CLIQUE, 1.0)]
        if role is Role.MID_TRANSIT:
            return [(Role.LARGE_TRANSIT, 0.65), (Role.CLIQUE, 0.35)]
        if role is Role.SMALL_TRANSIT:
            return [
                (Role.MID_TRANSIT, 0.56),
                (Role.LARGE_TRANSIT, 0.36),
                (Role.CLIQUE, 0.08),
            ]
        if role is Role.HYPERGIANT:
            return [(Role.CLIQUE, 0.6), (Role.LARGE_TRANSIT, 0.4)]
        # Stubs buy transit everywhere, including directly from Tier-1s
        # (the S-T1 class of Figure 2 is mostly P2C for that reason;
        # real Tier-1s hold by far the largest direct customer bases,
        # which is also what makes transit degree a usable rank signal).
        return [
            (Role.CLIQUE, 0.18),
            (Role.LARGE_TRANSIT, 0.25),
            (Role.MID_TRANSIT, 0.31),
            (Role.SMALL_TRANSIT, 0.26),
        ]

    def _pick_provider(self, customer: int, provider_role: Role) -> Optional[int]:
        """Pick a provider of the given tier with regional preference
        and preferential attachment, avoiding duplicates/self."""
        cfg = self.topo_cfg
        customer_region = self.graph.node(customer).region
        assert customer_region is not None
        region_row = cfg.provider_region_matrix[customer_region]
        region = weighted_choice(
            self._rng_links,
            list(Region),
            [region_row[r] for r in Region],
        )
        # The tier mixes never offer a customer its own role, so the
        # precomputed pools need no per-call self-exclusion.
        customer_role = self.graph.node(customer).role
        assert customer_role is not provider_role
        pool, ids, cogent_pos = self._provider_pools[(provider_role, region)]
        if not pool:
            pool, ids, cogent_pos = self._provider_pools[(provider_role, None)]
        if not pool:
            return None
        # Preferential attachment; the Cogent-like AS is additionally
        # over-attractive to transit customers (Cogent's real-world
        # customer count is by far the clique's largest, which is what
        # concentrates the §6.1 target links on it).
        if provider_role is Role.CLIQUE:
            # Clique members get a multiplicative boost plus an additive
            # floor, so even the smaller Tier-1s accumulate the customer
            # bases that make transit degree a usable rank signal.
            weights = (self._counts[ids] + 10.0) * 3.0
            if cogent_pos is not None and customer_role.is_transit:
                weights[cogent_pos] *= 8.0
        else:
            weights = self._counts[ids] + 1.0
        for _ in range(8):
            choice = weighted_choice(self._rng_links, pool, weights)
            if not self.graph.has_link(customer, choice):
                return choice
        return None

    def _link_transit_hierarchy(self) -> None:
        """Give every non-clique AS its provider set (P2C links)."""
        cfg = self.topo_cfg
        order = (
            self._by_role[Role.LARGE_TRANSIT]
            + self._by_role[Role.MID_TRANSIT]
            + self._by_role[Role.SMALL_TRANSIT]
            + self._by_role[Role.HYPERGIANT]
            + self._by_role[Role.STUB]
        )
        counts = np.arange(1, 4)
        probs = np.asarray(cfg.provider_count_probs)
        probs = probs / probs.sum()
        for customer in order:
            role = self.graph.node(customer).role
            n_providers = int(self._rng_links.choice(counts, p=probs))
            if role in (Role.LARGE_TRANSIT, Role.MID_TRANSIT):
                n_providers = max(2, n_providers)
            tier_mix = self._provider_candidates(role)
            for _ in range(n_providers):
                tier = weighted_choice(
                    self._rng_links,
                    [t for t, _ in tier_mix],
                    [w for _, w in tier_mix],
                )
                provider = self._pick_provider(customer, tier)
                if provider is None:
                    continue
                self.graph.add_link(
                    Link(provider=provider, customer=customer, rel=RelType.P2C)
                )
                self._counts[self._cidx[provider]] += 1.0

    # ------------------------------------------------------------------
    # IXPs and peering
    # ------------------------------------------------------------------
    def _create_ixps(self) -> None:
        cfg = self.topo_cfg
        ixp_id = 0
        for region in Region:
            population = self._by_region[region]
            if not population:
                continue
            n_ixps = max(1, int(round(len(population) * cfg.ixps_per_1000_ases / 1000)))
            for i in range(n_ixps):
                ixp = IXP(
                    ixp_id=ixp_id,
                    name=f"{region.abbreviation}-IX-{i}",
                    region=region,
                )
                self.ixps.add_ixp(ixp)
                ixp_id += 1
        # Membership: transit networks and hypergiants join IXPs readily,
        # stubs rarely.  An AS mostly joins IXPs of its own region.
        join_prob = {
            Role.CLIQUE: 0.8,
            Role.LARGE_TRANSIT: 0.9,
            Role.MID_TRANSIT: 0.8,
            Role.SMALL_TRANSIT: 0.55,
            Role.HYPERGIANT: 0.95,
            Role.STUB: 0.1,
        }
        all_ixps = list(self.ixps.ixps())
        for node in self.graph.nodes():
            if self._rng_ixp.random() >= join_prob[node.role]:
                continue
            local = [x for x in all_ixps if x.region is node.region]
            remote = [x for x in all_ixps if x.region is not node.region]
            n_joins = 1 + int(self._rng_ixp.random() < 0.35)
            if node.role is Role.HYPERGIANT:
                n_joins = max(3, n_joins + 2)
            for _ in range(n_joins):
                use_local = local and (
                    not remote or self._rng_ixp.random() < cfg.peer_same_region_prob
                )
                pool = local if use_local else remote
                if not pool:
                    continue
                ixp = pool[int(self._rng_ixp.integers(0, len(pool)))]
                self.ixps.join(node.asn, ixp.ixp_id)

    def _try_peer(self, a: int, b: int) -> bool:
        """Create an (a, b) P2P link if none exists and it would not
        shadow a transit relationship."""
        if a == b or self.graph.has_link(a, b):
            return False
        lo, hi = link_key(a, b)
        self.graph.add_link(Link(provider=lo, customer=hi, rel=RelType.P2P))
        return True

    def _peer_pool(self, asn: int) -> List[int]:
        """Candidate peering partners: co-members at the AS's IXPs,
        falling back to same-region transit ASes."""
        partners: Set[int] = set()
        for ixp_id in self.ixps.memberships_of(asn):
            partners |= self.ixps.ixp(ixp_id).members
        partners.discard(asn)
        if partners:
            return sorted(partners)
        region = self.graph.node(asn).region
        pool = self._region_transit[region]
        if asn in self._region_transit_set[region]:
            return [a for a in pool if a != asn]
        return pool

    def _link_peering(self) -> None:
        """Bilateral peering among transit tiers and some stubs."""
        cfg = self.topo_cfg
        means = {
            Role.SMALL_TRANSIT: cfg.peers_mean_small,
            Role.MID_TRANSIT: cfg.peers_mean_mid,
            Role.LARGE_TRANSIT: cfg.peers_mean_large,
            Role.STUB: cfg.peers_mean_stub,
        }
        for role, mean in means.items():
            for asn in self._by_role[role]:
                n_peers = int(self._rng_links.poisson(mean))
                if n_peers == 0:
                    continue
                pool = self._peer_pool(asn)
                if not pool:
                    continue
                for _ in range(n_peers):
                    partner = pool[int(self._rng_links.integers(0, len(pool)))]
                    partner_role = self.graph.node(partner).role
                    if partner_role is Role.CLIQUE:
                        continue  # T1 peering is handled separately
                    if role is Role.STUB and partner_role is Role.STUB:
                        # Stub-stub peering (the S° class) is fine.
                        pass
                    self._try_peer(asn, partner)
        # Settlement-free peering between large/mid transits and
        # individual Tier-1s: the T1-TR class of Figure 2.
        clique = self._by_role[Role.CLIQUE]
        for asn in self._by_role[Role.LARGE_TRANSIT]:
            for t1 in clique:
                if self._rng_links.random() < cfg.t1_peering_prob_large:
                    self._try_peer(asn, t1)
        for asn in self._by_role[Role.MID_TRANSIT]:
            for t1 in clique:
                if self._rng_links.random() < cfg.t1_peering_prob_mid:
                    self._try_peer(asn, t1)

    def _link_special_stubs(self) -> None:
        """Create the special-business stubs that peer with Tier-1s."""
        cfg = self.topo_cfg
        stubs = self._by_role[Role.STUB]
        clique = self._by_role[Role.CLIQUE]
        if not stubs or not clique:
            return
        n_special = min(cfg.special_stub_count, len(stubs))
        chosen = self._rng_links.choice(len(stubs), size=n_special, replace=False)
        lo, hi = cfg.special_stub_t1_peers
        for idx in chosen:
            asn = stubs[int(idx)]
            node = self.graph.node(asn)
            node.business_type = SPECIAL_BUSINESS_TYPES[
                int(self._rng_links.integers(0, len(SPECIAL_BUSINESS_TYPES)))
            ]
            self.special_stubs.append(asn)
            n_t1 = int(self._rng_links.integers(lo, hi + 1))
            partners = self._rng_links.choice(
                len(clique), size=min(n_t1, len(clique)), replace=False
            )
            for pi in partners:
                self._try_peer(asn, clique[int(pi)])

    def _link_hypergiants(self) -> None:
        """Hypergiants peer very widely, across regions and tiers."""
        cfg = self.topo_cfg
        transits = (
            self._by_role[Role.LARGE_TRANSIT]
            + self._by_role[Role.MID_TRANSIT]
            + self._by_role[Role.SMALL_TRANSIT]
        )
        clique = self._by_role[Role.CLIQUE]
        stubs = self._by_role[Role.STUB]
        for hg in self._by_role[Role.HYPERGIANT]:
            n_peers = int(self._rng_links.poisson(cfg.peers_mean_hypergiant))
            for _ in range(n_peers):
                bucket = self._rng_links.random()
                if bucket < 0.12 and clique:
                    pool: Sequence[int] = clique
                elif bucket < 0.88 and transits:
                    pool = transits
                elif stubs:
                    pool = stubs
                else:
                    continue
                partner = pool[int(self._rng_links.integers(0, len(pool)))]
                self._try_peer(hg, partner)

    # ------------------------------------------------------------------
    # relationship refinements
    # ------------------------------------------------------------------
    def _mark_partial_transit(self) -> None:
        """Flag partial-transit P2C links (the Cogent mechanism).

        Only transit-AS customers of clique members are eligible: the
        case study concerns T1-TR links, where the customer announces
        its routes with a do-not-export-to-peers community and the
        provider honours it.
        """
        cfg = self.topo_cfg
        for link in self.graph.links():
            if link.rel is not RelType.P2C:
                continue
            provider_node = self.graph.node(link.provider)
            customer_node = self.graph.node(link.customer)
            if provider_node.role is not Role.CLIQUE:
                continue
            if not customer_node.role.is_transit:
                continue
            prob = (
                cfg.cogent_partial_transit_prob
                if link.provider == self.cogent_asn
                else cfg.clique_partial_transit_prob
            )
            if self._rng_links.random() < prob:
                link.partial_transit = True

    def _mark_hybrid_links(self) -> None:
        """Give a small share of transit-to-transit P2P links a
        PoP-dependent secondary P2C label (Giotsas et al. 2014)."""
        cfg = self.topo_cfg
        for link in self.graph.links():
            if link.rel is not RelType.P2P:
                continue
            node_a = self.graph.node(link.provider)
            node_b = self.graph.node(link.customer)
            if not (node_a.role.is_transit and node_b.role.is_transit):
                continue
            if node_a.role is Role.CLIQUE and node_b.role is Role.CLIQUE:
                continue
            if self._rng_links.random() < cfg.hybrid_link_prob:
                link.hybrid_secondary = RelType.P2C

    def _link_siblings(self) -> None:
        """Directly interconnect sibling ASes with S2S links."""
        cfg = self.topo_cfg
        for a, b in self.orgs.sibling_pairs():
            if self.graph.has_link(a, b):
                continue
            if self._rng_links.random() < cfg.sibling_link_prob:
                lo, hi = link_key(a, b)
                self.graph.add_link(Link(provider=lo, customer=hi, rel=RelType.S2S))


def generate_topology(config: ScenarioConfig) -> Topology:
    """Convenience wrapper: build the topology for ``config``."""
    return TopologyGenerator(config).generate()
