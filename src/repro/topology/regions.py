"""RIR service regions and the ASN-to-region mapping.

The paper maps each ASN to one of the five Regional Internet Registries
(AFRINIC, APNIC, ARIN, LACNIC, RIPE NCC) in two steps:

1. bootstrap from **IANA's list of initial 16-bit/32-bit ASN block
   assignments** — every ASN block was handed to exactly one RIR;
2. refine with the **daily delegation files** each RIR publishes
   (``delegated-<rir>-extended``), which capture later inter-RIR
   transfers.

This module provides the region enumeration, the paper's abbreviations
(AF, AP, AR, L, R), and :class:`RegionMap`, the two-layer mapping with
exactly that precedence (delegation beats IANA block).  The synthetic
IANA block table and delegation files are produced by
:mod:`repro.datasets.iana` and :mod:`repro.datasets.delegation`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.topology.asn import is_routable, validate_asn


class Region(enum.Enum):
    """The five RIR service regions, with the paper's abbreviations."""

    AFRINIC = "AF"
    APNIC = "AP"
    ARIN = "AR"
    LACNIC = "L"
    RIPE = "R"

    @property
    def abbreviation(self) -> str:
        """The paper's short code (AF, AP, AR, L, R)."""
        return self.value

    @classmethod
    def from_abbreviation(cls, abbr: str) -> "Region":
        for region in cls:
            if region.value == abbr:
                return region
        raise ValueError(f"unknown region abbreviation: {abbr!r}")

    @classmethod
    def from_name(cls, name: str) -> "Region":
        """Parse RIR names as they appear in delegation files
        (``afrinic``, ``apnic``, ``arin``, ``lacnic``, ``ripencc``)."""
        normalized = name.strip().lower()
        aliases = {
            "afrinic": cls.AFRINIC,
            "apnic": cls.APNIC,
            "arin": cls.ARIN,
            "lacnic": cls.LACNIC,
            "ripencc": cls.RIPE,
            "ripe": cls.RIPE,
            "ripe ncc": cls.RIPE,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown RIR name: {name!r}")
        return aliases[normalized]

    @property
    def registry_name(self) -> str:
        """The name used in delegation files."""
        return {
            Region.AFRINIC: "afrinic",
            Region.APNIC: "apnic",
            Region.ARIN: "arin",
            Region.LACNIC: "lacnic",
            Region.RIPE: "ripencc",
        }[self]


#: Stable ordering used throughout the analysis (lexicographic by
#: abbreviation, as the paper orders cross-region class names).
REGION_ORDER: Tuple[Region, ...] = (
    Region.AFRINIC,
    Region.APNIC,
    Region.ARIN,
    Region.LACNIC,
    Region.RIPE,
)


@dataclass
class RegionMap:
    """Two-layer ASN-to-region mapping (IANA blocks refined by
    delegations).

    Attributes
    ----------
    iana_blocks:
        List of ``(low, high, region)`` half-open-free inclusive ranges
        from the IANA initial-assignment table.
    delegations:
        Per-ASN overrides extracted from RIR delegation files; these
        capture inter-RIR transfers and therefore take precedence.
    """

    iana_blocks: List[Tuple[int, int, Region]] = field(default_factory=list)
    delegations: Dict[int, Region] = field(default_factory=dict)

    def add_iana_block(self, low: int, high: int, region: Region) -> None:
        """Register an IANA initial-assignment block."""
        validate_asn(low)
        validate_asn(high)
        if low > high:
            raise ValueError(f"empty block: [{low}, {high}]")
        for other_low, other_high, _ in self.iana_blocks:
            if low <= other_high and other_low <= high:
                raise ValueError(
                    f"block [{low}, {high}] overlaps existing "
                    f"[{other_low}, {other_high}]"
                )
        self.iana_blocks.append((low, high, region))

    def add_delegation(self, asn: int, region: Region) -> None:
        """Record a per-ASN delegation (wins over the IANA block)."""
        validate_asn(asn)
        self.delegations[asn] = region

    def lookup(self, asn: int) -> Optional[Region]:
        """Map an ASN to its service region.

        Returns ``None`` for reserved / AS_TRANS / unassigned ASNs — the
        paper discards links with such endpoints before the regional
        analysis.
        """
        if not is_routable(asn):
            return None
        if asn in self.delegations:
            return self.delegations[asn]
        for low, high, region in self.iana_blocks:
            if low <= asn <= high:
                return region
        return None

    def bulk_lookup(self, asns: Iterable[int]) -> Dict[int, Optional[Region]]:
        """Vector form of :meth:`lookup`."""
        return {asn: self.lookup(asn) for asn in asns}

    def transfer(self, asn: int, new_region: Region) -> None:
        """Model an inter-RIR resource transfer for ``asn``.

        Alias of :meth:`add_delegation`; exists to make scenario-building
        code read naturally.
        """
        self.add_delegation(asn, new_region)

    def coverage(self) -> int:
        """Number of ASNs covered by IANA blocks (for sanity checks)."""
        return sum(high - low + 1 for low, high, _ in self.iana_blocks)
