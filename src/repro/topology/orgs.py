"""Organisation (AS2Org) model.

CAIDA's AS-to-Organization dataset maps ASNs to the organisations that
operate them; two ASes under the same organisation are *siblings* and
must be ignored during relationship validation (§4.2 of the paper finds
210 sibling relationships in the validation data and 2800 among the
inferred links).

The simulator represents the dataset as a plain :class:`OrgMap`; the
textual CAIDA ``as2org`` file format is handled by
:mod:`repro.datasets.as2org`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple


@dataclass
class Organisation:
    """One organisation operating one or more ASes."""

    org_id: str
    name: str
    country: str
    asns: List[int] = field(default_factory=list)

    @property
    def is_multi_as(self) -> bool:
        return len(self.asns) > 1


class OrgMap:
    """Bidirectional ASN <-> organisation mapping."""

    def __init__(self) -> None:
        self._orgs: Dict[str, Organisation] = {}
        self._by_asn: Dict[int, str] = {}

    def add_org(self, org: Organisation) -> None:
        if org.org_id in self._orgs:
            raise ValueError(f"organisation {org.org_id} already present")
        self._orgs[org.org_id] = org
        for asn in org.asns:
            if asn in self._by_asn:
                raise ValueError(f"AS{asn} already mapped to {self._by_asn[asn]}")
            self._by_asn[asn] = org.org_id

    def assign(self, asn: int, org_id: str) -> None:
        """Attach one more ASN to an existing organisation."""
        if org_id not in self._orgs:
            raise KeyError(f"unknown organisation {org_id}")
        if asn in self._by_asn:
            raise ValueError(f"AS{asn} already mapped to {self._by_asn[asn]}")
        self._orgs[org_id].asns.append(asn)
        self._by_asn[asn] = org_id

    def org_of(self, asn: int) -> Optional[str]:
        """The org_id operating ``asn``, or ``None`` if unmapped."""
        return self._by_asn.get(asn)

    def org(self, org_id: str) -> Organisation:
        return self._orgs[org_id]

    def orgs(self) -> Iterable[Organisation]:
        return self._orgs.values()

    def __len__(self) -> int:
        return len(self._orgs)

    def are_siblings(self, a: int, b: int) -> bool:
        """True iff both ASNs are mapped and share an organisation.

        Unmapped ASNs are never siblings — exactly how applying the
        AS2Org dataset behaves on unknown ASNs.
        """
        org_a = self._by_asn.get(a)
        return org_a is not None and org_a == self._by_asn.get(b)

    def siblings_of(self, asn: int) -> Set[int]:
        """All other ASNs under the same organisation."""
        org_id = self._by_asn.get(asn)
        if org_id is None:
            return set()
        return {other for other in self._orgs[org_id].asns if other != asn}

    def sibling_pairs(self) -> List[Tuple[int, int]]:
        """Every unordered sibling ASN pair (for dataset statistics)."""
        pairs: List[Tuple[int, int]] = []
        for org in self._orgs.values():
            asns = sorted(org.asns)
            for i, a in enumerate(asns):
                for b in asns[i + 1 :]:
                    pairs.append((a, b))
        return pairs
