"""The AS-level graph with ground-truth business relationships.

This is the central substrate data structure.  A :class:`ASGraph` holds:

* one :class:`ASNode` per autonomous system (region, role in the
  hierarchy, owning organisation);
* one :class:`Link` per adjacency, carrying the **ground-truth**
  relationship.  Ground truth exists in the simulator because we build
  the Internet ourselves; every other view (visible links, inferred
  relationships, validation labels) is derived downstream and is
  deliberately partial or noisy.

Relationship model
------------------
The paper's three basic types are provider-to-customer (P2C),
settlement-free peering (P2P) and sibling (S2S).  Two refinements from
Giotsas et al. (2014), which the paper's §4.2 treats explicitly, are
also modelled:

* a **partial-transit** P2C link (``Link.partial_transit``): the
  provider exports the customer's routes to its own customers (and the
  customer itself) but *not* to its peers or providers.  This is the
  exact mechanism of the paper's §6.1 Cogent case study (community
  174:990).
* a **hybrid** link (``Link.hybrid_secondary``): the relationship
  differs across interconnection points; such links yield the
  multi-label validation entries of §4.2.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.topology.asn import validate_asn
from repro.topology.regions import Region


class Role(enum.Enum):
    """Position of an AS in the synthetic hierarchy.

    ``CLIQUE`` ASes are the provider-free Tier-1 core; the three transit
    tiers differ only in size and attachment behaviour; ``STUB`` ASes
    have no customers; ``HYPERGIANT`` ASes are large content providers
    with huge peering fan-out but little or no transit.
    """

    CLIQUE = "clique"
    LARGE_TRANSIT = "large_transit"
    MID_TRANSIT = "mid_transit"
    SMALL_TRANSIT = "small_transit"
    STUB = "stub"
    HYPERGIANT = "hypergiant"

    @property
    def is_transit(self) -> bool:
        """True for roles that (by construction) have customers."""
        return self in (
            Role.CLIQUE,
            Role.LARGE_TRANSIT,
            Role.MID_TRANSIT,
            Role.SMALL_TRANSIT,
        )


class RelType(enum.Enum):
    """Business relationship types, with CAIDA serial-1 encodings."""

    P2C = -1
    P2P = 0
    S2S = 1

    @property
    def code(self) -> int:
        """The integer used in CAIDA ``as-rel`` files."""
        return self.value

    @classmethod
    def from_code(cls, code: int) -> "RelType":
        for rel in cls:
            if rel.value == code:
                return rel
        raise ValueError(f"unknown relationship code: {code}")


@dataclass
class ASNode:
    """One autonomous system.

    Attributes
    ----------
    asn:
        The AS number.
    region:
        RIR service region; ``None`` models reserved/bogus ASNs that can
        appear in dirty validation data.
    role:
        Hierarchy role assigned by the generator.
    org_id:
        Owning organisation (AS2Org); two ASes sharing an ``org_id`` are
        siblings.
    business_type:
        Free-form refinement of stubs used by the S-T1 discussion of §6
        ("research", "anycast-dns", "cdn", "cloud", "eyeball",
        "enterprise").
    """

    asn: int
    region: Optional[Region]
    role: Role
    org_id: str = ""
    business_type: str = "enterprise"
    n_prefixes: int = 1
    n_addresses: int = 256
    manrs_member: bool = False
    serial_hijacker: bool = False

    def __post_init__(self) -> None:
        validate_asn(self.asn)
        if self.n_prefixes < 0 or self.n_addresses < 0:
            raise ValueError("prefix/address counts must be non-negative")


#: Canonical undirected link key: the smaller ASN first.
LinkKey = Tuple[int, int]


def link_key(a: int, b: int) -> LinkKey:
    """Canonical (smaller, larger) key for an undirected AS link."""
    if a == b:
        raise ValueError(f"self-loop link at AS{a}")
    return (a, b) if a < b else (b, a)


@dataclass
class Link:
    """One AS-level adjacency with its ground-truth relationship.

    For ``rel == P2C`` the direction matters: ``provider`` supplies
    transit to ``customer``.  For P2P and S2S the pair is unordered and
    ``provider``/``customer`` merely hold the canonical order.
    """

    provider: int
    customer: int
    rel: RelType
    partial_transit: bool = False
    hybrid_secondary: Optional[RelType] = None

    def __post_init__(self) -> None:
        validate_asn(self.provider)
        validate_asn(self.customer)
        if self.provider == self.customer:
            raise ValueError(f"self-loop link at AS{self.provider}")
        if self.partial_transit and self.rel is not RelType.P2C:
            raise ValueError("partial_transit only applies to P2C links")
        if self.hybrid_secondary is self.rel:
            raise ValueError("hybrid secondary label equals the primary label")

    @property
    def key(self) -> LinkKey:
        """Canonical undirected key."""
        return link_key(self.provider, self.customer)

    @property
    def is_hybrid(self) -> bool:
        """True when the link has a PoP-dependent secondary label."""
        return self.hybrid_secondary is not None

    def endpoints(self) -> Tuple[int, int]:
        """Both ASNs, provider (or canonical first) first."""
        return (self.provider, self.customer)

    def other(self, asn: int) -> int:
        """The endpoint that is not ``asn``."""
        if asn == self.provider:
            return self.customer
        if asn == self.customer:
            return self.provider
        raise ValueError(f"AS{asn} is not an endpoint of {self}")


class ASGraph:
    """Mutable AS-level topology with ground-truth relationships.

    The graph maintains directed adjacency sets per AS (providers,
    customers, peers, siblings) that are kept consistent with the link
    table; all queries used by the BGP simulator and the analysis layer
    are O(1) dictionary lookups.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, ASNode] = {}
        self._links: Dict[LinkKey, Link] = {}
        self._providers: Dict[int, Set[int]] = {}
        self._customers: Dict[int, Set[int]] = {}
        self._peers: Dict[int, Set[int]] = {}
        self._siblings: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_as(self, node: ASNode) -> None:
        """Insert an AS; rejects duplicate ASNs."""
        if node.asn in self._nodes:
            raise ValueError(f"AS{node.asn} already present")
        self._nodes[node.asn] = node
        self._providers[node.asn] = set()
        self._customers[node.asn] = set()
        self._peers[node.asn] = set()
        self._siblings[node.asn] = set()

    def add_link(self, link: Link) -> None:
        """Insert a link; both endpoints must exist and be unlinked."""
        for asn in link.endpoints():
            if asn not in self._nodes:
                raise KeyError(f"AS{asn} not in graph")
        if link.key in self._links:
            raise ValueError(f"link {link.key} already present")
        self._links[link.key] = link
        if link.rel is RelType.P2C:
            self._customers[link.provider].add(link.customer)
            self._providers[link.customer].add(link.provider)
        elif link.rel is RelType.P2P:
            self._peers[link.provider].add(link.customer)
            self._peers[link.customer].add(link.provider)
        else:  # S2S
            self._siblings[link.provider].add(link.customer)
            self._siblings[link.customer].add(link.provider)

    def remove_link(self, a: int, b: int) -> Link:
        """Remove and return the link between ``a`` and ``b``."""
        key = link_key(a, b)
        link = self._links.pop(key)
        if link.rel is RelType.P2C:
            self._customers[link.provider].discard(link.customer)
            self._providers[link.customer].discard(link.provider)
        elif link.rel is RelType.P2P:
            self._peers[link.provider].discard(link.customer)
            self._peers[link.customer].discard(link.provider)
        else:
            self._siblings[link.provider].discard(link.customer)
            self._siblings[link.customer].discard(link.provider)
        return link

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, asn: int) -> bool:
        return asn in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def node(self, asn: int) -> ASNode:
        """The :class:`ASNode` for ``asn`` (KeyError if absent)."""
        return self._nodes[asn]

    def nodes(self) -> Iterator[ASNode]:
        """All ASes, in insertion order."""
        return iter(self._nodes.values())

    def asns(self) -> List[int]:
        """All ASNs, in insertion order."""
        return list(self._nodes.keys())

    def links(self) -> Iterator[Link]:
        """All links, in insertion order."""
        return iter(self._links.values())

    @property
    def n_links(self) -> int:
        return len(self._links)

    def has_link(self, a: int, b: int) -> bool:
        return link_key(a, b) in self._links

    def link(self, a: int, b: int) -> Link:
        """The link between ``a`` and ``b`` (KeyError if absent)."""
        return self._links[link_key(a, b)]

    def providers_of(self, asn: int) -> FrozenSet[int]:
        return frozenset(self._providers[asn])

    def customers_of(self, asn: int) -> FrozenSet[int]:
        return frozenset(self._customers[asn])

    def peers_of(self, asn: int) -> FrozenSet[int]:
        return frozenset(self._peers[asn])

    def siblings_of(self, asn: int) -> FrozenSet[int]:
        return frozenset(self._siblings[asn])

    def neighbors_of(self, asn: int) -> FrozenSet[int]:
        """All neighbours regardless of relationship type."""
        return frozenset(
            self._providers[asn]
            | self._customers[asn]
            | self._peers[asn]
            | self._siblings[asn]
        )

    def degree(self, asn: int) -> int:
        """Node degree over all relationship types."""
        return len(self.neighbors_of(asn))

    def clique(self) -> List[int]:
        """The ground-truth Tier-1 clique (ASes with role ``CLIQUE``)."""
        return [n.asn for n in self._nodes.values() if n.role is Role.CLIQUE]

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    def customer_cone(self, asn: int) -> Set[int]:
        """All ASes reachable from ``asn`` by walking customer links
        only, excluding ``asn`` itself (the ground-truth customer cone).
        """
        cone: Set[int] = set()
        frontier = list(self._customers[asn])
        while frontier:
            current = frontier.pop()
            if current in cone or current == asn:
                continue
            cone.add(current)
            frontier.extend(self._customers[current] - cone)
        return cone

    def customer_cone_sizes(self) -> Dict[int, int]:
        """Customer-cone size for every AS, computed with memoisation.

        The provider graph is acyclic by construction (the generator
        never creates provider loops), which makes a simple post-order
        accumulation valid; cycles, if ever introduced by hand-built
        graphs, fall back to the per-AS BFS.
        """
        sizes: Dict[int, int] = {}
        try:
            order = self._topological_customer_order()
        except ValueError:
            return {asn: len(self.customer_cone(asn)) for asn in self._nodes}
        cones: Dict[int, Set[int]] = {}
        for asn in order:
            cone: Set[int] = set()
            for customer in self._customers[asn]:
                cone.add(customer)
                cone |= cones[customer]
            cones[asn] = cone
            sizes[asn] = len(cone)
        return sizes

    def _topological_customer_order(self) -> List[int]:
        """ASes ordered so that every customer precedes its providers.

        Raises ``ValueError`` if the P2C graph contains a cycle.
        """
        state: Dict[int, int] = {}
        order: List[int] = []
        for start in self._nodes:
            if state.get(start):
                continue
            stack: List[Tuple[int, Iterator[int]]] = [
                (start, iter(self._customers[start]))
            ]
            state[start] = 1
            while stack:
                asn, it = stack[-1]
                advanced = False
                for nxt in it:
                    if state.get(nxt) == 1:
                        raise ValueError("customer graph contains a cycle")
                    if not state.get(nxt):
                        state[nxt] = 1
                        stack.append((nxt, iter(self._customers[nxt])))
                        advanced = True
                        break
                if not advanced:
                    state[asn] = 2
                    order.append(asn)
                    stack.pop()
        return order

    def is_stub(self, asn: int) -> bool:
        """True iff the AS has an empty customer cone."""
        return not self._customers[asn]

    def transit_free(self) -> List[int]:
        """ASes without providers (the structural top of the hierarchy)."""
        return [asn for asn in self._nodes if not self._providers[asn]]

    def stats(self) -> Dict[str, int]:
        """Coarse size statistics used by logging and tests."""
        rel_counts = {rel: 0 for rel in RelType}
        for link in self._links.values():
            rel_counts[link.rel] += 1
        return {
            "n_ases": len(self._nodes),
            "n_links": len(self._links),
            "n_p2c": rel_counts[RelType.P2C],
            "n_p2p": rel_counts[RelType.P2P],
            "n_s2s": rel_counts[RelType.S2S],
            "n_partial_transit": sum(
                1 for l in self._links.values() if l.partial_transit
            ),
            "n_hybrid": sum(1 for l in self._links.values() if l.is_hybrid),
        }
