"""Seeded attack events and corpus pollution.

An **attack event** pairs an attacker AS with a victim prefix (we
identify prefixes with their origin AS) and a *forged path suffix* —
the tail the attacker appends after itself when it announces the
victim's prefix:

``hijack_origin``
    Forged-prefix origin hijack: the attacker originates the victim's
    prefix itself.  Empty suffix, claimed distance 0.
``hijack_forged``
    Forged-origin hijack: the attacker announces ``attacker victim``,
    inventing a direct edge to the legitimate origin so the path ends
    correctly.  Suffix ``(victim,)``, claimed distance 1.
``leak``
    Classic RFC 7908 route leak: a *leaker* that learned the victim's
    route from a peer or provider re-exports it as if it were
    customer-learned, so it propagates upward and sideways where it
    never should.  The suffix is the leaker's real (clean) path tail
    towards the victim and the claimed distance is its real path
    length — the leaked route is truthful about the path, dishonest
    about the export policy.

Events are planned from the labelled stream ``adversarial.events`` of
the scenario seed, so an :class:`repro.config.AttackConfig` is fully
cache-keyable: same config, same topology → byte-identical polluted
corpus on both propagation engines.

Injection runs one **joint two-source propagation**
(:func:`repro.bgp.propagation.compute_attack_routes`) per event: the
legitimate origin and the attacker announce simultaneously and every
AS picks its Gao-Rexford best route among both, with policy deployers
(and the suffix ASes themselves, which would detect their own ASN on
the path — standard AS-path loop detection) dropping attack-sourced
offers.  The resulting routes are reduced through the *same*
:func:`repro.bgp.collectors.routes_for_origin` used for honest
collection and merged into the corpus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.adversarial.policies import blocked_ases, resolve_deployments
from repro.bgp.collectors import VantagePoint, routes_for_origin
from repro.bgp.policy import AdjacencyIndex, RouteClass
from repro.bgp.propagation import (
    compute_attack_routes,
    compute_origin_routes,
)
from repro.utils.rng import child_rng

if TYPE_CHECKING:
    from repro.bgp.communities import CommunityRegistry
    from repro.config import ScenarioConfig
    from repro.datasets.paths import PathCorpus
    from repro.topology.generator import Topology


@dataclass(frozen=True)
class AttackEvent:
    """One planned attack: who forges what against whom.

    ``suffix`` is the forged path tail the attacker appends after its
    own ASN; ``claim_dist`` (its length) is the distance the attacker
    claims to be from the origin.
    """

    kind: str
    attacker: int
    victim: int
    suffix: Tuple[int, ...] = ()

    @property
    def claim_dist(self) -> int:
        return len(self.suffix)

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "attacker": self.attacker,
            "victim": self.victim,
            "suffix": list(self.suffix),
        }


def plan_events(
    topology: "Topology",
    config: "ScenarioConfig",
    adjacency: Optional[AdjacencyIndex] = None,
) -> List[AttackEvent]:
    """The deterministic attack plan of a scenario.

    Hijack attacker/victim pairs are drawn uniformly (attacker ≠
    victim) from ``adversarial.events``; each leak first draws its
    victim, then picks the leaker among the ASes whose *clean* route
    towards the victim is peer- or provider-learned (those are the
    routes Gao-Rexford forbids re-exporting upward) — intersected with
    the ``leak_prone`` deployment mask when one is configured.  A leak
    with no eligible leaker is skipped without consuming extra draws,
    so the plan stays aligned across engines and configs.
    """
    adv = config.adversarial
    if adv is None or adv.attack.total_events() == 0:
        return []
    if adjacency is None:
        adjacency = AdjacencyIndex(topology.graph)
    rng = child_rng(config.seed, "adversarial.events")
    asns = sorted(topology.graph.asns())
    deployments = resolve_deployments(adv, topology, config.seed)
    leak_pool: Optional[Set[int]] = None
    if "leak_prone" in deployments:
        leak_pool = set(deployments["leak_prone"])

    def draw_pair() -> Tuple[int, int]:
        attacker = asns[int(rng.integers(len(asns)))]
        victim = asns[int(rng.integers(len(asns)))]
        while victim == attacker:
            victim = asns[int(rng.integers(len(asns)))]
        return attacker, victim

    events: List[AttackEvent] = []
    for _ in range(adv.attack.n_origin_hijacks):
        attacker, victim = draw_pair()
        events.append(AttackEvent("hijack_origin", attacker, victim, ()))
    for _ in range(adv.attack.n_forged_origin_hijacks):
        attacker, victim = draw_pair()
        events.append(
            AttackEvent("hijack_forged", attacker, victim, (victim,))
        )
    for _ in range(adv.attack.n_route_leaks):
        victim = asns[int(rng.integers(len(asns)))]
        clean = compute_origin_routes(adjacency, victim)
        eligible = [
            asn
            for asn in asns
            if asn != victim
            and clean.has_route(asn)
            and clean.pref[asn] in (RouteClass.PEER, RouteClass.PROVIDER)
            and (leak_pool is None or asn in leak_pool)
        ]
        if not eligible:
            continue
        leaker = eligible[int(rng.integers(len(eligible)))]
        path = clean.path_from(leaker)
        assert path is not None
        events.append(AttackEvent("leak", leaker, victim, path[1:]))
    return events


class _AttackPrefView:
    """``pref[asn]`` over an :class:`AttackView` (collector protocol)."""

    __slots__ = ("_view",)

    def __init__(self, view: "AttackView") -> None:
        self._view = view

    def __getitem__(self, asn: int) -> RouteClass:
        view = self._view
        if asn == view.event.attacker and view.tag_override is not None:
            return view.tag_override
        return view.routes.pref[asn]

    def __contains__(self, asn: int) -> bool:
        return self._view.routes.has_route(asn)


class AttackView:
    """Collector-protocol view over one event's joint routes.

    Presents ``has_route`` / ``pref[asn]`` / ``path_from`` / ``origin``
    so :func:`repro.bgp.collectors.routes_for_origin` reduces polluted
    routes exactly like honest ones.  Two adjustments:

    * ``path_from`` appends the event's forged suffix to every
      attack-sourced path, so collected paths end at the claimed
      origin;
    * for leaks, the leaker's ingress class is overridden to its real
      (clean) class — the leaked route *was* peer/provider-learned,
      and that is what the leaker's informational community says.  The
      override also means a partial-feed VP that is itself the leaker
      does not export its own leak (its table still says
      peer/provider-learned), which matches how partial feeds hide
      leaks in real collectors.

    The suffix ASes hold their clean routes in the joint propagation
    (they are loop-blocked from the attack source, and legitimate
    offers can only shrink relative to the clean run, never improve —
    so each suffix AS keeps its clean class/distance/parent by
    induction up the clean path).  Their community tags on forged
    paths are therefore their honest ones.
    """

    def __init__(
        self,
        routes,
        event: AttackEvent,
        tag_override: Optional[RouteClass] = None,
    ) -> None:
        self.routes = routes
        self.event = event
        self.tag_override = tag_override
        self.origin = routes.origin

    def has_route(self, asn: int) -> bool:
        return self.routes.has_route(asn)

    @property
    def pref(self) -> _AttackPrefView:
        return _AttackPrefView(self)

    def src_of(self, asn: int) -> int:
        """Provenance of an AS's best route (0 legit, 1 attack)."""
        src_arr = getattr(self.routes, "src_arr", None)
        if src_arr is not None:
            i = self.routes.plane.id_or_none(asn)
            return int(src_arr[i]) if i is not None else 0
        src = getattr(self.routes, "src", None)
        if src is not None:
            return src.get(asn, 0)
        return 0

    def path_from(self, asn: int) -> Optional[Tuple[int, ...]]:
        base = self.routes.path_from(asn)
        if base is None:
            return None
        if self.src_of(asn) == 1:
            return base + self.event.suffix
        return base


def event_blocked_set(
    event: AttackEvent, deployments: Dict[str, Tuple[int, ...]]
) -> Set[int]:
    """ASes that refuse this event's attack-sourced routes.

    Policy deployers whose policy blocks the event kind, plus the
    forged-suffix ASes themselves: any AS on the forged tail would see
    its own ASN in the announcement and drop it as a loop.
    """
    blocked = blocked_ases(deployments, event.kind)
    blocked.update(event.suffix)
    return blocked


def inject_attacks(
    topology: "Topology",
    config: "ScenarioConfig",
    vps: List[VantagePoint],
    communities: "CommunityRegistry",
    strippers: Set[int],
    corpus: "PathCorpus",
) -> List[AttackEvent]:
    """Run every planned attack and merge its routes into the corpus.

    Events run in plan order; within an event, vantage points are
    visited in list order — so pollution is as deterministic as honest
    collection.  Returns the executed plan.
    """
    adv = config.adversarial
    if adv is None or adv.attack.total_events() == 0:
        return []
    adjacency = AdjacencyIndex(topology.graph)
    events = plan_events(topology, config, adjacency)
    if not events:
        return []
    deployments = resolve_deployments(adv, topology, config.seed)
    for event in events:
        blocked = event_blocked_set(event, deployments)
        joint = compute_attack_routes(
            adjacency,
            event.victim,
            event.attacker,
            event.claim_dist,
            blocked,
        )
        override: Optional[RouteClass] = None
        if event.kind == "leak":
            override = adjacency.route_class(event.attacker, event.suffix[0])
        view = AttackView(joint, event, tag_override=override)
        corpus.add_routes(
            routes_for_origin(view, vps, communities, strippers)
        )
    return events
