"""Pollution impact analysis: clean vs polluted inference panel.

The paper's question — how biased is our validation data? — assumes
the corpus itself is honest.  This workload measures what happens when
it is not: it builds the *same* scenario twice, once without the
adversarial layer and once with it, runs the full inference panel
(ASRank / ProbLink / TopoScope by default) on both corpora, and
reports per algorithm

* exact-label accuracy against the generator's ground-truth
  relationships, clean vs polluted, and the degradation between them;
* how many inferred links are **fake** — edges that never existed in
  the topology, conjured by forged paths;

plus the drift of the paper's regional and topological bias profiles
(share distributions and validation-coverage spread) between the two
corpora.  Everything is seeded, so the report is reproducible and both
scenario halves are served by the artifact cache under their own
fingerprints (the clean half reuses the honest cache entry unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.adversarial.attacks import AttackEvent, plan_events
from repro.analysis.bias import share_drift
from repro.analysis.metrics import (
    RelationshipAccuracy,
    relationship_accuracy,
)
from repro.config import ScenarioConfig
from repro.datasets.asrel import RelationshipSet
from repro.scenario import Scenario, build_scenario
from repro.topology.generator import Topology
from repro.topology.graph import RelType

#: The inference panel the impact report runs by default.
DEFAULT_ALGORITHMS = ("asrank", "problink", "toposcope")


def truth_relationships(topology: Topology) -> RelationshipSet:
    """The generator's ground-truth relationship set.

    Hybrid links contribute their primary label, matching how the
    validation layer treats them.
    """
    truth = RelationshipSet()
    for link in topology.graph.links():
        if link.rel is RelType.P2C:
            truth.set_p2c(link.provider, link.customer)
        elif link.rel is RelType.P2P:
            truth.set_p2p(link.provider, link.customer)
        else:
            truth.set_s2s(link.provider, link.customer)
    return truth


@dataclass(frozen=True)
class AlgorithmImpact:
    """Accuracy degradation of one inference algorithm."""

    algorithm: str
    clean: RelationshipAccuracy
    polluted: RelationshipAccuracy

    @property
    def accuracy_delta(self) -> float:
        """Polluted minus clean accuracy (negative = degradation)."""
        return self.polluted.accuracy - self.clean.accuracy

    @property
    def new_fake_links(self) -> int:
        """Fake links the pollution introduced."""
        return self.polluted.n_fake - self.clean.n_fake

    def to_dict(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "clean": self.clean.to_dict(),
            "polluted": self.polluted.to_dict(),
            "accuracy_delta": self.accuracy_delta,
            "new_fake_links": self.new_fake_links,
        }


@dataclass(frozen=True)
class BiasDrift:
    """Drift of one bias grouping between clean and polluted corpora."""

    grouping: str
    clean_spread: float
    polluted_spread: float
    share_drift: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "grouping": self.grouping,
            "clean_coverage_spread": self.clean_spread,
            "polluted_coverage_spread": self.polluted_spread,
            "share_drift": self.share_drift,
        }


@dataclass
class ImpactReport:
    """Everything one clean-vs-polluted comparison produced."""

    clean_fingerprint: str
    polluted_fingerprint: str
    events: List[AttackEvent]
    algorithms: List[AlgorithmImpact]
    bias: List[BiasDrift]
    corpus_sizes: Tuple[int, int]
    _scenarios: Optional[Tuple[Scenario, Scenario]] = field(
        default=None, repr=False, compare=False
    )

    def by_algorithm(self) -> Dict[str, AlgorithmImpact]:
        return {impact.algorithm: impact for impact in self.algorithms}

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload (CLI ``--json`` and the service route)."""
        return {
            "clean_fingerprint": self.clean_fingerprint,
            "polluted_fingerprint": self.polluted_fingerprint,
            "events": [event.to_dict() for event in self.events],
            "n_events": len(self.events),
            "corpus_paths_clean": self.corpus_sizes[0],
            "corpus_paths_polluted": self.corpus_sizes[1],
            "algorithms": [
                impact.to_dict() for impact in self.algorithms
            ],
            "bias": [drift.to_dict() for drift in self.bias],
        }


def run_impact(
    config: ScenarioConfig,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    *,
    workers: int = 0,
    cache=None,
    keep_scenarios: bool = False,
) -> ImpactReport:
    """Build clean and polluted twins of ``config`` and compare them.

    ``config`` must carry an adversarial layer with at least one attack
    event; the clean twin is the same config with the layer stripped,
    so its fingerprint — and therefore its cache entry and every
    artifact byte — is identical to an honest scenario's.

    ``keep_scenarios`` retains the two built scenarios on the report
    (the service uses this to reuse pooled instances' indexes).
    """
    adv = config.adversarial
    if adv is None or adv.attack.total_events() == 0:
        raise ValueError(
            "impact analysis needs an adversarial layer with at least "
            "one attack event"
        )
    config.validate()
    clean_config = config.replace(adversarial=None)
    clean = build_scenario(clean_config, workers=workers, cache=cache)
    polluted = build_scenario(config, workers=workers, cache=cache)
    return compare_scenarios(
        clean, polluted, algorithms, keep_scenarios=keep_scenarios
    )


def compare_scenarios(
    clean: Scenario,
    polluted: Scenario,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    *,
    keep_scenarios: bool = False,
) -> ImpactReport:
    """The impact report over two already-built scenario twins.

    ``clean`` must be ``polluted``'s config with the adversarial layer
    stripped (the service calls this with pooled instances so the two
    builds and their indexes are shared with ordinary queries).
    """
    config = polluted.config
    truth = truth_relationships(clean.topology)
    events = plan_events(polluted.topology, config)
    impacts = [
        AlgorithmImpact(
            algorithm=name,
            clean=relationship_accuracy(clean.infer(name), truth),
            polluted=relationship_accuracy(polluted.infer(name), truth),
        )
        for name in algorithms
    ]
    bias = [
        BiasDrift(
            grouping="regional",
            clean_spread=clean.regional_bias().coverage_spread(),
            polluted_spread=polluted.regional_bias().coverage_spread(),
            share_drift=share_drift(
                clean.regional_bias(), polluted.regional_bias()
            ),
        ),
        BiasDrift(
            grouping="topological",
            clean_spread=clean.topological_bias().coverage_spread(),
            polluted_spread=polluted.topological_bias().coverage_spread(),
            share_drift=share_drift(
                clean.topological_bias(), polluted.topological_bias()
            ),
        ),
    ]
    return ImpactReport(
        clean_fingerprint=clean.config.fingerprint(),
        polluted_fingerprint=config.fingerprint(),
        events=events,
        algorithms=impacts,
        bias=bias,
        corpus_sizes=(len(clean.corpus), len(polluted.corpus)),
        _scenarios=(clean, polluted) if keep_scenarios else None,
    )
