"""Adversarial scenario plane: security policies, attacks, impact.

The honest simulator produces corpora generated entirely by
Gao-Rexford speakers.  Real validation corpora are polluted by origin
hijacks and route leaks, and increasingly *filtered* by partially
deployed security policies (RPKI route-origin validation, ASPA path
validation).  This package layers both phenomena on top of the
scenario pipeline:

* :mod:`repro.adversarial.policies` — the registry of pluggable
  per-AS security policies and the seeded partial-deployment masks
  that decide which ASes run them;
* :mod:`repro.adversarial.attacks` — seeded attack-event planning and
  the joint two-source propagation that injects polluted routes into
  the collected corpus;
* :mod:`repro.adversarial.impact` — the clean-vs-polluted analysis
  workload reporting per-algorithm accuracy degradation and
  bias-profile drift.

Everything is keyed off :class:`repro.config.AdversarialConfig`; a
scenario without one is byte-identical to the honest pipeline.
"""

from repro.adversarial.attacks import AttackEvent, inject_attacks, plan_events
from repro.adversarial.impact import (
    AlgorithmImpact,
    ImpactReport,
    compare_scenarios,
    run_impact,
)
from repro.adversarial.policies import (
    SecurityPolicy,
    blocked_ases,
    get_policy,
    registered_policies,
    register_policy,
    resolve_deployments,
)

__all__ = [
    "AlgorithmImpact",
    "AttackEvent",
    "ImpactReport",
    "SecurityPolicy",
    "blocked_ases",
    "compare_scenarios",
    "get_policy",
    "inject_attacks",
    "plan_events",
    "register_policy",
    "registered_policies",
    "resolve_deployments",
    "run_impact",
]
