"""Security-policy registry and seeded partial-deployment masks.

A **security policy** names a route-filtering behaviour an AS may run
on top of baseline Gao-Rexford export rules.  Policies are registered
in a module-level registry so new ones plug in without touching the
propagation engine; each declares the set of attack kinds it blocks at
*import* — a deploying AS silently drops any attack-sourced offer of a
blocked kind, exactly like an RPKI-invalid announcement being rejected
at the edge.

Built-in policies:

``gao_rexford``
    The baseline.  Blocks nothing; exists so explicit "no extra
    filtering" deployments can be expressed and so registry lookups
    are total.
``rpki``
    Route-origin validation.  An RPKI deployer can check the origin AS
    of an announcement against published ROAs, so it rejects
    forged-*prefix* origin hijacks (``hijack_origin``) where the
    attacker claims to originate the victim's prefix itself.  It
    cannot see anything wrong with a forged-origin hijack (the path
    still ends at the legitimate origin) or a route leak.
``aspa``
    Path validation against provider authorisations.  An ASPA deployer
    detects hops that violate the authorised provider sets: the fake
    attacker–victim edge of a forged-origin hijack
    (``hijack_forged``) and the valley created by a route leak
    (``leak``).
``leak_prone``
    Not a filter: marks ASes with sloppy export configs.  Its
    deployment mask seeds *leaker selection* — when present, route
    leaks originate only from ASes in the mask.

Deployment is partial and seeded.  A
:class:`repro.config.PolicyDeployment` names a strategy:

* ``top_cone`` — the ``top_n`` ASes by customer cone size (ties by
  lower ASN), modelling "the big transit providers deploy first";
* ``random`` — each AS deploys independently with probability
  ``fraction``, drawn from the labelled stream
  ``adversarial.deploy.<policy>`` of the scenario seed;
* ``explicit`` — exactly the listed ASes.

Masks resolve to sorted ASN tuples, so deployment state is
deterministic, cache-keyable, and independent of the propagation
engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Set, Tuple

from repro.config import PolicyDeployment, SECURITY_POLICY_NAMES
from repro.utils.rng import child_rng

if TYPE_CHECKING:
    from repro.config import AdversarialConfig
    from repro.topology.generator import Topology

#: The attack kinds understood by policy ``blocks`` declarations.
ATTACK_KINDS = ("hijack_origin", "hijack_forged", "leak")


@dataclass(frozen=True)
class SecurityPolicy:
    """One pluggable per-AS security policy.

    ``blocks`` is the set of attack kinds a deploying AS filters at
    import; an empty set means the policy never drops routes (it may
    still carry behavioural meaning, like ``leak_prone``).
    """

    name: str
    blocks: FrozenSet[str]
    description: str

    def __post_init__(self) -> None:
        unknown = sorted(set(self.blocks) - set(ATTACK_KINDS))
        if unknown:
            raise ValueError(
                f"policy {self.name!r} blocks unknown attack kinds: "
                f"{unknown}"
            )


_REGISTRY: Dict[str, SecurityPolicy] = {}


def register_policy(policy: SecurityPolicy) -> SecurityPolicy:
    """Add a policy to the registry (idempotent for identical entries).

    Config validation accepts exactly the names in
    :data:`repro.config.SECURITY_POLICY_NAMES`; registering a policy
    under a new name also requires adding the name there, which keeps
    the schema errors precise.
    """
    existing = _REGISTRY.get(policy.name)
    if existing is not None and existing != policy:
        raise ValueError(
            f"policy {policy.name!r} already registered with different "
            "semantics"
        )
    _REGISTRY[policy.name] = policy
    return policy


def get_policy(name: str) -> SecurityPolicy:
    """Look up a registered policy by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown security policy {name!r}; registered: "
            f"{sorted(_REGISTRY)}"
        ) from None


def registered_policies() -> List[SecurityPolicy]:
    """All registered policies in name order."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


register_policy(SecurityPolicy(
    name="gao_rexford",
    blocks=frozenset(),
    description=(
        "Baseline Gao-Rexford export rules with no additional route "
        "filtering."
    ),
))
register_policy(SecurityPolicy(
    name="rpki",
    blocks=frozenset({"hijack_origin"}),
    description=(
        "Route-origin validation: rejects announcements whose origin "
        "AS contradicts the prefix's ROA (forged-prefix origin "
        "hijacks)."
    ),
))
register_policy(SecurityPolicy(
    name="aspa",
    blocks=frozenset({"hijack_forged", "leak"}),
    description=(
        "Provider-authorisation path validation: rejects paths with "
        "unauthorised hops — forged-origin hijack edges and route-leak "
        "valleys."
    ),
))
register_policy(SecurityPolicy(
    name="leak_prone",
    blocks=frozenset(),
    description=(
        "Marks ASes with sloppy export filters; route leaks originate "
        "from this deployment mask when it is present."
    ),
))

# Every name the config schema admits must resolve in the registry.
assert all(name in _REGISTRY for name in SECURITY_POLICY_NAMES)


def resolve_deployment(
    deployment: PolicyDeployment, topology: "Topology", seed: int
) -> Tuple[int, ...]:
    """The sorted ASN tuple a single deployment resolves to.

    ``random`` masks draw from the labelled child stream
    ``adversarial.deploy.<policy>`` so each policy's mask is
    independent of the others and of the attack-event stream.
    """
    asns = topology.graph.asns()
    if deployment.strategy == "top_cone":
        cones = topology.graph.customer_cone_sizes()
        ranked = sorted(asns, key=lambda a: (-cones.get(a, 0), a))
        chosen = ranked[: deployment.top_n]
    elif deployment.strategy == "random":
        rng = child_rng(seed, f"adversarial.deploy.{deployment.policy}")
        mask = rng.random(len(asns)) < deployment.fraction
        chosen = [asn for asn, hit in zip(asns, mask) if hit]
    else:  # "explicit" — validated by PolicyDeployment.validate
        known = set(asns)
        unknown = sorted(set(deployment.ases) - known)
        if unknown:
            raise ValueError(
                f"explicit deployment of {deployment.policy!r} names "
                f"ASes not in the topology: {unknown[:5]}"
            )
        chosen = sorted(set(deployment.ases))
    return tuple(sorted(chosen))


def resolve_deployments(
    adversarial: "AdversarialConfig", topology: "Topology", seed: int
) -> Dict[str, Tuple[int, ...]]:
    """Resolve every deployment of a scenario to its ASN mask.

    Returns ``{policy name: sorted ASN tuple}``.  Duplicate policies
    are rejected upstream by ``AdversarialConfig.validate``.
    """
    return {
        deployment.policy: resolve_deployment(deployment, topology, seed)
        for deployment in adversarial.deployments
    }


def blocked_ases(
    deployments: Dict[str, Tuple[int, ...]], kind: str
) -> Set[int]:
    """The ASes that filter attack-sourced routes of ``kind``.

    The union of every resolved deployment mask whose policy blocks
    that attack kind.
    """
    blocked: Set[int] = set()
    for name in sorted(deployments):
        if kind in get_policy(name).blocks:
            blocked.update(deployments[name])
    return blocked
