"""Ablation benchmarks (DESIGN.md §5): the bias *mechanisms*.

Each ablation rebuilds a mid-sized scenario with exactly one mechanism
changed and shows that the corresponding paper finding appears or
disappears with it:

* A1 — vantage-point placement skew drives which links are even
  observable;
* A2 — regional documentation culture drives Figure 1's coverage row
  (the LACNIC hole is culture, not topology);
* A3 — partial-transit prevalence drives the T1-TR precision drop;
* A4 — the multi-label policy shifts validation counts (§4.2), covered
  in test_sec42_cleaning.py; here we check it also moves per-class
  metrics.
"""

import pytest

from repro import build_scenario
from repro.topology.regions import Region
from repro.validation.cleaning import MultiLabelPolicy

from conftest import ablation_config


def _coverage(scenario, class_name, topological=False):
    profile = (
        scenario.topological_bias() if topological else scenario.regional_bias()
    )
    entry = profile.by_name().get(class_name)
    return entry.coverage if entry else 0.0


class TestA1VantagePointPlacement:
    def test_uniform_vps_change_visibility(self, ablation_base, benchmark):
        config = ablation_config()
        config.measurement.vp_region_weights = {r: 1.0 for r in Region}
        config.measurement.vp_role_weights = {
            role: 1.0 for role in config.measurement.vp_role_weights
        }
        uniform = benchmark.pedantic(
            build_scenario, args=(config,), rounds=1, iterations=1
        )
        base_links = len(ablation_base.corpus.visible_links())
        uniform_links = len(uniform.corpus.visible_links())
        print(f"\nvisible links: skewed VPs {base_links}, uniform VPs {uniform_links}")
        # Uniform (mostly-stub) VPs sit at the edge and reveal fewer
        # transit-to-transit links than the transit-heavy real feeds.
        base_tr = len(ablation_base.class_links("TR°"))
        uniform_tr = len(uniform.class_links("TR°"))
        print(f"TR° links: skewed {base_tr}, uniform {uniform_tr}")
        assert uniform_links != base_links


class TestA2DocumentationCulture:
    def test_equal_culture_closes_the_lacnic_hole(self, ablation_base, benchmark):
        config = ablation_config()
        config.validation.doc_region_multiplier = {r: 1.0 for r in Region}
        equal = benchmark.pedantic(
            build_scenario, args=(config,), rounds=1, iterations=1
        )
        base_l = _coverage(ablation_base, "L°")
        equal_l = _coverage(equal, "L°")
        base_ar = _coverage(ablation_base, "AR°")
        equal_ar = _coverage(equal, "AR°")
        print(f"\nL° coverage: biased culture {base_l:.3f}, equal culture {equal_l:.3f}")
        print(f"AR° coverage: biased culture {base_ar:.3f}, equal culture {equal_ar:.3f}")
        # With equal documentation culture the LACNIC hole disappears:
        # L° coverage becomes comparable to AR° instead of ~zero.
        assert base_l < 0.05
        assert equal_l > 5 * max(base_l, 0.005)
        assert equal_l > 0.3 * equal_ar


class TestA3PartialTransitPrevalence:
    def test_no_partial_transit_restores_t1_tr_precision(
        self, ablation_base, benchmark
    ):
        config = ablation_config()
        config.topology.cogent_partial_transit_prob = 0.0
        config.topology.clique_partial_transit_prob = 0.0
        clean = benchmark.pedantic(
            build_scenario, args=(config,), rounds=1, iterations=1
        )
        base_table = ablation_base.validation_table("asrank")
        clean_table = clean.validation_table("asrank")
        base_t1tr = base_table.metrics("T1-TR")
        clean_t1tr = clean_table.metrics("T1-TR")
        assert base_t1tr is not None and clean_t1tr is not None
        base_drop = base_table.total.ppv_p2p - base_t1tr.ppv_p2p
        clean_drop = clean_table.total.ppv_p2p - clean_t1tr.ppv_p2p
        print(
            f"\nT1-TR PPV_P drop vs Total: with partial transit "
            f"{base_drop:+.3f}, without {clean_drop:+.3f}"
        )
        assert clean_drop < base_drop


class TestA4MultiLabelPolicy:
    def test_policy_shifts_validated_counts(self, benchmark):
        config = ablation_config()
        ignore = benchmark.pedantic(
            build_scenario,
            args=(config,),
            kwargs={"multi_label_policy": MultiLabelPolicy.IGNORE},
            rounds=1,
            iterations=1,
        )
        always = build_scenario(
            config, multi_label_policy=MultiLabelPolicy.ALWAYS_P2C
        )
        n_multi = ignore.validation.report.n_multi_label_links
        print(f"\nmulti-label links: {n_multi}")
        print(f"validated links (ignore): {len(ignore.validation)}")
        print(f"validated links (always_p2c): {len(always.validation)}")
        assert len(always.validation) == len(ignore.validation) + n_multi
