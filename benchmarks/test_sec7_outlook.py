"""§7 outlook — the paper's proposed future directions, made executable.

Three proposals from the discussion section are benchmarked:

* **re-sampling over time**: exploiting routing-ecosystem churn to
  over-sample validation data (how many unique data points do N months
  of snapshots yield vs the best single snapshot?);
* **Peerlock as an incentive**: router-filter generation from
  relationship data, and how inference errors translate into missing
  or spurious protection;
* **complex-relationship handling**: explicit detection of
  partial-transit links, the §4.2/§7 ask, evaluated against ground
  truth.
"""

import pytest

from repro import ScenarioConfig
from repro.applications.peerlock import evaluate_protection, generate_peerlock
from repro.datasets.asrel import RelationshipSet
from repro.evolution import EvolutionConfig, EvolutionSimulator
from repro.inference.complex_rels import ComplexRelationshipDetector
from repro.topology.graph import RelType


def test_sec7_resampling_oversamples_validation(benchmark):
    config = ScenarioConfig.default()
    config.topology.n_ases = 700
    config.measurement.n_vantage_points = 70
    config.measurement.n_churn_rounds = 1
    simulator = EvolutionSimulator(config, EvolutionConfig(months=5))
    result = benchmark.pedantic(simulator.run, rounds=1, iterations=1)
    gain = result.oversampling_gain(min_gap_months=3)
    print(f"\nmonthly validated links: {result.monthly_label_counts}")
    print(f"unique samples (3-month gap): "
          f"{result.temporal.unique_samples(3)}")
    print(f"over-sampling gain vs best single snapshot: {gain:.2f}x")
    print(f"relationship changes observed: "
          f"{len(result.temporal.changed_links())}")
    # The §7 claim: re-sampling yields strictly more data than any
    # single snapshot.
    assert gain > 1.2


def test_sec7_peerlock_inherits_inference_errors(paper, benchmark):
    truth = RelationshipSet()
    for link in paper.topology.graph.links():
        if link.rel is RelType.P2C:
            truth.set_p2c(link.provider, link.customer)
        elif link.rel is RelType.P2P:
            truth.set_p2p(link.provider, link.customer)

    def build_configs():
        scores = {}
        for member in paper.algorithm("asrank").clique_:
            config = generate_peerlock(member, paper.infer("asrank"))
            scores[member] = evaluate_protection(member, config, truth)
        return scores

    scores = benchmark.pedantic(build_configs, rounds=1, iterations=1)
    total_missing = sum(s.missing_protection for s in scores.values())
    total_spurious = sum(s.spurious_protection for s in scores.values())
    total_rules = sum(s.n_rules for s in scores.values())
    print(f"\nPeerlock configs for {len(scores)} clique members: "
          f"{total_rules} rules")
    print(f"missing protection (misinferred peerings): {total_missing}")
    print(f"spurious protection (misinferred customers): {total_spurious}")
    # §2's warning quantified: inference errors do surface in the
    # generated configurations.
    assert total_rules > 0
    assert total_missing + total_spurious > 0


def test_sec7_complex_relationship_handling(paper, benchmark):
    detector = ComplexRelationshipDetector(
        base_inference=paper.infer("asrank"),
        clique=paper.algorithm("asrank").clique_,
    )
    report = benchmark.pedantic(
        detector.detect,
        args=(paper.corpus,),
        kwargs={"validation": paper.raw_validation.data},
        rounds=1,
        iterations=1,
    )
    graph = paper.topology.graph
    true_partial = sum(
        1
        for c in report.partial_transit
        if graph.has_link(*c.key) and graph.link(*c.key).partial_transit
    )
    print(f"\npartial-transit candidates: {len(report.partial_transit)} "
          f"({true_partial} true in ground truth)")
    print(f"hybrid candidates: {len(report.hybrid)}")
    assert report.partial_transit
    assert true_partial / len(report.partial_transit) >= 0.4
