"""§3.3 — existing insights into validation bias, re-measured.

Two prior findings the paper builds on are verified on the simulator:

* **Jin et al.**: the validation data is skewed towards links that are
  easy to infer (the five hard-link criteria);
* **Luckie et al.**: community-based validation over-represents links
  incident to a vantage point and to clique ASes.

Plus the UNARI-flavoured uncertainty analysis the paper could not run
for lack of artifacts: ProbLink's posteriors are calibrated against the
validation data, and the depressed classes show smaller decision
margins.
"""

from repro.analysis.hardlinks import hard_link_report
from repro.analysis.uncertainty import (
    expected_calibration_error,
    selective_accuracy,
    uncertainty_by_class,
)
from repro.inference.problink import ProbLink


def test_sec33_validation_skewed_to_easy_links(paper, benchmark):
    report = benchmark.pedantic(
        hard_link_report,
        args=(paper.corpus, paper.algorithm("asrank").clique_),
        rounds=1,
        iterations=1,
    )
    print(f"\nhard-link share of visible links: {report.hard_share():.2f}")
    for name, links in report.categories.items():
        print(f"  {name:16s} {len(links)}")
    easy_cov, hard_cov = report.validation_skew(
        paper.validation, paper.inferred_links()
    )
    print(f"validation coverage: easy links {easy_cov:.3f}, "
          f"hard links {hard_cov:.3f}")
    assert easy_cov > hard_cov * 1.3


def test_sec33_vp_and_clique_links_overrepresented(paper, benchmark):
    """Luckie et al.'s finding, measured directly."""
    vps = paper.corpus.vantage_points
    clique = set(
        benchmark.pedantic(
            lambda: paper.algorithm("asrank").clique_, rounds=1, iterations=1
        )
    )
    groups = {"vp_incident": [0, 0], "clique_incident": [0, 0], "other": [0, 0]}
    for key in paper.inferred_links():
        if key[0] in clique or key[1] in clique:
            slot = groups["clique_incident"]
        elif key[0] in vps or key[1] in vps:
            slot = groups["vp_incident"]
        else:
            slot = groups["other"]
        slot[1] += 1
        slot[0] += key in paper.validation
    coverage = {
        name: validated / max(1, total)
        for name, (validated, total) in groups.items()
    }
    print(f"\ncoverage by incidence: {coverage}")
    assert coverage["clique_incident"] > coverage["other"]
    assert coverage["vp_incident"] > coverage["other"]


def test_unari_style_uncertainty(paper, benchmark):
    problink = ProbLink(ixps=paper.topology.ixps)
    benchmark.pedantic(problink.infer, args=(paper.corpus,),
                       rounds=1, iterations=1)
    posteriors = problink.posterior_p2p_

    ece = expected_calibration_error(posteriors, paper.validation)
    print(f"\nProbLink expected calibration error: {ece:.3f}")
    assert ece < 0.35

    curve = selective_accuracy(posteriors, paper.validation)
    print("threshold coverage accuracy")
    for threshold, coverage, accuracy in curve:
        print(f"  {threshold:.2f}     {coverage:.3f}    {accuracy:.3f}")
    # Abstaining on uncertain links must not hurt accuracy.
    assert curve[-1][2] >= curve[0][2] - 0.02

    margins = uncertainty_by_class(
        posteriors, paper.topological_classifier().classify
    )
    print("mean decision margin per class:",
          {k: round(v, 3) for k, v in sorted(margins.items())})
    # The depressed T1-TR class should carry less certainty than the
    # easy S-TR bulk.
    if "T1-TR" in margins and "S-TR" in margins:
        assert margins["T1-TR"] <= margins["S-TR"] + 0.02
