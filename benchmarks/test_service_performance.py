"""Query-service performance benchmarks.

Not paper experiments — these time the serving hot paths introduced by
the multi-worker PR so regressions are caught alongside the science:

* the vectorized ``:batch`` pass (pack + ``searchsorted``) against the
  per-key dict walk it replaced, at the 256-link batches the loadgen
  issues (acceptance bar: p50 >= 3x),
* per-endpoint p50/p99 latency under the default closed-loop mix,
* 4-worker supervisor throughput against a single process (acceptance
  bar: >= 2x — asserted only on >= 4-core hosts; single-core CI boxes
  record the honest number plus a ``cpu_limited`` flag instead).

Every benchmark records into ``BENCH_service.json`` (same schema and
atomic-merge machinery as ``BENCH_substrate.json``), so CI archives
machine-readable serving numbers per PR.  Set ``BENCH_OUTPUT_DIR`` to
redirect the report; partial runs merge into an existing file.
"""

from __future__ import annotations

import os
import re
import signal
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict

import pytest

from repro.config import ScenarioConfig
from repro.pipeline.cache import ArtifactCache
from repro.scenario import build_scenario
from repro.service import ReproService, serve_in_thread
from repro.service.loadgen import prepare_plan, run_loadgen
from repro.service.query import ScenarioView
from repro.utils.benchreport import merge_bench_report
from repro.utils.rng import make_rng

REPO_ROOT = Path(__file__).resolve().parents[1]

#: name -> measurement dict, merged into ``BENCH_service.json``.
_RESULTS: Dict[str, Dict[str, Any]] = {}
_EXTRA: Dict[str, Any] = {}


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


@pytest.fixture(scope="module", autouse=True)
def _bench_report():
    """Write ``BENCH_service.json`` after the module's benchmarks."""
    yield
    if not _RESULTS:
        return
    out_dir = os.environ.get("BENCH_OUTPUT_DIR") or "."
    path = os.path.join(out_dir, "BENCH_service.json")
    _EXTRA["cpu_cores"] = _cores()
    _EXTRA["cpu_limited"] = _cores() < 4
    report = merge_bench_report(path, dict(_RESULTS), extra=dict(_EXTRA))
    print(f"\n[bench] wrote {path} ({len(report['benchmarks'])} entries)")


# ---------------------------------------------------------------------------
# the vectorized batch pass vs the per-key oracle
# ---------------------------------------------------------------------------

BATCH_SIZE = 256
N_BATCHES = 32


def _batches(view: ScenarioView, n: int, size: int):
    """Realistic batches: mostly visible links, some unknown."""
    rng = make_rng(0)
    visible = view._visible_sorted
    batches = []
    for _ in range(n):
        pairs = [
            list(visible[int(i)])
            for i in rng.integers(0, len(visible), size=size)
        ]
        for slot in range(0, size, 17):  # ~6% unknown links
            pairs[slot] = [999_999, slot + 1]
        batches.append(pairs)
    return batches


def test_perf_batch_vectorized_speedup(benchmark):
    view = ScenarioView(build_scenario(ScenarioConfig.small(seed=7)))
    view.build_rel_index("asrank")
    batches = _batches(view, N_BATCHES, BATCH_SIZE)

    def timed_p50(fn) -> float:
        per_batch = []
        for pairs in batches:
            start = time.perf_counter()
            fn("asrank", pairs)
            per_batch.append(time.perf_counter() - start)
        return statistics.median(per_batch)

    timed_p50(view.batch_payloads_perkey)  # warm both paths
    timed_p50(view.batch_payloads)
    perkey_p50 = timed_p50(view.batch_payloads_perkey)

    # pedantic times whole N_BATCHES sweeps (for the benchmark record);
    # the speedup compares per-batch p50s from the same sweep.
    sweeps = benchmark.pedantic(
        lambda: timed_p50(view.batch_payloads), rounds=3, iterations=1
    )
    vectorized_p50 = sweeps
    speedup = perkey_p50 / vectorized_p50
    print(f"\n[batch] per-key p50 {perkey_p50 * 1000:.3f}ms, "
          f"vectorized p50 {vectorized_p50 * 1000:.3f}ms, "
          f"speedup {speedup:.1f}x at {BATCH_SIZE}-link batches")
    _RESULTS["batch_vectorized_256"] = {
        "batch_size": BATCH_SIZE,
        "perkey_p50_ms": round(perkey_p50 * 1000, 4),
        "vectorized_p50_ms": round(vectorized_p50 * 1000, 4),
        "speedup": round(speedup, 2),
    }
    assert speedup >= 3.0


# ---------------------------------------------------------------------------
# per-endpoint latency under the default mix (single in-process worker)
# ---------------------------------------------------------------------------

def test_perf_endpoint_latency():
    service = ReproService(pool_size=2)
    with serve_in_thread(service) as live:
        plan = prepare_plan(
            "127.0.0.1", live.port, preset="small", seed=7,
            mix={"rel": 4.0, "batch": 1.0, "neighbors": 2.0, "healthz": 1.0},
            batch_size=BATCH_SIZE,
        )
        result = run_loadgen(plan, concurrency=4, duration_s=3.0)
    assert result.errors == 0
    assert result.total_requests > 0
    for name, stats in result.latency_ms.items():
        print(f"\n[latency] {name}: p50 {stats['p50']}ms "
              f"p99 {stats['p99']}ms over {stats['count']} requests")
    _RESULTS["endpoint_latency"] = {
        "concurrency": result.concurrency,
        "throughput_rps": round(result.throughput_rps, 2),
        "latency_ms": result.latency_ms,
    }


# ---------------------------------------------------------------------------
# multi-worker throughput vs a single process
# ---------------------------------------------------------------------------

def _subprocess_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    return env


def _serve(workers: int, cache_dir: Path):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--pool-size", "2",
            "--serve-workers", str(workers),
            "--cache", "--cache-dir", str(cache_dir),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=_subprocess_env(),
        text=True,
    )
    banner = proc.stdout.readline().strip()
    match = re.search(r"listening on http://[^:]+:(\d+)$", banner)
    assert match, f"unexpected banner: {banner!r}"
    return proc, int(match.group(1))


def test_perf_multiworker_throughput(tmp_path):
    """One loadgen run against 1 and 4 workers over a shared cache."""
    cache_dir = tmp_path / "cache"
    build_scenario(
        ScenarioConfig.small(seed=7), cache=ArtifactCache(cache_dir)
    )
    throughput: Dict[int, float] = {}
    for workers in (1, 4):
        proc, port = _serve(workers, cache_dir)
        try:
            plan = prepare_plan(
                "127.0.0.1", port, preset="small", seed=7,
                batch_size=BATCH_SIZE,
            )
            result = run_loadgen(plan, concurrency=8, duration_s=4.0)
        finally:
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=30)
        assert result.errors == 0
        assert result.total_requests > 0
        throughput[workers] = result.throughput_rps
        _RESULTS[f"service_throughput_{workers}w"] = {
            "serve_workers": workers,
            "throughput_rps": round(result.throughput_rps, 2),
            "concurrency": result.concurrency,
            "duration_s": round(result.duration_s, 2),
            "latency_ms": result.latency_ms,
        }
    speedup = throughput[4] / throughput[1]
    cores = _cores()
    print(f"\n[workers] 1w {throughput[1]:.0f} rps, "
          f"4w {throughput[4]:.0f} rps, speedup {speedup:.2f}x "
          f"({cores} cores)")
    _RESULTS["service_throughput_4w"]["speedup_vs_1w"] = round(speedup, 2)
    if cores >= 4:
        # The acceptance bar only means something when the host can
        # actually run four workers in parallel.
        assert speedup >= 2.0
    else:
        print(f"[workers] cpu_limited: {cores} core(s) — recording the "
              "honest number without asserting the 2x bar")
