"""Figure 1 — regional imbalance.

Paper series (April 2018):

  link shares:  R° 0.39, AR° 0.15, L° 0.14, AP° 0.08, AR-R 0.08,
                AP-R 0.06, AP-AR 0.03, AF-R 0.02, AR-L 0.02, AF° 0.01,
                L-R 0.01
  coverage:     R° 0.15, AR° 0.31, L° 0.00, AP° 0.05, AR-R 0.32,
                AP-R 0.07, AP-AR 0.17, AF-R 0.04, AR-L 0.18, AF° 0.00,
                L-R 0.08

Shape targets asserted here: region-internal links dominate; R° is the
largest class; AR° and L° are of comparable size, yet AR° enjoys an
order of magnitude more validation coverage while L° (and AF°) sit at
essentially zero.
"""

from repro.analysis.report import render_bias_figure, render_class_shares


def test_fig1_regional_imbalance(paper, benchmark):
    profile = benchmark(paper.regional_bias)
    print()
    print(render_bias_figure(profile, "Figure 1 (regional imbalance)"))
    print()
    print(render_class_shares(profile))

    by_name = profile.by_name()
    # Region-internal classes dominate the inferred links (paper: ~79%).
    internal = sum(c.share for c in profile.classes if c.class_name.endswith("°"))
    assert internal > 0.55

    # R° is the largest class.
    assert profile.classes[0].class_name == "R°"

    # The LACNIC hole: L° carries a real share of links but has
    # near-zero coverage; AFRINIC-internal likewise.
    assert by_name["L°"].share > 0.04
    assert by_name["L°"].coverage < 0.02
    assert by_name["AF°"].coverage < 0.05

    # ARIN-internal links are dramatically better covered than L°.
    assert by_name["AR°"].coverage > 10 * max(by_name["L°"].coverage, 0.005)

    # The mismatch detector flags L° exactly as §5 describes.
    mismatches = {c.class_name for c in profile.mismatch_classes(0.04, 0.02)}
    assert "L°" in mismatches
