"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark works on the **paper-scale** default scenario (seed
2018, ~2500 ASes, 160 vantage points, six churn rounds), built once per
session.  Benchmarks both *print* the reproduced table/figure — so that
``pytest benchmarks/ --benchmark-only`` regenerates the paper's rows
and series — and *assert* the qualitative shape the paper reports.

The ablation benchmarks (DESIGN.md §5) rebuild smaller scenarios with
one mechanism changed at a time; they use a reduced AS count to keep
the whole suite in the minutes range.
"""

from __future__ import annotations

import pytest

from repro import ScenarioConfig, build_scenario, default_scenario
from repro.scenario import Scenario


@pytest.fixture(scope="session")
def paper() -> Scenario:
    """The cached paper-scale scenario."""
    scenario = default_scenario()
    print("\n[scenario]", scenario.corpus.stats())
    print("[validation]", scenario.validation.report.as_dict())
    return scenario


def ablation_config(**kwargs) -> ScenarioConfig:
    """A mid-sized config for mechanism ablations."""
    config = ScenarioConfig.default()
    config.topology.n_ases = 1200
    config.measurement.n_vantage_points = 100
    config.measurement.n_churn_rounds = 2
    for key, value in kwargs.items():
        setattr(config, key, value)
    return config


@pytest.fixture(scope="session")
def ablation_base() -> Scenario:
    """The unmodified mid-sized scenario ablations compare against."""
    return build_scenario(ablation_config())
