"""Figure 2 — topological imbalance.

Paper series (April 2018):

  link shares:  S-TR 0.48, TR° 0.34, S-T1 0.07, S° 0.04, T1-TR 0.04,
                H-TR 0.02, H-S 0.01, H-T1 0.00
  coverage:     S-TR 0.06, TR° 0.12, S-T1 0.74, S° 0.00, T1-TR 0.74,
                H-TR 0.07, H-S 0.00, H-T1 0.58

Shape targets: S-TR and TR° together hold the bulk of the inferred
links yet have low coverage, while substantial validation exists only
for classes incident to a Tier-1.
"""

from repro.analysis.report import render_bias_figure, render_class_shares


def test_fig2_topological_imbalance(paper, benchmark):
    profile = benchmark(paper.topological_bias)
    print()
    print(render_bias_figure(profile, "Figure 2 (topological imbalance)"))
    print()
    print(render_class_shares(profile))

    by_name = profile.by_name()

    # The two majority classes (paper: 82 % in S-TR + TR°).
    majority = by_name["S-TR"].share + by_name["TR°"].share
    assert majority > 0.6
    assert by_name["S-TR"].share > by_name["TR°"].share

    # ... but their validation coverage is poor,
    assert by_name["S-TR"].coverage < 0.35
    assert by_name["TR°"].coverage < 0.45

    # while Tier-1-incident classes are heavily validated.
    assert by_name["T1-TR"].coverage > 2 * by_name["TR°"].coverage
    assert by_name["S-T1"].coverage > 2 * by_name["S-TR"].coverage

    # The S-TR class is dominated by P2C relationships (the paper
    # reports 67.8 % P2C in validation; ground truth in the simulator).
    graph = paper.topology.graph
    s_tr_links = [
        key for key in paper.class_links("S-TR") if graph.has_link(*key)
    ]
    p2c = sum(
        1 for key in s_tr_links if graph.link(*key).rel.name == "P2C"
    )
    assert p2c / len(s_tr_links) > 0.6
