"""Substrate performance benchmarks.

Not paper experiments — these time the simulator's hot paths so
regressions in the engine are caught alongside the science:

* per-origin route computation (the inner loop of collection),
* corpus indexing throughput,
* full ASRank inference over the paper-scale corpus.
"""

from repro.bgp.policy import AdjacencyIndex
from repro.bgp.propagation import compute_route_tree
from repro.datasets.paths import CollectedRoute, PathCorpus
from repro.inference.asrank import ASRank


def test_perf_route_tree(paper, benchmark):
    adjacency = AdjacencyIndex(paper.topology.graph)
    origins = paper.topology.graph.asns()[:50]

    def run():
        for origin in origins:
            compute_route_tree(adjacency, origin)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_perf_corpus_indexing(paper, benchmark):
    routes = [route for _, route in zip(range(20000), paper.corpus.routes())]

    def rebuild():
        corpus = PathCorpus()
        for route in routes:
            corpus.add_route(route)
        return corpus

    corpus = benchmark.pedantic(rebuild, rounds=3, iterations=1)
    assert len(corpus) == len(routes)


def test_perf_asrank_inference(paper, benchmark):
    rels = benchmark.pedantic(
        lambda: ASRank().infer(paper.corpus), rounds=3, iterations=1
    )
    assert len(rels) == len(paper.corpus.visible_links())
