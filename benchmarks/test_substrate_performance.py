"""Substrate performance benchmarks.

Not paper experiments — these time the simulator's hot paths so
regressions in the engine are caught alongside the science:

* per-origin route computation (the inner loop of collection),
* corpus indexing throughput (ingest + the derived views inference
  reads: links, degrees, triplets),
* full ASRank inference over the paper-scale corpus,
* parallel propagation speedup over serial (multi-core hosts only),
* warm-cache scenario builds that skip propagation entirely.

Every benchmark records its median into ``BENCH_substrate.json`` (see
:mod:`repro.utils.benchreport`) together with the paper-scale corpus's
columnar memory footprint, so CI archives machine-readable numbers and
successive runs can be diffed.  Set ``BENCH_OUTPUT_DIR`` to redirect
the report; partial runs merge into an existing file.
"""

import os
import time
from typing import Any, Dict

import pytest

from repro import ScenarioConfig, build_scenario
from repro.bgp.collectors import collect_corpus
from repro.bgp.policy import AdjacencyIndex
from repro.bgp.propagation import (
    _compute_route_tree_legacy,
    compute_route_tree,
    plane_of,
)
from repro.datasets.paths import PathCorpus
from repro.inference.asrank import ASRank
from repro.pipeline.cache import ArtifactCache
from repro.service.query import corpus_stats_payload
from repro.utils.benchreport import merge_bench_report

#: name -> {"median_seconds": ..., "min_seconds": ..., ...}
_RESULTS: Dict[str, Dict[str, Any]] = {}
#: top-level report keys (corpus stats/memory), replaced wholesale.
_EXTRA: Dict[str, Any] = {}


def _record(name: str, benchmark, **extra: Any) -> None:
    stats = benchmark.stats.stats
    entry: Dict[str, Any] = {
        "median_seconds": float(stats.median),
        "min_seconds": float(stats.min),
        "rounds": int(stats.rounds),
    }
    entry.update(extra)
    _RESULTS[name] = entry


@pytest.fixture(scope="module", autouse=True)
def _bench_report():
    """Write ``BENCH_substrate.json`` after the module's benchmarks."""
    yield
    if not _RESULTS:
        return
    out_dir = os.environ.get("BENCH_OUTPUT_DIR") or "."
    path = os.path.join(out_dir, "BENCH_substrate.json")
    report = merge_bench_report(path, dict(_RESULTS), extra=dict(_EXTRA))
    print(f"\n[bench] wrote {path} ({len(report['benchmarks'])} entries)")


def test_perf_route_tree(paper, benchmark):
    adjacency = AdjacencyIndex(paper.topology.graph)
    origins = paper.topology.graph.asns()[:50]

    def run():
        for origin in origins:
            compute_route_tree(adjacency, origin)

    benchmark.pedantic(run, rounds=3, iterations=1)
    _record("route_tree_50_origins", benchmark)


def test_perf_corpus_indexing(paper, benchmark):
    routes = [route for _, route in zip(range(20000), paper.corpus.routes())]

    def rebuild():
        corpus = PathCorpus()
        corpus.add_routes(routes)
        # Force the derived views the inference layer consumes — the
        # columnar layout indexes lazily, so ingest alone would not be
        # an honest indexing benchmark.
        corpus.visible_links()
        corpus.transit_degrees()
        corpus.node_degrees()
        corpus.triplet_continuations()
        corpus.stats()
        return corpus

    corpus = benchmark.pedantic(rebuild, rounds=3, iterations=1)
    assert len(corpus) == len(routes)
    _record(
        "corpus_indexing",
        benchmark,
        n_routes=len(routes),
        corpus_memory_bytes=int(corpus.memory_report()["total_bytes"]),
    )


def test_perf_asrank_inference(paper, benchmark):
    rels = benchmark.pedantic(
        lambda: ASRank().infer(paper.corpus), rounds=3, iterations=1
    )
    assert len(rels) == len(paper.corpus.visible_links())
    _record("asrank_inference", benchmark)
    _EXTRA["corpus"] = corpus_stats_payload(paper.corpus)


#: The propagation scale sweep.  The 10k case always runs (and lands in
#: the CI bench artifact); the 50k/100k cases take minutes of topology
#: generation, so they are opt-in via ``REPRO_BENCH_SCALE=full``.
SCALE_SWEEP = (10_000, 50_000, 100_000)


@pytest.mark.parametrize("n_ases", SCALE_SWEEP)
def test_perf_propagation_scale_sweep(benchmark, n_ases):
    """Vectorized frontier propagation at 10k/50k/100k ASes.

    Records, per scale: topology generation time, the one-time CSR
    plane build, and the per-origin propagation cost over a 20-origin
    sample — the numbers that show the engine holds up at real
    Internet size, not just paper scale.
    """
    from repro.topology.generator import generate_topology

    if n_ases > 10_000 and os.environ.get("REPRO_BENCH_SCALE") != "full":
        pytest.skip("set REPRO_BENCH_SCALE=full to run the 50k/100k sweep")
    config = ScenarioConfig.default()
    config.topology.n_ases = n_ases
    start = time.perf_counter()
    topology = generate_topology(config)
    gen_seconds = time.perf_counter() - start
    adjacency = AdjacencyIndex(topology.graph)
    start = time.perf_counter()
    plane = plane_of(adjacency)
    plane_seconds = time.perf_counter() - start
    origins = adjacency.asns[:20]

    def run():
        for origin in origins:
            plane.propagate(origin)

    benchmark.pedantic(run, rounds=3, iterations=1)
    per_origin_ms = benchmark.stats.stats.median / len(origins) * 1000.0
    _record(
        f"propagation_scale_{n_ases}",
        benchmark,
        n_ases=n_ases,
        n_links=int(topology.graph.stats()["n_links"]),
        gen_seconds=gen_seconds,
        plane_build_seconds=plane_seconds,
        per_origin_ms=per_origin_ms,
    )


def test_perf_engine_comparison_paper_scale(paper, benchmark):
    """The vectorized engine must beat the legacy dict engine at paper
    scale — the acceptance bar for shipping it as the default."""
    adjacency = AdjacencyIndex(paper.topology.graph)
    plane = plane_of(adjacency)
    origins = paper.topology.graph.asns()[:100]

    start = time.perf_counter()
    for origin in origins:
        _compute_route_tree_legacy(adjacency, origin)
    legacy_seconds = time.perf_counter() - start

    def run():
        for origin in origins:
            plane.propagate(origin)

    benchmark.pedantic(run, rounds=3, iterations=1)
    vectorized_seconds = benchmark.stats.stats.median
    speedup = legacy_seconds / vectorized_seconds
    print(f"\n[engine] legacy {legacy_seconds:.2f}s, "
          f"vectorized {vectorized_seconds:.2f}s, speedup {speedup:.2f}x")
    _record(
        "propagation_engine_comparison",
        benchmark,
        n_origins=len(origins),
        legacy_seconds=legacy_seconds,
        speedup=speedup,
    )
    assert speedup > 1.2


def _parallel_bench_config() -> ScenarioConfig:
    """A ≥500-AS scenario large enough for the pool to amortise."""
    config = ScenarioConfig.default()
    config.topology.n_ases = 600
    config.measurement.n_vantage_points = 60
    config.measurement.n_churn_rounds = 0
    return config


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup needs >= 4 physical workers; on fewer "
    "cores pool overhead dominates (equivalence is still enforced by "
    "tests/pipeline/test_parallel_equivalence.py)",
)
def test_perf_parallel_collection_speedup(benchmark):
    """Four-worker collection must be >= 2x faster than serial."""
    from repro.topology.generator import generate_topology

    config = _parallel_bench_config()
    topology = generate_topology(config)

    start = time.perf_counter()
    serial_corpus, _, _, _ = collect_corpus(topology, config)
    serial_seconds = time.perf_counter() - start

    parallel_corpus = benchmark.pedantic(
        lambda: collect_corpus(topology, config, workers=4)[0],
        rounds=3,
        iterations=1,
    )
    parallel_seconds = benchmark.stats.stats.min
    assert len(parallel_corpus) == len(serial_corpus)
    speedup = serial_seconds / parallel_seconds
    print(f"\n[parallel] serial {serial_seconds:.2f}s, "
          f"4 workers {parallel_seconds:.2f}s, speedup {speedup:.2f}x")
    _record(
        "parallel_collection",
        benchmark,
        serial_seconds=serial_seconds,
        speedup=speedup,
    )
    assert speedup >= 2.0


def test_perf_warm_cache_build(benchmark, tmp_path, monkeypatch):
    """A warm-cache build skips propagation and is much faster."""
    import repro.scenario as scenario_module

    config = _parallel_bench_config()
    cache = ArtifactCache(root=tmp_path / "cache")

    start = time.perf_counter()
    build_scenario(config, cache=cache)
    cold_seconds = time.perf_counter() - start

    # Any attempt to re-propagate on the warm path is a hard failure,
    # not just a slow run.
    def boom(*args, **kwargs):
        raise AssertionError("propagation ran on a warm cache")

    monkeypatch.setattr(scenario_module, "collect_rounds", boom)
    warm = benchmark.pedantic(
        lambda: build_scenario(config, cache=cache), rounds=3, iterations=1
    )
    warm_seconds = benchmark.stats.stats.min
    assert warm.cache is cache and cache.hits >= 2
    print(f"\n[cache] cold {cold_seconds:.2f}s, "
          f"warm {warm_seconds:.2f}s "
          f"({cold_seconds / warm_seconds:.1f}x faster)")
    _record("warm_cache_build", benchmark, cold_seconds=cold_seconds)
    assert warm_seconds < cold_seconds
