"""Figures 4-6 (Appendix A) — does performance correlate with coverage?

The paper subsamples the validated T1-TR links at 50-99 % (step 1 %,
100 repetitions each) and shows that precision, recall, and MCC medians
stay flat while the IQR widens as samples shrink — i.e. measured
performance is not an artefact of how much of a class is validated.
"""

from repro.analysis.report import render_sampling_figure
from repro.analysis.sampling import iqr_widening, sampling_experiment, trend_slope


def _run(paper):
    return sampling_experiment(
        paper.class_links("T1-TR"),
        paper.infer("asrank"),
        paper.validation,
        class_name="T1-TR",
        sizes_percent=range(50, 100),
        repetitions=100,
        seed=2018,
    )


def test_fig456_sampling_correlation(paper, benchmark):
    result = benchmark.pedantic(_run, args=(paper,), rounds=1, iterations=1)
    print()
    for metric, figure in (("ppv_p2p", "Figure 4"), ("tpr_p2p", "Figure 5"),
                           ("mcc", "Figure 6")):
        text = render_sampling_figure(result, metric)
        # print a decimated view (every 10th size) to keep output sane
        lines = text.splitlines()
        print(f"{figure}:")
        print("\n".join(lines[:2] + lines[2::10]))
        print()

    # No trend: the per-size medians are flat (paper: "neither an
    # increasing nor a decreasing trend").
    for metric in ("ppv_p2p", "tpr_p2p", "mcc"):
        slope = trend_slope(result.median_series(metric))
        print(f"{metric} median slope per % of sample size: {slope:+.5f}")
        assert abs(slope) < 0.002

    # Variance increases with decreasing sample size.
    widening = iqr_widening(result, "mcc")
    print(f"MCC IQR widening (50% vs 99%): {widening:+.4f}")
    assert widening >= 0
