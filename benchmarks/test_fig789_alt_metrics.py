"""Figures 7-9 (Appendix B) — imbalance heatmaps for alternative metrics.

Same construction as Figure 3 but binning TR° links by (7) PPDC size,
(8) PPDC size ignoring links incident to route-collector peers, and
(9) node degree.  The paper reports these variants "suggest an even
stronger mismatch" than the transit-degree view.
"""

import pytest

from repro.analysis.report import render_imbalance_heatmaps


@pytest.mark.parametrize(
    "metric,figure",
    [("ppdc", "Figure 7"), ("ppdc_no_vp", "Figure 8"), ("node_degree", "Figure 9")],
)
def test_fig789_alternative_metric_heatmaps(paper, benchmark, metric, figure):
    heatmaps = benchmark.pedantic(
        paper.imbalance_heatmaps, args=(metric,), rounds=1, iterations=1
    )
    print(f"\n{figure} ({metric}):")
    print(render_imbalance_heatmaps(heatmaps))

    assert heatmaps.inference.total > 100
    corner_inf, corner_val = heatmaps.corner_masses(0.2, 0.2)
    # The bottom-left concentration of inferred links persists under
    # every metric; validation does not concentrate meaningfully harder
    # (dropping VP-incident links in Figure 8 removes exactly the
    # best-validated large links, so a small tolerance applies).
    assert corner_inf > 0.4
    assert corner_val <= corner_inf + 0.05
    assert heatmaps.mismatch() > 0


def test_appendix_b_mismatch_at_least_fig3(paper, benchmark):
    """The paper: alternative metrics suggest an even stronger
    mismatch.  Compare distances against the Figure 3 baseline."""
    base = benchmark.pedantic(
        lambda: paper.imbalance_heatmaps("transit_degree").mismatch(),
        rounds=1,
        iterations=1,
    )
    node_degree = paper.imbalance_heatmaps("node_degree").mismatch()
    ppdc = paper.imbalance_heatmaps("ppdc").mismatch()
    print(
        f"\nmismatch: transit_degree {base:.4f}, node_degree "
        f"{node_degree:.4f}, ppdc {ppdc:.4f}"
    )
    assert max(node_degree, ppdc) > base * 0.5
