"""Figure 3 — transit-degree imbalance for TR° links.

The paper bins every transit-to-transit link by the transit degree of
its two endpoints (larger on x, capped at 1500; smaller on y, capped at
150) and contrasts the inferred-links histogram with the validatable
one: "the vast majority of TR° links that we infer are between
relatively small transit ASes ... this mismatches with the more uniform
distribution of our validation data."
"""

from repro.analysis.report import render_imbalance_heatmaps


def test_fig3_transit_degree_heatmaps(paper, benchmark):
    heatmaps = benchmark(paper.imbalance_heatmaps, "transit_degree")
    print()
    print("paper caps (1500/150):")
    print(render_imbalance_heatmaps(heatmaps))
    # The synthetic Internet is ~20x smaller than the real one, so the
    # paper's caps squeeze everything into the first column; re-render
    # with proportionally scaled caps to expose the distribution shape.
    scaled = paper.imbalance_heatmaps("transit_degree", caps=(300.0, 60.0))
    print("\nscaled caps (300/60):")
    print(render_imbalance_heatmaps(scaled))

    assert heatmaps.inference.total > 300
    assert heatmaps.validation.total > 50

    # Inference mass concentrates in the bottom-left corner...
    corner_inf, corner_val = heatmaps.corner_masses(0.2, 0.2)
    assert corner_inf > 0.5

    # ...validation mass is spread out relative to it.
    assert corner_val < corner_inf

    # And the two distributions measurably mismatch.
    assert heatmaps.mismatch() > 0.005
