"""Table 3 — per-group validation table for TopoScope.

Paper headline values: Total° PPV_P 0.976 / MCC 0.974 — between ASRank
(0.980) and ProbLink (0.957) overall, with the same problem classes
(AR-L, S-T1, T1-TR at PPV_P 0.798).
"""

from repro.analysis.report import render_validation_table


def test_table3_toposcope(paper, benchmark):
    table = benchmark(paper.validation_table, "toposcope")
    print()
    print(render_validation_table(table))

    total = table.total
    assert total.ppv_p2c > 0.8
    assert total.mcc > 0.65

    t1_tr = table.metrics("T1-TR")
    assert t1_tr is not None
    assert t1_tr.ppv_p2p < total.ppv_p2p

    # Ordering across the three algorithms (paper MCC:
    # ASRank 0.980 >= TopoScope 0.974 >= ProbLink 0.957).
    asrank_mcc = paper.validation_table("asrank").total.mcc
    problink_mcc = paper.validation_table("problink").total.mcc
    print(
        f"\nTotal MCC ordering: asrank {asrank_mcc:.3f}, "
        f"toposcope {total.mcc:.3f}, problink {problink_mcc:.3f} "
        "(paper: 0.980, 0.974, 0.957)"
    )
    assert total.mcc <= asrank_mcc + 0.02
    assert total.mcc >= problink_mcc - 0.05
