"""Devtools performance benchmarks: whole-program lint runtime.

Not paper experiments — these time the lint gate itself, because PR 8
put it on every CI run with the interprocedural pass enabled:

* cold whole-program lint over ``src`` (summary extraction + graph
  assembly + the FLOW/PERF/CONC rules, empty cache),
* warm whole-program lint (every module summary served from the
  content-hash cache — the steady state CI actually pays for),
* the per-file-only pass, as the floor the program pass is priced
  against.

Medians land in ``BENCH_devtools.json`` (see
:mod:`repro.utils.benchreport`) together with the cache hit counts and
project-graph size, so a regression in analysis cost — or a cache that
silently stopped hitting — shows up as a diffable number.  Set
``BENCH_OUTPUT_DIR`` to redirect the report.
"""

import os
from pathlib import Path
from typing import Any, Dict

import pytest

from repro.devtools import LintConfig, run_lint
from repro.devtools.analysis import SummaryCache
from repro.utils.benchreport import merge_bench_report

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: name -> {"median_seconds": ..., "min_seconds": ..., ...}
_RESULTS: Dict[str, Dict[str, Any]] = {}
#: top-level report keys (graph size, cache behaviour).
_EXTRA: Dict[str, Any] = {}


def _record(name: str, benchmark, **extra: Any) -> None:
    stats = benchmark.stats.stats
    entry: Dict[str, Any] = {
        "median_seconds": float(stats.median),
        "min_seconds": float(stats.min),
        "rounds": int(stats.rounds),
    }
    entry.update(extra)
    _RESULTS[name] = entry


@pytest.fixture(scope="module", autouse=True)
def _bench_report():
    """Write ``BENCH_devtools.json`` after the module's benchmarks."""
    yield
    if not _RESULTS:
        return
    out_dir = os.environ.get("BENCH_OUTPUT_DIR") or "."
    path = os.path.join(out_dir, "BENCH_devtools.json")
    report = merge_bench_report(path, dict(_RESULTS), extra=dict(_EXTRA))
    print(f"\n[bench] wrote {path} ({len(report['benchmarks'])} entries)")


def test_perf_lint_per_file_only(benchmark):
    def run():
        return run_lint([SRC], LintConfig())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.findings == []
    _record("lint_per_file_src", benchmark,
            files=result.files_checked)


def test_perf_lint_whole_program_cold(benchmark, tmp_path):
    counter = iter(range(1000))

    def run():
        # A fresh cache directory per round: every summary is a miss.
        cache = SummaryCache(tmp_path / f"cold{next(counter)}")
        return run_lint([SRC], LintConfig(), whole_program=True,
                        summary_cache=cache)

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.findings == []
    assert result.analysis["hits"] == 0
    _record("lint_whole_program_cold", benchmark,
            modules=result.analysis["modules"],
            call_edges=result.analysis["call_edges"])
    _EXTRA["project_graph"] = {
        "modules": result.analysis["modules"],
        "functions": result.analysis["functions"],
        "call_edges": result.analysis["call_edges"],
    }


def test_perf_lint_whole_program_warm(benchmark, tmp_path):
    root = tmp_path / "warm"
    # Prime once so every benchmark round runs fully warm.
    primed = run_lint([SRC], LintConfig(), whole_program=True,
                      summary_cache=SummaryCache(root))
    assert primed.analysis["stores"] == primed.analysis["modules"]

    def run():
        return run_lint([SRC], LintConfig(), whole_program=True,
                        summary_cache=SummaryCache(root))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.findings == []
    assert result.analysis["misses"] == 0
    assert result.findings == primed.findings  # byte-identical warm run
    _record("lint_whole_program_warm", benchmark,
            cache_hits=result.analysis["hits"])
