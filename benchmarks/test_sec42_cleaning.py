"""§4.2 — label quality & treatment.

The paper finds, in the raw April 2018 validation data: 15 AS_TRANS
relationships, 112 reserved-ASN relationships, 246 multi-label entries
involving 233 ASes, 210 sibling relationships in validation, and 2800
sibling links among the inferred relationships.  It further shows that
the multi-label treatment silently changed published counts (TopoScope
matches first-label-P2P, ProbLink matches always-P2C).
"""

from repro.topology.graph import RelType
from repro.validation.cleaning import (
    MultiLabelPolicy,
    clean_validation,
    count_sibling_links,
)


def test_sec42_cleaning_counts(paper, benchmark):
    cleaned = benchmark.pedantic(
        clean_validation,
        args=(paper.raw_validation.data, paper.topology.orgs),
        rounds=1,
        iterations=1,
    )
    report = cleaned.report
    print("\n§4.2 label treatment (paper: 15 AS_TRANS, 112 reserved, "
          "246 multi-label / 233 ASes, 210 siblings, 2800 inferred siblings)")
    print("measured:", report.as_dict())

    cfg = paper.config.validation
    assert report.n_as_trans_links == cfg.n_as_trans_entries
    assert report.n_reserved_links >= cfg.n_reserved_asn_entries - 5
    assert report.n_multi_label_links > 0
    assert report.n_multi_label_ases >= report.n_multi_label_links

    inferred_siblings = count_sibling_links(
        paper.inferred_links(exclude_siblings=False), paper.topology.orgs
    )
    print("sibling links among inferred:", inferred_siblings)
    assert inferred_siblings > report.n_sibling_links


def test_sec42_multilabel_policy_changes_counts(paper, benchmark):
    """The policy choice shifts P2P/P2C counts exactly as §4.2 found in
    the published numbers of TopoScope and ProbLink."""
    raw, orgs = paper.raw_validation.data, paper.topology.orgs
    ignore = benchmark.pedantic(
        clean_validation,
        args=(raw, orgs, MultiLabelPolicy.IGNORE),
        rounds=1,
        iterations=1,
    )
    first_p2p = clean_validation(raw, orgs, MultiLabelPolicy.FIRST_P2P_ELSE_P2C)
    always = clean_validation(raw, orgs, MultiLabelPolicy.ALWAYS_P2C)

    n_multi = ignore.report.n_multi_label_links
    print(f"\nmulti-label entries: {n_multi}")
    for name, cleaned in (("ignore", ignore), ("first_p2p", first_p2p),
                          ("always_p2c", always)):
        counts = cleaned.counts()
        print(f"  {name:10s} P2P={counts[RelType.P2P]} "
              f"P2C={counts[RelType.P2C]} total={len(cleaned)}")

    assert len(first_p2p) == len(always) == len(ignore) + n_multi
    assert first_p2p.counts()[RelType.P2P] >= always.counts()[RelType.P2P]
    assert always.counts()[RelType.P2C] >= ignore.counts()[RelType.P2C]
