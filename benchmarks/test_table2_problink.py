"""Table 2 — per-group validation table for ProbLink.

Paper headline values: Total° PPV_P 0.966 / MCC 0.957 — slightly below
ASRank overall, with the T1-TR P2P precision collapsing further
(0.718 vs ASRank's 0.839) and S-T1 partially recovered in recall.  The
paper's argument: optimising global correctness degrades small classes.
"""

from repro.analysis.report import render_validation_table


def test_table2_problink(paper, benchmark):
    table = benchmark(paper.validation_table, "problink")
    print()
    print(render_validation_table(table))

    total = table.total
    assert total.ppv_p2c > 0.8
    assert total.mcc > 0.6

    t1_tr = table.metrics("T1-TR")
    assert t1_tr is not None
    assert t1_tr.mcc < total.mcc

    # Cross-table comparison: ProbLink's overall MCC does not beat
    # ASRank's (paper: 0.957 vs 0.980).
    asrank_total = paper.validation_table("asrank").total
    assert total.mcc <= asrank_total.mcc + 0.01
    print(
        f"\nTotal MCC: problink {total.mcc:.3f} vs asrank "
        f"{asrank_total.mcc:.3f} (paper: 0.957 vs 0.980)"
    )
