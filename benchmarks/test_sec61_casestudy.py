"""§6.1 — the Cogent (AS174) case study.

Paper findings: 54 of 111 wrongly-P2P-inferred T1-TR links involve
AS174; no ``C | AS174 | X`` triplet exists for any target link; the
looking glass shows all persisting target links tagged with 174:990
(do-not-export-to-peers), i.e. the customers bought partial transit —
except one case of stale validation data.
"""

from repro.bgp.communities import Meaning


def test_sec61_cogent_case_study(paper, benchmark):
    result = benchmark.pedantic(
        paper.case_study, args=("asrank",), rounds=1, iterations=1
    )
    cogent = paper.topology.cogent_asn

    print(f"\nwrongly-P2P T1-TR links: {result.n_wrong} (paper: 111)")
    print(f"focus clique member: AS{result.focus_member} (paper: AS174)")
    print(f"focus share of wrong links: {result.focus_share:.2f} (paper: 0.49)")
    print(f"targets audited via looking glass: {len(result.targets)}")
    print(f"  partial transit confirmed: {result.n_partial_transit_confirmed}")
    print(f"  stale validation: {result.n_stale_validation}")

    assert result.n_wrong > 5
    # Concentration on the Cogent-like AS.
    assert result.focus_member == cogent
    assert result.focus_share > 0.25

    # No clique triplet exists for any target link (the algorithmic
    # cause of the misinference).
    assert result.targets
    assert not any(t.has_clique_triplet for t in result.targets)

    # The looking glass explains (almost) every target: the received
    # routes carry the do-not-export-to-peers community.
    explained = result.n_partial_transit_confirmed + result.n_stale_validation
    assert explained == len(result.targets)
    assert result.n_partial_transit_confirmed >= result.n_stale_validation

    # And the community in question is literally 174:990-shaped.
    marker = paper.communities.codebook(cogent).encode(Meaning.NO_EXPORT_TO_PEERS)
    print(f"no-export community of AS{cogent}: {marker[0]}:{marker[1]}")
    assert marker[0] == cogent
