"""Consensus disagreement — the paper's problem classes, found blind.

§7 argues future efforts need "more diverse goals" than one global
correctness number.  A zero-knowledge instrument in that spirit: run
the three classifiers and measure where they *disagree*.  This bench
shows the disagreement concentrates on the same classes the paper's
validation tables flag (T1-TR well above the easy bulk), i.e. the
problem classes are discoverable without any validation data at all.
"""

from repro.inference.asrank import ASRank
from repro.inference.consensus import ConsensusClassifier, disagreement_by_class
from repro.inference.problink import ProbLink
from repro.inference.toposcope import TopoScope


def test_disagreement_finds_problem_classes(paper, benchmark):
    classifier = ConsensusClassifier([
        ASRank(),
        ProbLink(ixps=paper.topology.ixps),
        TopoScope(ixps=paper.topology.ixps),
    ])
    benchmark.pedantic(
        classifier.infer, args=(paper.corpus,), rounds=1, iterations=1
    )
    per_class = disagreement_by_class(
        classifier.disagreement_, paper.topological_classifier().classify
    )
    print("\nmean panel disagreement per topological class:")
    for name, value in sorted(per_class.items(), key=lambda kv: -kv[1]):
        print(f"  {name:6s} {value:.3f}")
    contested = classifier.contested_links(min_disagreement=0.3)
    print(f"contested links (>=1 dissenting vote): {len(contested)}")

    # The §6 problem class splits the panel harder than the easy bulk.
    assert per_class["T1-TR"] > per_class["S-TR"]
    assert contested
