"""Appendix C — the twelve candidate per-link features.

The paper lists twelve metrics that might identify further groups of
"hard links".  This benchmark extracts all of them for every inferred
link and sanity-checks that they separate the known-hard T1-TR
partial-transit links from the easy bulk — i.e. that the features are
actually informative, which is the premise of the appendix.
"""

import numpy as np

from repro.inference.base import infer_clique
from repro.inference.features import LinkFeatureExtractor


def _extractor(paper):
    graph = paper.topology.graph
    return LinkFeatureExtractor(
        paper.corpus,
        clique=infer_clique(paper.corpus),
        ixps=paper.topology.ixps,
        prefix_counts={n.asn: n.n_prefixes for n in graph.nodes()},
        address_counts={n.asn: n.n_addresses for n in graph.nodes()},
        manrs={n.asn for n in graph.nodes() if n.manrs_member},
        hijackers={n.asn for n in graph.nodes() if n.serial_hijacker},
    )


def test_appc_feature_extraction(paper, benchmark):
    extractor = _extractor(paper)
    rels = paper.infer("asrank")
    features = benchmark.pedantic(
        extractor.appendix_c_all, kwargs={"rels": rels}, rounds=1, iterations=1
    )
    assert len(features) == len(paper.corpus.visible_links())

    names = sorted(next(iter(features.values())))
    print("\nAppendix C features:", ", ".join(names))
    matrix = {
        name: np.array([f[name] for f in features.values()]) for name in names
    }
    print(f"{'feature':26s} {'mean':>10s} {'median':>10s} {'max':>12s}")
    for name in names:
        values = matrix[name]
        print(
            f"{name:26s} {values.mean():10.2f} "
            f"{np.median(values):10.2f} {values.max():12.1f}"
        )

    # The known-hard links (visible partial transit) must stand out on
    # visibility: they are only seen inside one provider's cone.
    graph = paper.topology.graph
    hard = [
        link.key
        for link in graph.links()
        if link.partial_transit and link.key in features
    ]
    assert hard
    hard_visibility = np.mean([features[k]["visibility_share"] for k in hard])
    all_visibility = matrix["visibility_share"].mean()
    print(
        f"\nvisibility share: partial-transit links {hard_visibility:.3f} "
        f"vs all links {all_visibility:.3f}"
    )
    assert hard_visibility < all_visibility
