"""Adversarial-plane performance benchmarks.

Times what the attack subsystem adds on top of honest collection so
pollution stays a marginal cost, not a second propagation pass:

* joint two-source propagation for one contested prefix at paper scale
  (~2500 ASes), vectorized engine;
* full corpus pollution — event planning plus per-event joint
  propagation and collection — on a 10k-AS topology;
* the clean-vs-polluted impact panel on a small scenario, the workload
  behind ``repro attack`` and ``POST /v1/adversarial/impact``.

Medians land in ``BENCH_adversarial.json`` (see
:mod:`repro.utils.benchreport`) with the pollution overhead relative
to clean collection, so CI can diff successive runs.  Set
``BENCH_OUTPUT_DIR`` to redirect the report.
"""

import os
import time
from typing import Any, Dict

import pytest

from repro import ScenarioConfig
from repro.adversarial.attacks import inject_attacks, plan_events
from repro.adversarial.impact import run_impact
from repro.bgp.collectors import collect_rounds, measurement_setup
from repro.bgp.policy import AdjacencyIndex
from repro.bgp.propagation import compute_attack_routes
from repro.config import AdversarialConfig
from repro.datasets.paths import PathCorpus
from repro.topology.generator import generate_topology
from repro.utils.benchreport import merge_bench_report

#: name -> {"median_seconds": ..., "min_seconds": ..., ...}
_RESULTS: Dict[str, Dict[str, Any]] = {}
_EXTRA: Dict[str, Any] = {}

_LAYER = {
    "attack": {
        "n_origin_hijacks": 3,
        "n_forged_origin_hijacks": 3,
        "n_route_leaks": 3,
    },
    "deployments": [
        {"policy": "rpki", "strategy": "top_cone", "top_n": 50},
        {"policy": "aspa", "strategy": "random", "fraction": 0.2},
    ],
}


def _record(name: str, benchmark, **extra: Any) -> None:
    stats = benchmark.stats.stats
    entry: Dict[str, Any] = {
        "median_seconds": float(stats.median),
        "min_seconds": float(stats.min),
        "rounds": int(stats.rounds),
    }
    entry.update(extra)
    _RESULTS[name] = entry


@pytest.fixture(scope="module", autouse=True)
def _bench_report():
    """Write ``BENCH_adversarial.json`` after the module's benchmarks."""
    yield
    if not _RESULTS:
        return
    out_dir = os.environ.get("BENCH_OUTPUT_DIR") or "."
    path = os.path.join(out_dir, "BENCH_adversarial.json")
    report = merge_bench_report(path, dict(_RESULTS), extra=dict(_EXTRA))
    print(f"\n[bench] wrote {path} ({len(report['benchmarks'])} entries)")


def test_perf_joint_propagation_paper_scale(paper, benchmark):
    """One contested prefix costs about one honest propagation pass."""
    adjacency = AdjacencyIndex(paper.topology.graph)
    asns = paper.topology.graph.asns()
    origin, attacker = asns[0], asns[-1]

    def run():
        for claim_dist in (0, 1):
            compute_attack_routes(adjacency, origin, attacker, claim_dist)

    benchmark.pedantic(run, rounds=3, iterations=1)
    _record("joint_propagation_paper_2_events", benchmark,
            n_ases=len(asns))


def test_perf_pollution_overhead_10k(benchmark):
    """Planning + injecting 9 events into a 10k-AS corpus."""
    config = ScenarioConfig.default()
    config.topology.n_ases = 10_000
    config.measurement.n_vantage_points = 120
    config.measurement.n_churn_rounds = 0
    config = config.replace(adversarial=AdversarialConfig.from_dict(_LAYER))
    topology = generate_topology(config)
    vps, communities, strippers = measurement_setup(topology, config)

    clean_start = time.perf_counter()
    clean = collect_rounds(
        topology, config.replace(adversarial=None),
        vps, communities, strippers,
    )
    clean_seconds = time.perf_counter() - clean_start

    def run():
        corpus = PathCorpus()
        corpus.add_routes(clean.routes())
        events = inject_attacks(
            topology, config, vps, communities, strippers, corpus
        )
        assert len(events) == len(plan_events(topology, config))
        return corpus

    polluted = benchmark.pedantic(run, rounds=3, iterations=1)
    overhead = benchmark.stats.stats.median / max(clean_seconds, 1e-9)
    _record("pollution_inject_10k_ases", benchmark,
            n_ases=10_000,
            clean_collection_seconds=clean_seconds,
            overhead_vs_clean_collection=overhead,
            corpus_paths_clean=len(clean),
            corpus_paths_polluted=len(polluted))
    print(f"\n[adversarial] 9-event pollution at 10k ASes: "
          f"{benchmark.stats.stats.median:.2f}s "
          f"({overhead:.2%} of a {clean_seconds:.2f}s clean collection)")


def test_perf_impact_panel_small(benchmark):
    """The full clean-vs-polluted panel behind ``repro attack``."""
    config = ScenarioConfig.small(seed=11)
    config.measurement.n_churn_rounds = 0
    config = config.replace(adversarial=AdversarialConfig.from_dict(_LAYER))

    def run():
        return run_impact(config)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    degraded = [
        impact.algorithm
        for impact in report.algorithms
        if impact.accuracy_delta < 0 or impact.new_fake_links > 0
    ]
    _record("impact_panel_small", benchmark,
            n_events=len(report.events),
            algorithms_degraded=sorted(degraded))
    assert degraded, "pollution left every algorithm untouched"
