"""Table 1 — per-group validation table for ASRank.

Paper headline values: Total° PPV_P 0.982 / TPR_P 0.990 / MCC 0.980;
the problem classes are AR-L (PPV_P 0.930), S-T1 (PPV_P 0.000) and
T1-TR (PPV_P 0.839), i.e. a 14 % P2P-precision drop for Tier-1-to-
transit peering links.

Shape targets asserted: high overall correctness, near-perfect P2C
precision, and the same trio of depressed P2P classes.
"""

from repro.analysis.report import render_validation_table


def test_table1_asrank(paper, benchmark):
    table = benchmark(paper.validation_table, "asrank")
    print()
    print(render_validation_table(table))

    total = table.total
    # "near-perfect" overall correctness, scaled expectations.
    assert total.ppv_p2p > 0.85
    assert total.ppv_p2c > 0.85
    assert total.mcc > 0.75

    # All three algorithms do near-perfect on P2C links (common wisdom).
    assert total.tpr_p2c > 0.9

    # The headline finding: T1-TR P2P precision sits well below Total°.
    t1_tr = table.metrics("T1-TR")
    assert t1_tr is not None
    assert t1_tr.ppv_p2p < total.ppv_p2p - 0.04
    drop = total.ppv_p2p - t1_tr.ppv_p2p
    print(f"\nT1-TR PPV_P drop vs Total°: {drop:.3f} (paper: 0.143)")

    # T1-TR shows up among the worst P2P classes.
    worst = {m.class_name for m in table.worst_p2p_classes(4)}
    assert "T1-TR" in worst

    # The S-T1 class degrades too (recall collapse: special-business
    # stubs peering with Tier-1s get called customers).
    s_t1 = table.metrics("S-T1")
    if s_t1 is not None and s_t1.n_p2p >= 10:
        assert s_t1.tpr_p2p < total.tpr_p2p
