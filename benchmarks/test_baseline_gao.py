"""Baseline comparison — Gao (2001) against the modern algorithms.

Not a paper table, but the natural sanity anchor for the evaluation
harness: the historical degree heuristic must be measurably worse than
ASRank/ProbLink/TopoScope on the same validation data, and its error
profile (peering inferred as transit) must differ in kind.
"""

from repro.analysis.report import render_validation_table


def test_baseline_gao(paper, benchmark):
    table = benchmark(paper.validation_table, "gao")
    print()
    print(render_validation_table(table))

    modern = paper.validation_table("asrank").total
    gao = table.total
    print(
        f"\nTotal MCC: gao {gao.mcc:.3f} vs asrank {modern.mcc:.3f}"
    )
    # Two decades of algorithmic work must show.
    assert gao.mcc < modern.mcc
    # Gao's characteristic failure: poor P2P recall (peerings are
    # swallowed by the degree-gradient heuristic).
    assert gao.tpr_p2p < modern.tpr_p2p
