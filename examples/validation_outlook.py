#!/usr/bin/env python3
"""The paper's §7 outlook, executed: three ways out of the validation
crisis.

1. **Re-sample over time** — the routing ecosystem churns; if a
   relationship is stable for k months, re-observing it after k months
   is a new data point.  How much validation data does that yield?
2. **Give operators something back** — generate Peerlock router
   filters and peering recommendations from the relationship data an
   operator would share.
3. **Handle complex relationships explicitly** — detect partial-transit
   candidates instead of letting them silently poison the P2P metrics.

Run:  python examples/validation_outlook.py
"""

from repro import ScenarioConfig, build_scenario
from repro.applications.peerlock import generate_peerlock
from repro.applications.recommender import recommend_peers
from repro.evolution import EvolutionConfig, EvolutionSimulator
from repro.inference.complex_rels import ComplexRelationshipDetector
from repro.utils.text import format_table


def _config() -> ScenarioConfig:
    config = ScenarioConfig.default()
    config.topology.n_ases = 700
    config.measurement.n_vantage_points = 70
    config.measurement.n_churn_rounds = 1
    return config


def outlook_resampling() -> None:
    print("=== 1. re-sampling over time ".ljust(64, "="))
    simulator = EvolutionSimulator(_config(), EvolutionConfig(months=5))
    result = simulator.run()
    rows = [
        [str(month), str(labels), str(visible)]
        for month, (labels, visible) in enumerate(
            zip(result.monthly_label_counts, result.monthly_visible_links)
        )
    ]
    print(format_table(["month", "validated links", "visible links"], rows))
    for gap in (1, 3, 6):
        unique = result.temporal.unique_samples(min_gap_months=gap)
        print(f"unique samples with a {gap}-month re-sampling gap: {unique}")
    print(f"over-sampling gain vs best single month: "
          f"{result.oversampling_gain(3):.2f}x")
    print(f"relationships observed changing: "
          f"{len(result.temporal.changed_links())}")
    print()


def outlook_incentives(scenario) -> None:
    print("=== 2. operator incentives ".ljust(64, "="))
    member = scenario.algorithm("asrank").clique_[0]
    config = generate_peerlock(member, scenario.infer("asrank"))
    print(f"Peerlock config for AS{member}: {len(config.rules)} filter rules")
    print("\n".join(config.render().splitlines()[:6]))
    print("  ...")
    stub = next(
        n.asn for n in scenario.topology.graph.nodes()
        if n.role.value == "stub"
    )
    recs = recommend_peers(
        stub, scenario.infer("asrank"), ixps=scenario.topology.ixps,
        require_colocation=False, top_n=3,
    )
    print(f"\npeering recommendations for stub AS{stub}:")
    for rec in recs:
        print(f"  peer with AS{rec.asn}: +{rec.new_cone_ases} ASes "
              f"settlement-free")
    print()


def outlook_complex(scenario) -> None:
    print("=== 3. explicit complex-relationship handling ".ljust(64, "="))
    detector = ComplexRelationshipDetector(
        base_inference=scenario.infer("asrank"),
        clique=scenario.algorithm("asrank").clique_,
    )
    report = detector.detect(scenario.corpus, scenario.raw_validation.data)
    graph = scenario.topology.graph
    print(f"partial-transit candidates: {len(report.partial_transit)}")
    for flagged in report.partial_transit[:5]:
        truth = (
            "true partial transit"
            if graph.has_link(*flagged.key) and graph.link(*flagged.key).partial_transit
            else "needs looking-glass confirmation"
        )
        print(f"  {flagged.key}: {flagged.evidence} -> {truth}")
    print(f"hybrid candidates: {len(report.hybrid)}")
    print()


def main() -> None:
    outlook_resampling()
    print("building scenario for incentives/complex handling ...")
    scenario = build_scenario(_config())
    outlook_incentives(scenario)
    outlook_complex(scenario)


if __name__ == "__main__":
    main()
