#!/usr/bin/env python3
"""The HTTP query service, end to end and in one process.

Starts ``repro.service`` on a background event-loop thread, builds the
small seed-7 scenario through ``POST /v1/scenarios``, then uses the
blocking :class:`ServiceClient` to

* look up single relationships and a batch (``/v1/rel/...``),
* walk an AS's visible neighbors (``/v1/as/{asn}/neighbors``),
* fetch the regional/topological bias profiles (``/v1/bias/...``),
* pull ASRank's validation table (``/v1/table/asrank``),
* run the Cogent-style case study (``/v1/casestudy``),
* and read the ops counters (``/metrics``).

The same endpoints are available out-of-process via
``repro serve --port 8787`` — see docs/service.md.

Run:  python examples/query_service.py
"""

from repro.service import ReproService, ServiceClient, ServiceError, serve_in_thread


def main() -> None:
    service = ReproService(pool_size=2)
    with serve_in_thread(service) as running:
        print(f"service listening on http://{running.host}:{running.port}")
        with ServiceClient(host=running.host, port=running.port,
                           timeout=300) as client:
            print("healthz:", client.healthz())

            print("\nbuilding the small seed-7 scenario over HTTP ...")
            built = client.build_scenario(preset="small", seed=7)
            print(f"  scenario {built['scenario']}  "
                  f"(built={built['built']}, "
                  f"{built['build_seconds']:.2f}s, "
                  f"{built['stats']['n_inferred_links']} inferred links)")

            as1, as2 = built["sample_links"][0]
            record = client.rel("asrank", as1, as2)
            print(f"\npoint query  {as1}-{as2}: "
                  f"asrank={record['relationship']}  "
                  f"validation={record['validation']}  "
                  f"classes={record['classes']}")

            batch = client.rel_batch("asrank", built["sample_links"])
            print("batch query:", [(r["as1"], r["as2"], r["relationship"])
                                   for r in batch["results"]])

            neighbors = client.neighbors(as1)
            print(f"\nAS{as1} has {neighbors['degree']} visible neighbors "
                  f"(transit degree {neighbors['transit_degree']})")

            bias = client.bias("asrank")
            worst = min(bias["regional"], key=lambda row: row["coverage"])
            print(f"least-validated regional class: {worst['class']} "
                  f"(share {worst['share']:.1%}, "
                  f"coverage {worst['coverage']:.1%})")

            table = client.table("asrank")["table"]
            t1_tr = next(row for row in table["rows"]
                         if row["class"] == "T1-TR")
            print(f"ASRank overall PPV(p2p): "
                  f"{table['total']['ppv_p2p']:.3f}   "
                  f"on T1-TR links: {t1_tr['ppv_p2p']:.3f}")

            study = client.casestudy("asrank", "T1-TR")
            print(f"case study: focus AS{study['focus_member']} touches "
                  f"{study['focus_share']:.0%} of wrong T1-TR p2p links")

            # Errors are structured JSON, surfaced as ServiceError.
            try:
                client.rel("asrank", 999999, 999998)
            except ServiceError as exc:
                print(f"\nunknown link -> HTTP {exc.status} "
                      f"code={exc.code!r}")

            metrics = client.metrics()
            print(f"served {metrics['requests']['total']} requests, "
                  f"pool builds={metrics['pool']['builds']}, "
                  f"indexes built={metrics['indexes_built']}")


if __name__ == "__main__":
    main()
