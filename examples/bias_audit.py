#!/usr/bin/env python3
"""Audit an arbitrary validation data set for bias — the workflow the
paper recommends for "future validation efforts".

This example exercises the *file-based* pipeline end to end, exactly as
one would with real data:

1. a scenario's artefacts are exported to disk in their real-world
   formats (CAIDA serial-1 as-rel, CAIDA as2org, RIR delegation files,
   IANA block registry);
2. everything is read back *from the files alone*;
3. the bias audit (coverage per regional/topological class, heatmap
   corner masses) runs on the reloaded data.

Swap step 1 for your own files to audit a real validation set.

Run:  python examples/bias_audit.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro import ScenarioConfig, build_scenario
from repro.analysis.bias import bias_profile
from repro.analysis.classes import RegionalClassifier, TopologicalClassifier
from repro.analysis.report import render_class_shares
from repro.datasets.as2org import read_as2org, write_as2org
from repro.datasets.asrel import read_asrel, write_asrel
from repro.datasets.delegation import region_map_from_files, write_delegation_files
from repro.datasets.iana import read_iana_registry, write_iana_registry
from repro.validation.cleaning import CleanedValidation, CleaningReport
from repro.topology.graph import RelType


def export_artifacts(scenario, workdir: Path) -> dict:
    """Step 1: write everything a real study would download."""
    paths = {}
    rels = scenario.infer("asrank")
    paths["asrel"] = workdir / "as-rel.txt"
    write_asrel(rels, paths["asrel"], header_lines=["inferred by asrank (sim)"])
    paths["as2org"] = workdir / "as2org.txt"
    write_as2org(scenario.topology.orgs, paths["as2org"])
    paths["iana"] = workdir / "as-numbers.csv"
    write_iana_registry(scenario.topology.region_map.iana_blocks, paths["iana"])
    assignments = {
        node.asn: node.region
        for node in scenario.topology.graph.nodes()
        if node.region is not None
    }
    paths["delegations"] = list(
        write_delegation_files(assignments, workdir / "delegations").values()
    )
    # The validation set itself, as an as-rel-formatted file.
    validation_rels = _validation_as_relset(scenario.validation)
    paths["validation"] = workdir / "validation.txt"
    write_asrel(validation_rels, paths["validation"],
                header_lines=["cleaned validation labels (sim)"])
    return paths


def _validation_as_relset(validation):
    from repro.datasets.asrel import RelationshipSet

    rels = RelationshipSet()
    for key in validation.links():
        rel = validation.rel_of(key)
        if rel is RelType.P2C:
            provider = validation.provider_of(key) or key[0]
            rels.set_p2c(provider, key[1] if provider == key[0] else key[0])
        elif rel is RelType.P2P:
            rels.set_p2p(*key)
    return rels


def audit_from_files(paths: dict) -> None:
    """Steps 2+3: reload from disk and audit."""
    inferred = read_asrel(paths["asrel"])
    validation_rels = read_asrel(paths["validation"])
    orgs = read_as2org(paths["as2org"])
    region_map = region_map_from_files(
        read_iana_registry(paths["iana"]), paths["delegations"]
    )

    validation = CleanedValidation(
        rels={
            key: (rel, provider if rel is RelType.P2C else None)
            for key, rel, provider in validation_rels.items()
        },
        report=CleaningReport(),
    )
    links = [key for key in inferred.links() if not orgs.are_siblings(*key)]

    regional = RegionalClassifier(region_map)
    print("\n=== regional audit (from files) ===")
    print(render_class_shares(bias_profile(links, regional.classify, validation)))

    # Topological classes need a Tier-1/hypergiant list; derive Tier-1
    # candidates from the inferred relationships (provider-free ASes).
    from repro.topology.external_lists import ExternalLists

    providers_of = {}
    for key, rel, provider in inferred.items():
        if rel is RelType.P2C:
            customer = key[0] if key[1] == provider else key[1]
            providers_of.setdefault(customer, set()).add(provider)
    all_ases = {asn for key in inferred.links() for asn in key}
    provider_free = {a for a in all_ases if a not in providers_of}
    big_provider_free = sorted(
        provider_free,
        key=lambda a: -len(inferred.customers_map().get(a, ())),
    )[:16]
    lists = ExternalLists(tier1=frozenset(big_provider_free),
                          hypergiants=frozenset())
    topological = TopologicalClassifier(lists, inferred, universe=all_ases)
    print("\n=== topological audit (from files) ===")
    print(render_class_shares(bias_profile(links, topological.classify, validation)))


def main() -> None:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="bias_audit_")
    )
    workdir.mkdir(parents=True, exist_ok=True)
    print(f"working directory: {workdir}")

    config = ScenarioConfig.default()
    config.topology.n_ases = 900
    config.measurement.n_vantage_points = 80
    config.measurement.n_churn_rounds = 2
    scenario = build_scenario(config)

    paths = export_artifacts(scenario, workdir)
    for name, value in paths.items():
        print(f"  wrote {name}: {value}")
    audit_from_files(paths)


if __name__ == "__main__":
    main()
