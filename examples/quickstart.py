#!/usr/bin/env python3
"""Quickstart: build a synthetic Internet and reproduce the headline
analysis of "How biased is our Validation (Data) for AS Relationships?"

Runs a reduced-scale scenario (fast), then prints:

* Figure 1 — regional link shares vs validation coverage,
* Figure 2 — topological link shares vs validation coverage,
* Table 1 — ASRank's per-group validation table.

Run:  python examples/quickstart.py
"""

from repro import ScenarioConfig, build_scenario
from repro.analysis.report import render_bias_figure, render_validation_table


def make_config() -> ScenarioConfig:
    """A mid-sized scenario: big enough to show the biases, small
    enough to build in a few seconds."""
    config = ScenarioConfig.default()
    config.topology.n_ases = 1000
    config.measurement.n_vantage_points = 90
    config.measurement.n_churn_rounds = 2
    return config


def main() -> None:
    print("building the synthetic Internet (topology -> BGP -> "
          "collectors -> validation) ...")
    scenario = build_scenario(make_config())
    print("corpus:", scenario.corpus.stats())
    print("cleaned validation:", scenario.validation.report.as_dict())
    print()

    print(render_bias_figure(scenario.regional_bias(),
                             "Figure 1 — regional imbalance"))
    print()
    print(render_bias_figure(scenario.topological_bias(),
                             "Figure 2 — topological imbalance"))
    print()
    print(render_validation_table(scenario.validation_table("asrank")))

    # The paper's headline in two sentences:
    by_region = scenario.regional_bias().by_name()
    table = scenario.validation_table("asrank")
    t1_tr = table.metrics("T1-TR")
    print()
    if "L°" in by_region:
        print(f"LACNIC-internal links: {by_region['L°'].share:.0%} of inferred "
              f"links, but only {by_region['L°'].coverage:.1%} validated.")
    if t1_tr is not None:
        print(f"T1-TR peering precision: {t1_tr.ppv_p2p:.3f} vs "
              f"{table.total.ppv_p2p:.3f} overall — the validation data's "
              "near-perfect headline hides the hard classes.")


if __name__ == "__main__":
    main()
