#!/usr/bin/env python3
"""The §6.1 case study, step by step: why does ASRank call Cogent's
partial-transit customers peers?

Walks the exact investigation of the paper:

1. find the T1-TR links wrongly inferred as P2P (validation says P2C);
2. show they concentrate on one clique member (AS174, Cogent);
3. show that no ``C | AS174 | X`` triplet exists in the path corpus
   for any target link — the evidence ASRank would need;
4. query the (simulated) looking glass: the routes AS174 received over
   the target links carry 174:990, the do-not-export-to-peers
   community — the customers bought partial transit.

Run:  python examples/cogent_case_study.py
"""

from repro import ScenarioConfig, build_scenario
from repro.bgp.communities import Meaning
from repro.bgp.lookingglass import LookingGlass
from repro.utils.text import format_table


def main() -> None:
    config = ScenarioConfig.default()
    config.topology.n_ases = 1200
    config.measurement.n_vantage_points = 100
    config.measurement.n_churn_rounds = 3
    print("building scenario ...")
    scenario = build_scenario(config)
    cogent = scenario.topology.cogent_asn

    print("\n--- step 1: wrongly-P2P T1-TR links -------------------------")
    result = scenario.case_study("asrank")
    print(f"{result.n_wrong} T1-TR links are inferred P2P but validated P2C")

    print("\n--- step 2: concentration on one clique member ---------------")
    rows = [
        [f"AS{member}", str(count), "<- Cogent" if member == cogent else ""]
        for member, count in sorted(
            result.per_member_counts.items(), key=lambda kv: -kv[1]
        )
    ]
    print(format_table(["clique member", "wrong links", ""], rows))
    print(f"AS{result.focus_member} is involved in "
          f"{result.focus_share:.0%} of them (paper: 54 of 111 = 49%)")

    print("\n--- step 3: the missing triplets ------------------------------")
    with_evidence = sum(1 for t in result.targets if t.has_clique_triplet)
    print(f"targets with a 'C | AS{cogent} | X' triplet in the corpus: "
          f"{with_evidence} of {len(result.targets)}")
    print("without such a triplet, ASRank has no descending evidence and "
          "defaults the link to P2P")

    print("\n--- step 4: the looking glass ---------------------------------")
    glass = LookingGlass(scenario.topology, scenario.communities)
    marker = scenario.communities.codebook(cogent).encode(
        Meaning.NO_EXPORT_TO_PEERS
    )
    print(f"AS{cogent}'s do-not-export-to-peers community: "
          f"{marker[0]}:{marker[1]}")
    rows = []
    for target in result.targets[:10]:
        routes = glass.routes_received(cogent, target.other)
        tagged = sum(1 for r in routes if r.has_community(marker))
        rows.append([
            f"AS{target.other}",
            str(len(routes)),
            str(tagged),
            "partial transit" if target.tagged_no_export
            else ("stale validation" if target.stale_validation else "?"),
        ])
    print(format_table(
        ["neighbor", "routes received", f"tagged {marker[0]}:{marker[1]}",
         "verdict"],
        rows,
    ))
    print(f"\nconfirmed partial transit: {result.n_partial_transit_confirmed} "
          f"of {len(result.targets)} audited targets; "
          f"stale validation: {result.n_stale_validation} "
          "(the paper found 1 such case)")


if __name__ == "__main__":
    main()
