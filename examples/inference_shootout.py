#!/usr/bin/env python3
"""Compare all four inference algorithms on one scenario.

Runs Gao (2001), ASRank (2013), ProbLink (2019) and TopoScope (2020) on
the same path corpus and contrasts

* their validation-table totals (what the paper's Tables 1-3 report),
* their true correctness against the simulator's ground truth (which no
  real study can measure), and
* where the two disagree — the gap between measured and actual quality
  that biased validation data creates.

Run:  python examples/inference_shootout.py
"""

import time

from repro import ALGORITHM_NAMES, ScenarioConfig, build_scenario
from repro.topology.graph import RelType
from repro.utils.text import format_table


def ground_truth_scores(scenario, rels):
    """Accuracy/precision/recall against ground truth (P2P positive)."""
    graph = scenario.topology.graph
    tp = fp = tn = fn = 0
    for key, rel, _provider in rels.items():
        if not graph.has_link(*key):
            continue
        truth = graph.link(*key).rel
        if truth is RelType.S2S:
            continue
        predicted_p2p = rel is RelType.P2P
        truth_p2p = truth is RelType.P2P
        if truth_p2p and predicted_p2p:
            tp += 1
        elif truth_p2p:
            fn += 1
        elif predicted_p2p:
            fp += 1
        else:
            tn += 1
    total = tp + fp + tn + fn
    return {
        "accuracy": (tp + tn) / total,
        "ppv_p2p": tp / (tp + fp) if tp + fp else 0.0,
        "tpr_p2p": tp / (tp + fn) if tp + fn else 0.0,
    }


def main() -> None:
    config = ScenarioConfig.default()
    config.topology.n_ases = 1000
    config.measurement.n_vantage_points = 90
    config.measurement.n_churn_rounds = 2
    print("building scenario ...")
    scenario = build_scenario(config)

    rows = []
    for name in ALGORITHM_NAMES:
        start = time.perf_counter()
        rels = scenario.infer(name)
        elapsed = time.perf_counter() - start
        table = scenario.validation_table(name)
        truth = ground_truth_scores(scenario, rels)
        rows.append([
            name,
            f"{elapsed:.2f}s",
            f"{table.total.ppv_p2p:.3f}",
            f"{table.total.mcc:.3f}",
            f"{truth['ppv_p2p']:.3f}",
            f"{truth['accuracy']:.3f}",
        ])

    print()
    print(format_table(
        ["algorithm", "time", "PPV_P (validation)", "MCC (validation)",
         "PPV_P (ground truth)", "accuracy (ground truth)"],
        rows,
        title="Inference shootout — measured vs actual quality",
    ))

    print()
    print("Per-class P2P precision (the classes the paper flags):")
    class_rows = []
    for class_name in ("Total°", "T1-TR", "S-T1", "TR°", "AR-L"):
        row = [class_name]
        for name in ("asrank", "problink", "toposcope"):
            metrics = scenario.validation_table(name).metrics(class_name)
            row.append(f"{metrics.ppv_p2p:.3f}" if metrics else "-")
        class_rows.append(row)
    print(format_table(["class", "asrank", "problink", "toposcope"], class_rows))
    print()
    print("Note how every algorithm's T1-TR precision sits below its "
          "Total° — the paper's §6 finding.")


if __name__ == "__main__":
    main()
