#!/usr/bin/env python3
"""Build your own Internet: every bias in the paper is a config knob.

Demonstrates the scenario configuration surface by building three
Internets and comparing their Figure 1 coverage rows:

* the **status quo** — documentation culture as observed in 2018;
* a **LACNIC renaissance** — LACNIC operators start documenting their
  communities as diligently as ARIN operators (the paper's §7 hope:
  "targeted interaction with operators could counteract the current
  problem of missing validation data for an entire region");
* a **documentation collapse** — nobody documents; community-based
  validation disappears entirely.

Run:  python examples/build_your_own_internet.py
"""

from repro import ScenarioConfig, build_scenario
from repro.topology.regions import Region
from repro.utils.text import format_table


def base_config() -> ScenarioConfig:
    config = ScenarioConfig.default()
    config.topology.n_ases = 900
    config.measurement.n_vantage_points = 80
    config.measurement.n_churn_rounds = 2
    return config


def lacnic_renaissance() -> ScenarioConfig:
    config = base_config()
    multipliers = dict(config.validation.doc_region_multiplier)
    multipliers[Region.LACNIC] = multipliers[Region.ARIN]
    config.validation.doc_region_multiplier = multipliers
    return config


def documentation_collapse() -> ScenarioConfig:
    config = base_config()
    config.validation.doc_prob_by_role = {
        role: 0.0 for role in config.validation.doc_prob_by_role
    }
    config.validation.rpsl_record_prob = 0.0
    return config


def main() -> None:
    worlds = {
        "status quo": base_config(),
        "LACNIC renaissance": lacnic_renaissance(),
        "documentation collapse": documentation_collapse(),
    }
    profiles = {}
    for name, config in worlds.items():
        print(f"building '{name}' ...")
        scenario = build_scenario(config)
        profiles[name] = (scenario.regional_bias(), len(scenario.validation))

    classes = ["R°", "AR°", "L°", "AP°", "AF°"]
    rows = []
    for name, (profile, n_validated) in profiles.items():
        by_name = profile.by_name()
        row = [name, str(n_validated)]
        for class_name in classes:
            entry = by_name.get(class_name)
            row.append(f"{entry.coverage:.3f}" if entry else "-")
        rows.append(row)
    print()
    print(format_table(
        ["world", "validated links"] + [f"{c} cov." for c in classes],
        rows,
        title="Validation coverage per region-internal class",
    ))
    print()
    print("The LACNIC hole (L° ~ 0 in the status quo) is a documentation-")
    print("culture artefact: give LACNIC an ARIN-grade culture and the class")
    print("becomes validatable; remove documentation and *every* class dies.")


if __name__ == "__main__":
    main()
