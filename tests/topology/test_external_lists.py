"""Tests for the curated Tier-1 / hypergiant lists."""

from repro.topology.external_lists import ExternalLists, curate_lists
from repro.utils.rng import make_rng


class TestExternalLists:
    def test_precedence_hypergiant_over_tier1(self):
        lists = ExternalLists(tier1=frozenset({1, 2}), hypergiants=frozenset({2}))
        assert lists.classify_hint(2) == "H"
        assert lists.classify_hint(1) == "T1"
        assert lists.classify_hint(3) == ""


class TestCurateLists:
    def test_no_noise_is_identity(self):
        lists = curate_lists(
            make_rng(0),
            true_clique=[1, 2, 3],
            true_hypergiants=[9],
            large_transit=[5, 6],
            tier1_miss_prob=0.0,
            tier1_extra_prob=0.0,
        )
        assert lists.tier1 == frozenset({1, 2, 3})
        assert lists.hypergiants == frozenset({9})

    def test_misses_and_extras(self):
        lists = curate_lists(
            make_rng(1),
            true_clique=[1, 2, 3, 4, 5],
            true_hypergiants=[],
            large_transit=[10, 11, 12],
            tier1_miss_prob=1.0,
            tier1_extra_prob=1.0,
        )
        # Everything missed -> fallback keeps one true member; all large
        # transits wrongly listed.
        assert lists.tier1 & {10, 11, 12} == {10, 11, 12}
        assert len(lists.tier1 & {1, 2, 3, 4, 5}) == 1

    def test_largely_overlaps(self):
        # The paper notes the Wikipedia list "largely overlaps with the
        # set of clique ASes inferred by ASRank" — the default noise
        # must stay small.
        clique = list(range(1, 17))
        lists = curate_lists(
            make_rng(2),
            true_clique=clique,
            true_hypergiants=[],
            large_transit=list(range(100, 140)),
        )
        overlap = len(lists.tier1 & set(clique)) / len(clique)
        assert overlap >= 0.75

    def test_empty_clique(self):
        lists = curate_lists(
            make_rng(3), true_clique=[], true_hypergiants=[], large_transit=[]
        )
        assert lists.tier1 == frozenset()
