"""Generator behaviour at 10k-100k AS scale.

The 100k-class scale unlocked by this refactor only matters if the
generator stays *deterministic* and *distribution-faithful* up there —
a fast generator that drifts per-run would silently detach the paper's
numbers from their seeds.  Three layers:

* determinism at 10k (tier-1) and 100k (marked ``slow``): same seed →
  identical node set, identical edge set, flag for flag;
* distribution sanity at 10k: region shares, heavy-tailed transit
  degrees, stub homing counts;
* the 16-bit ASN spill: above ``_SCALE_THRESHOLD`` the per-region
  16-bit blocks overflow into the scale-gated 32-bit blocks instead of
  exhausting the rejection sampler.

Run the slow layer explicitly with ``pytest -m slow``.
"""

from __future__ import annotations

import resource
import time

import pytest

from repro import ScenarioConfig
from repro.topology.asn import is_routable
from repro.topology.generator import (
    _OVERFLOW_BLOCKS_32,
    _SCALE_THRESHOLD,
    TopologyGenerator,
    generate_topology,
)
from repro.topology.graph import Role
from repro.topology.regions import Region


def _config(n_ases: int, seed: int = 7) -> ScenarioConfig:
    config = ScenarioConfig(seed=seed)
    config.topology.n_ases = n_ases
    return config


def _edge_set(topology):
    return {
        (link.provider, link.customer, link.rel, link.partial_transit,
         link.hybrid_secondary)
        for link in topology.graph.links()
    }


def _node_set(topology):
    return {
        (node.asn, node.region, node.role, node.business_type)
        for node in topology.graph.nodes()
    }


class TestDeterminism:
    def test_identical_at_10k(self):
        first = generate_topology(_config(10_000))
        second = generate_topology(_config(10_000))
        assert _node_set(first) == _node_set(second)
        assert _edge_set(first) == _edge_set(second)

    def test_seeds_differ_at_10k(self):
        first = generate_topology(_config(10_000, seed=7))
        second = generate_topology(_config(10_000, seed=8))
        assert _edge_set(first) != _edge_set(second)


class TestDistributionSanity:
    @pytest.fixture(scope="class")
    def topo_10k(self):
        return generate_topology(_config(10_000))

    def test_region_shares_hold(self, topo_10k):
        cfg = _config(10_000).topology
        ordinary = [
            n for n in topo_10k.graph.nodes()
            if n.role not in (Role.CLIQUE, Role.HYPERGIANT)
        ]
        counts = {r: 0 for r in Region}
        for node in ordinary:
            counts[node.region] += 1
        for region in Region:
            share = counts[region] / len(ordinary)
            # Inter-RIR transfers move ~1.5% of stubs/small transits, so
            # shares drift slightly from the configured targets.
            assert abs(share - cfg.region_shares[region]) < 0.03, region

    def test_transit_degrees_heavy_tailed(self, topo_10k):
        degree = {asn: 0 for asn in topo_10k.graph.asns()}
        for link in topo_10k.graph.links():
            degree[link.provider] += 1
            degree[link.customer] += 1
        top = sorted(degree, key=degree.get, reverse=True)[:5]
        for asn in top:
            assert topo_10k.graph.node(asn).role in (
                Role.CLIQUE, Role.HYPERGIANT, Role.LARGE_TRANSIT,
            )
        stub_degrees = [
            degree[n.asn]
            for n in topo_10k.graph.nodes()
            if n.role is Role.STUB
        ]
        mean_stub_degree = sum(stub_degrees) / len(stub_degrees)
        assert 1.0 < mean_stub_degree < 8.0
        assert max(degree.values()) > 50 * mean_stub_degree

    def test_asns_unique_and_routable(self, topo_10k):
        asns = topo_10k.graph.asns()
        assert len(asns) == len(set(asns)) == 10_000
        assert all(is_routable(a) for a in asns)


class TestAsnSpill:
    def test_spill_redirects_to_overflow_blocks(self):
        """Past ~70% 16-bit occupancy, draws land in the scale-gated
        32-bit overflow blocks instead of hammering the full block."""
        generator = TopologyGenerator(_config(_SCALE_THRESHOLD + 1000))
        generator._build_region_blocks()
        region = Region.AFRINIC
        low, high = _OVERFLOW_BLOCKS_32[region]
        # Force the spill condition and draw "16-bit" ASNs.
        generator._alloc_16[region] = generator._cap_16[region]
        for _ in range(50):
            asn = generator._draw_asn(region, want_32bit=False)
            assert asn > 65535
        assert any(
            low <= asn <= high for asn in generator._used_asns
        )

    def test_no_overflow_blocks_at_paper_scale(self):
        """Below the threshold the 32-bit ranges are the base blocks
        only — golden artifacts cannot see the overflow space."""
        generator = TopologyGenerator(_config(2500))
        generator._build_region_blocks()
        for region in Region:
            assert len(generator._blocks_32[region]) == 1
            assert generator._alloc_16[region] == 0


@pytest.mark.slow
class TestHundredKScale:
    """The marked-slow 100k layer: determinism and a propagation smoke
    within an explicit time/memory budget."""

    def test_100k_deterministic_and_propagates_within_budget(self):
        start = time.perf_counter()
        first = generate_topology(_config(100_000))
        second = generate_topology(_config(100_000))
        assert _node_set(first) == _node_set(second)
        assert _edge_set(first) == _edge_set(second)

        from repro.bgp.policy import AdjacencyIndex
        from repro.bgp.propagation import plane_of

        adjacency = AdjacencyIndex(first.graph)
        plane = plane_of(adjacency)
        for origin in adjacency.asns[:10]:
            routes = plane.propagate(origin)
            assert len(routes.routed_ids()) > 50_000
        elapsed = time.perf_counter() - start
        rss_gb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1e6
        assert elapsed < 300, f"100k smoke took {elapsed:.0f}s"
        assert rss_gb < 6.0, f"100k smoke peaked at {rss_gb:.1f}GB"
