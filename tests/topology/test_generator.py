"""Tests for the synthetic topology generator (structural invariants)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ScenarioConfig
from repro.topology.generator import generate_topology
from repro.topology.graph import RelType, Role


@pytest.fixture(scope="module")
def topology():
    return generate_topology(ScenarioConfig.small())


class TestStructure:
    def test_as_count(self, topology):
        assert len(topology.graph) == 320

    def test_clique_is_full_mesh_of_p2p(self, topology):
        clique = topology.graph.clique()
        assert len(clique) == 7
        for i, a in enumerate(clique):
            for b in clique[i + 1 :]:
                link = topology.graph.link(a, b)
                assert link.rel is RelType.P2P

    def test_clique_is_provider_free(self, topology):
        for asn in topology.graph.clique():
            assert topology.graph.providers_of(asn) == frozenset()

    def test_cogent_is_clique_member(self, topology):
        assert topology.cogent_asn == 174
        assert topology.graph.node(174).role is Role.CLIQUE

    def test_everyone_else_has_a_provider(self, topology):
        for node in topology.graph.nodes():
            if node.role is Role.CLIQUE:
                continue
            assert topology.graph.providers_of(node.asn), (
                f"AS{node.asn} ({node.role}) has no provider"
            )

    def test_provider_graph_acyclic(self, topology):
        # customer_cone_sizes raises on provider cycles via the
        # topological order; it must succeed on generated graphs.
        sizes = topology.graph.customer_cone_sizes()
        assert all(size >= 0 for size in sizes.values())

    def test_stubs_have_no_customers(self, topology):
        for node in topology.graph.nodes():
            if node.role is Role.STUB:
                assert topology.graph.customers_of(node.asn) == frozenset()

    def test_partial_transit_only_under_clique(self, topology):
        for link in topology.graph.links():
            if link.partial_transit:
                assert topology.graph.node(link.provider).role is Role.CLIQUE
                assert topology.graph.node(link.customer).role.is_transit

    def test_hybrid_links_are_transit_peerings(self, topology):
        for link in topology.graph.links():
            if link.is_hybrid:
                assert link.rel is RelType.P2P
                assert link.hybrid_secondary is RelType.P2C

    def test_special_stubs_peer_with_clique(self, topology):
        clique = set(topology.graph.clique())
        assert topology.special_stubs
        for asn in topology.special_stubs:
            node = topology.graph.node(asn)
            assert node.business_type in ("research", "anycast-dns", "cdn", "cloud")
            t1_peers = topology.graph.peers_of(asn) & clique
            assert t1_peers, f"special stub AS{asn} has no T1 peering"


class TestRegistries:
    def test_every_as_has_an_org(self, topology):
        for node in topology.graph.nodes():
            assert node.org_id
            assert topology.orgs.org_of(node.asn) == node.org_id

    def test_sibling_links_match_orgs(self, topology):
        for link in topology.graph.links():
            if link.rel is RelType.S2S:
                assert topology.orgs.are_siblings(link.provider, link.customer)

    def test_region_map_covers_every_as(self, topology):
        for node in topology.graph.nodes():
            assert topology.region_map.lookup(node.asn) is node.region

    def test_transfers_recorded_as_delegations(self, topology):
        # At least the clique pool pins exist; transfers add more.
        assert len(topology.region_map.delegations) >= len(
            topology.graph.clique()
        )

    def test_external_lists_reasonable(self, topology):
        true_clique = set(topology.graph.clique())
        overlap = len(topology.external_lists.tier1 & true_clique)
        assert overlap >= len(true_clique) - 2

    def test_ixps_exist_with_members(self, topology):
        assert len(topology.ixps) >= 5
        total_members = sum(ixp.size for ixp in topology.ixps.ixps())
        assert total_members > 50


class TestDeterminism:
    def test_same_seed_same_topology(self):
        a = generate_topology(ScenarioConfig.small(seed=11))
        b = generate_topology(ScenarioConfig.small(seed=11))
        assert a.graph.asns() == b.graph.asns()
        assert [l.key for l in a.graph.links()] == [l.key for l in b.graph.links()]
        assert a.external_lists.tier1 == b.external_lists.tier1

    def test_different_seed_differs(self):
        a = generate_topology(ScenarioConfig.small(seed=11))
        b = generate_topology(ScenarioConfig.small(seed=12))
        assert [l.key for l in a.graph.links()] != [l.key for l in b.graph.links()]


class TestConfigValidation:
    def test_bad_region_shares_rejected(self):
        config = ScenarioConfig.small()
        config.topology.region_shares = dict(config.topology.region_shares)
        first = next(iter(config.topology.region_shares))
        config.topology.region_shares[first] += 0.5
        with pytest.raises(ValueError):
            generate_topology(config)

    def test_too_small_rejected(self):
        config = ScenarioConfig.small()
        config.topology.n_ases = 10
        with pytest.raises(ValueError):
            generate_topology(config)
