"""Tests for the ground-truth AS graph."""

import pytest

from repro.topology.graph import ASGraph, ASNode, Link, RelType, Role, link_key
from repro.topology.regions import Region


def _node(asn, role=Role.STUB):
    return ASNode(asn=asn, region=Region.ARIN, role=role)


class TestLinkKey:
    def test_canonical_order(self):
        assert link_key(5, 3) == (3, 5)
        assert link_key(3, 5) == (3, 5)

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            link_key(7, 7)


class TestLink:
    def test_partial_transit_requires_p2c(self):
        with pytest.raises(ValueError):
            Link(provider=1, customer=2, rel=RelType.P2P, partial_transit=True)

    def test_hybrid_secondary_must_differ(self):
        with pytest.raises(ValueError):
            Link(provider=1, customer=2, rel=RelType.P2C,
                 hybrid_secondary=RelType.P2C)

    def test_other_endpoint(self):
        link = Link(provider=1, customer=2, rel=RelType.P2C)
        assert link.other(1) == 2
        assert link.other(2) == 1
        with pytest.raises(ValueError):
            link.other(3)

    def test_is_hybrid(self):
        plain = Link(provider=1, customer=2, rel=RelType.P2C)
        hybrid = Link(provider=1, customer=2, rel=RelType.P2P,
                      hybrid_secondary=RelType.P2C)
        assert not plain.is_hybrid
        assert hybrid.is_hybrid


class TestRelType:
    def test_caida_codes(self):
        assert RelType.P2C.code == -1
        assert RelType.P2P.code == 0
        assert RelType.S2S.code == 1

    def test_from_code_round_trip(self):
        for rel in RelType:
            assert RelType.from_code(rel.code) is rel
        with pytest.raises(ValueError):
            RelType.from_code(7)


class TestASGraph:
    def test_add_and_query(self, tiny_graph):
        assert 10 in tiny_graph
        assert len(tiny_graph) == 13
        assert tiny_graph.node(10).role is Role.CLIQUE

    def test_duplicate_as_rejected(self):
        graph = ASGraph()
        graph.add_as(_node(1))
        with pytest.raises(ValueError):
            graph.add_as(_node(1))

    def test_link_requires_nodes(self):
        graph = ASGraph()
        graph.add_as(_node(1))
        with pytest.raises(KeyError):
            graph.add_link(Link(provider=1, customer=2, rel=RelType.P2C))

    def test_duplicate_link_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.add_link(Link(provider=10, customer=30, rel=RelType.P2C))

    def test_adjacency_sets(self, tiny_graph):
        assert 30 in tiny_graph.customers_of(10)
        assert 10 in tiny_graph.providers_of(30)
        assert 20 in tiny_graph.peers_of(10)
        assert 61 in tiny_graph.siblings_of(60)
        assert tiny_graph.neighbors_of(30) == frozenset({10, 40, 100, 300, 61, 70})

    def test_degree(self, tiny_graph):
        assert tiny_graph.degree(30) == 6
        assert tiny_graph.degree(100) == 1

    def test_remove_link(self, tiny_graph):
        removed = tiny_graph.remove_link(30, 100)
        assert removed.rel is RelType.P2C
        assert not tiny_graph.has_link(30, 100)
        assert 100 not in tiny_graph.customers_of(30)

    def test_clique(self, tiny_graph):
        assert sorted(tiny_graph.clique()) == [10, 20]

    def test_customer_cone(self, tiny_graph):
        cone_10 = tiny_graph.customer_cone(10)
        # everything below 10: 30, 35, 350, 100, 300, 61, 70
        assert cone_10 == {30, 35, 350, 100, 300, 61, 70}
        assert tiny_graph.customer_cone(100) == set()

    def test_customer_cone_sizes_match_bfs(self, tiny_graph):
        sizes = tiny_graph.customer_cone_sizes()
        for asn in tiny_graph.asns():
            assert sizes[asn] == len(tiny_graph.customer_cone(asn))

    def test_is_stub(self, tiny_graph):
        assert tiny_graph.is_stub(100)
        assert not tiny_graph.is_stub(30)

    def test_transit_free(self, tiny_graph):
        assert sorted(tiny_graph.transit_free()) == [10, 20]

    def test_stats(self, tiny_graph):
        stats = tiny_graph.stats()
        assert stats["n_ases"] == 13
        assert stats["n_links"] == 16
        assert stats["n_partial_transit"] == 1
        assert stats["n_s2s"] == 1

    def test_cone_with_cycle_falls_back(self):
        # Hand-built cycles must not crash the memoised cone computation.
        graph = ASGraph()
        for asn in (1, 2, 3):
            graph.add_as(_node(asn, Role.MID_TRANSIT))
        graph.add_link(Link(provider=1, customer=2, rel=RelType.P2C))
        graph.add_link(Link(provider=2, customer=3, rel=RelType.P2C))
        graph.add_link(Link(provider=3, customer=1, rel=RelType.P2C))
        sizes = graph.customer_cone_sizes()
        # On a 3-cycle each AS reaches the other two (never itself).
        assert sizes == {1: 2, 2: 2, 3: 2}
