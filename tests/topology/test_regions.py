"""Tests for RIR regions and the two-layer ASN-to-region mapping."""

import pytest

from repro.topology.asn import AS_TRANS
from repro.topology.regions import REGION_ORDER, Region, RegionMap


class TestRegion:
    def test_abbreviations_match_paper(self):
        assert Region.AFRINIC.abbreviation == "AF"
        assert Region.APNIC.abbreviation == "AP"
        assert Region.ARIN.abbreviation == "AR"
        assert Region.LACNIC.abbreviation == "L"
        assert Region.RIPE.abbreviation == "R"

    def test_from_abbreviation(self):
        for region in Region:
            assert Region.from_abbreviation(region.abbreviation) is region
        with pytest.raises(ValueError):
            Region.from_abbreviation("XX")

    def test_from_name_aliases(self):
        assert Region.from_name("ripencc") is Region.RIPE
        assert Region.from_name("RIPE NCC") is Region.RIPE
        assert Region.from_name("arin") is Region.ARIN
        with pytest.raises(ValueError):
            Region.from_name("iana")

    def test_registry_names_round_trip(self):
        for region in Region:
            assert Region.from_name(region.registry_name) is region

    def test_order_is_lexicographic_by_abbreviation(self):
        abbrs = [r.abbreviation for r in REGION_ORDER]
        assert abbrs == sorted(abbrs)


class TestRegionMap:
    def test_iana_block_lookup(self):
        rmap = RegionMap()
        rmap.add_iana_block(1000, 1999, Region.ARIN)
        assert rmap.lookup(1500) is Region.ARIN
        assert rmap.lookup(2500) is None

    def test_delegation_overrides_block(self):
        # The paper's methodology: the RIR delegation refinement wins
        # over IANA's initial assignment (inter-RIR transfers).
        rmap = RegionMap()
        rmap.add_iana_block(1000, 1999, Region.ARIN)
        rmap.transfer(1500, Region.LACNIC)
        assert rmap.lookup(1500) is Region.LACNIC
        assert rmap.lookup(1501) is Region.ARIN

    def test_reserved_asns_unmapped(self):
        rmap = RegionMap()
        rmap.add_iana_block(0, 4294967295, Region.RIPE)
        assert rmap.lookup(AS_TRANS) is None
        assert rmap.lookup(64512) is None

    def test_overlapping_blocks_rejected(self):
        rmap = RegionMap()
        rmap.add_iana_block(100, 200, Region.ARIN)
        with pytest.raises(ValueError):
            rmap.add_iana_block(150, 300, Region.RIPE)

    def test_empty_block_rejected(self):
        rmap = RegionMap()
        with pytest.raises(ValueError):
            rmap.add_iana_block(200, 100, Region.ARIN)

    def test_bulk_lookup(self):
        rmap = RegionMap()
        rmap.add_iana_block(10, 19, Region.APNIC)
        result = rmap.bulk_lookup([10, 50])
        assert result == {10: Region.APNIC, 50: None}

    def test_coverage(self):
        rmap = RegionMap()
        rmap.add_iana_block(1, 10, Region.ARIN)
        rmap.add_iana_block(20, 24, Region.RIPE)
        assert rmap.coverage() == 15
